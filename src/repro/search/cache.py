"""Memoized stage prediction for placement search.

:func:`repro.runtime.analytic.predict_member_stages` re-derives every
member's steady state from scratch for each candidate placement —
allocate the whole ensemble on a fresh cluster, assess contention on
every node, evaluate every DTL coupling. During a search almost all of
that work repeats: a member's stages depend only on its **local
co-location signature** — what shares its nodes (in allocation order),
how its own components are arranged, and how far each remote coupling
travels — not on where unrelated members sit. The :class:`StageCache`
exploits this at two levels:

- **node level** — contention assessments are cached per ordered
  resident list, so every node population pattern is assessed once per
  search instead of once per candidate;
- **member level** — assembled :class:`~repro.core.stages
  .MemberStages` and the derived indicator/makespan terms are cached
  per member signature, so a member whose neighborhood is unchanged
  between candidates costs two dictionary lookups.

Bit-identity with the uncached path is structural, not approximate:
cache misses run the *same* code (`Node.assess`, :func:`repro.runtime
.effective.member_effective_stages`, :func:`~repro.core.indicators
.apply_stages`) on the same inputs, so hits return the very floats the
full predictor would have produced. The tests assert this equality
exactly (``==``, not ``approx``).

Signatures identify components by a content fingerprint (model type,
cores, solo compute time, payload, workload profile minus its name),
so two identically-shaped members share cache entries, and couplings
carry their dragonfly hop count, so relabeling-equivalent placements
hit the same entries while topologically distinct ones do not.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.indicators import (
    FINAL_STAGE_ORDER,
    MemberMeasurement,
    apply_stages,
)
from repro.core.insitu import member_makespan
from repro.core.stages import AnalysisStages, MemberStages, SimulationStages
from repro.dtl.base import DataTransportLayer
from repro.dtl.burstbuffer import BurstBufferDTL
from repro.dtl.dimes import InMemoryStagingDTL
from repro.dtl.pfs import ParallelFilesystemDTL
from repro.platform.cluster import Cluster
from repro.platform.contention import ContentionAssessment, ContentionModel
from repro.platform.node import Node
from repro.platform.specs import cori_like_network, cori_like_node
from repro.runtime.effective import member_effective_stages
from repro.runtime.placement import EnsemblePlacement, MemberPlacement
from repro.runtime.spec import EnsembleSpec
from repro.util.errors import PlacementError

#: DTL types whose staging costs depend on node pairs only through the
#: dragonfly hop count (or not at all) — for these, signatures use hop
#: distances and cache entries transfer between relabeled placements.
_HOP_DETERMINED_DTLS = (
    InMemoryStagingDTL,
    ParallelFilesystemDTL,
    BurstBufferDTL,
)

Signature = Tuple


class StageCache:
    """Shared memo of stage predictions for one platform context.

    A cache is bound to a platform context: a node/network/contention
    description and a DTL cost model (Cori-like defaults when omitted,
    matching :func:`~repro.runtime.analytic.predict_member_stages`'s
    own defaults). It may be shared freely across placements, node
    budgets, and ensemble specs evaluated under that context — entries
    are keyed by content fingerprints, never by object identity.

    Parameters
    ----------
    cluster:
        Platform template (node spec, network, contention model). Only
        these are read; the cluster's live allocation state is never
        touched. Defaults to the Cori-like platform.
    dtl:
        Staging cost model. Defaults to the DIMES-like in-memory tier
        wired to the context's network and memory bandwidth.
    """

    def __init__(
        self,
        cluster: Optional[Cluster] = None,
        dtl: Optional[DataTransportLayer] = None,
    ) -> None:
        self._default_context = cluster is None and dtl is None
        if cluster is None:
            self._node_spec = cori_like_node()
            self._network = cori_like_network()
            self._contention = ContentionModel(
                core_freq_hz=self._node_spec.core_freq_hz,
                memory_bandwidth=self._node_spec.memory_bandwidth,
            )
        else:
            self._node_spec = cluster.node_spec
            self._network = cluster.network
            self._contention = cluster.contention
        if dtl is None:
            dtl = InMemoryStagingDTL(
                network=self._network,
                memory_bandwidth=self._node_spec.memory_bandwidth,
            )
        self.dtl = dtl
        self._hop_keyed = isinstance(dtl, _HOP_DETERMINED_DTLS)

        # content fingerprint interning
        self._class_ids: Dict[Tuple, int] = {}
        self._model_keys: Dict[int, Tuple[object, int]] = {}
        self._node_sig_ids: Dict[Tuple[int, ...], int] = {}
        self._layouts: Dict[
            int, Tuple[object, List[object], List[int], List[int]]
        ] = {}
        self._hops: Dict[Tuple[int, int], int] = {}

        # memo tables
        self._node_assessments: Dict[
            Tuple[int, ...], List[ContentionAssessment]
        ] = {}
        self._member_stages: Dict[Signature, MemberStages] = {}
        self._member_terms: Dict[Tuple, Tuple[float, float]] = {}

        # diagnostics
        self.stage_hits = 0
        self.stage_misses = 0
        self.node_hits = 0
        self.node_misses = 0

    # -- context compatibility ----------------------------------------------
    def matches(
        self,
        cluster: Optional[Cluster],
        dtl: Optional[DataTransportLayer],
    ) -> bool:
        """True iff this cache's context reproduces ``(cluster, dtl)``.

        Callers holding a cache pass it alongside their usual
        ``cluster`` / ``dtl`` arguments; a mismatched cache is simply
        ignored (correctness first), never consulted.
        """
        if cluster is not None:
            if cluster.node_spec != self._node_spec:
                return False
            if cluster.network.spec != self._network.spec:
                return False
            c = cluster.contention
            if (
                c.core_freq_hz != self._contention.core_freq_hz
                or c.memory_bandwidth != self._contention.memory_bandwidth
                or c.enabled != self._contention.enabled
            ):
                return False
        elif not self._default_cluster_context():
            return False
        if dtl is None:
            return self._is_default_dtl()
        if dtl is self.dtl:
            return True
        if isinstance(self.dtl, InMemoryStagingDTL) and isinstance(
            dtl, InMemoryStagingDTL
        ):
            a, b = self.dtl, dtl
            return (
                a.network.spec == b.network.spec
                and a.memory_bandwidth == b.memory_bandwidth
                and a.marshal_bandwidth == b.marshal_bandwidth
                and a.service_latency == b.service_latency
                and a.service_bandwidth == b.service_bandwidth
                and a.producer_progress_tax == b.producer_progress_tax
            )
        return False

    def _default_cluster_context(self) -> bool:
        default = cori_like_node()
        return (
            self._node_spec == default
            and self._network.spec == cori_like_network().spec
            and self._contention.enabled
            and self._contention.core_freq_hz == default.core_freq_hz
            and self._contention.memory_bandwidth == default.memory_bandwidth
        )

    def _is_default_dtl(self) -> bool:
        if not isinstance(self.dtl, InMemoryStagingDTL):
            return False
        reference = InMemoryStagingDTL(
            network=self._network,
            memory_bandwidth=self._node_spec.memory_bandwidth,
        )
        a, b = self.dtl, reference
        return (
            a.network.spec == b.network.spec
            and a.memory_bandwidth == b.memory_bandwidth
            and a.marshal_bandwidth == b.marshal_bandwidth
            and a.service_latency == b.service_latency
            and a.service_bandwidth == b.service_bandwidth
            and a.producer_progress_tax == b.producer_progress_tax
        )

    # -- fingerprints --------------------------------------------------------
    def _class_of(self, model: object) -> int:
        """Intern a component model's content fingerprint to an id."""
        entry = self._model_keys.get(id(model))
        if entry is not None and entry[0] is model:
            return entry[1]
        profile = model.profile  # type: ignore[attr-defined]
        key = (
            type(model).__qualname__,
            model.cores,  # type: ignore[attr-defined]
            model.solo_compute_time(),  # type: ignore[attr-defined]
            model.payload_bytes(),  # type: ignore[attr-defined]
            profile.working_set_bytes,
            profile.llc_refs_per_instr,
            profile.solo_llc_miss_ratio,
            profile.max_llc_miss_ratio,
            profile.contention_exponent,
            profile.base_cpi,
            profile.instructions_per_unit,
            profile.miss_penalty_cycles,
        )
        class_id = self._class_ids.setdefault(key, len(self._class_ids))
        self._model_keys[id(model)] = (model, class_id)
        return class_id

    # -- node assessments ----------------------------------------------------
    def _assess_node(
        self, node_sig: Tuple[int, ...], residents: Sequence[object]
    ) -> List[ContentionAssessment]:
        """Assessments of ``residents`` (in allocation order) on one node."""
        cached = self._node_assessments.get(node_sig)
        if cached is not None:
            self.node_hits += 1
            return cached
        self.node_misses += 1
        node = Node(0, self._node_spec)
        names: List[str] = []
        for model in residents:
            node.allocate(model.name, model.cores, model.profile)  # type: ignore[attr-defined]
            names.append(model.name)  # type: ignore[attr-defined]
        merged = node.assess(self._contention)
        out = [merged[name] for name in names]
        self._node_assessments[node_sig] = out
        return out

    # -- flat-assignment evaluation ------------------------------------------
    def _flat_layout(
        self, spec: EnsembleSpec
    ) -> Tuple[List[object], List[int], List[int]]:
        """(flat component models, their class ids, member start offsets)."""
        entry = self._layouts.get(id(spec))
        if entry is not None and entry[0] is spec:
            return entry[1], entry[2], entry[3]
        models: List[object] = []
        classes: List[int] = []
        offsets: List[int] = []
        for member in spec.members:
            offsets.append(len(models))
            models.append(member.simulation)
            classes.append(self._class_of(member.simulation))
            for ana in member.analyses:
                models.append(ana)
                classes.append(self._class_of(ana))
        self._layouts[id(spec)] = (spec, models, classes, offsets)
        return models, classes, offsets

    def _hops_between(self, src: int, dst: int) -> int:
        key = (src, dst)
        cached = self._hops.get(key)
        if cached is None:
            cached = self._network.hops(src, dst)
            self._hops[key] = cached
        return cached

    def evaluate_flat(
        self,
        spec: EnsembleSpec,
        flat: Sequence[int],
        num_nodes: int,
        changed_nodes: Optional[frozenset] = None,
        previous: Optional["FlatEvaluation"] = None,
    ) -> "FlatEvaluation":
        """Evaluate a flat component-to-node assignment through the cache.

        With ``previous`` and ``changed_nodes`` given (delta mode), only
        members touching a changed node are re-signed; every other
        member's signature — and therefore its stage and indicator
        terms — carries over from ``previous`` unchanged. The result is
        identical either way; delta mode just skips provably unchanged
        work.
        """
        models, classes, offsets = self._flat_layout(spec)
        if len(flat) != len(models):
            raise PlacementError(
                f"flat assignment has {len(flat)} entries, spec has "
                f"{len(models)} components"
            )

        residents: Dict[int, List[int]] = {}
        demand: Dict[int, int] = {}
        for idx, node in enumerate(flat):
            residents.setdefault(node, []).append(idx)
            demand[node] = demand.get(node, 0) + models[idx].cores  # type: ignore[attr-defined]
        overloaded = {
            n: c for n, c in demand.items() if c > self._node_spec.cores
        }
        if overloaded:
            raise PlacementError(
                f"nodes oversubscribed (capacity {self._node_spec.cores}): "
                f"{overloaded}"
            )
        node_sigs: Dict[int, Tuple[int, ...]] = {
            n: tuple(classes[i] for i in idxs)
            for n, idxs in residents.items()
        }
        sig_ids = self._node_sig_ids
        node_sig_ids: Dict[int, int] = {}
        for n, sig in node_sigs.items():
            interned = sig_ids.get(sig)
            if interned is None:
                interned = len(sig_ids)
                sig_ids[sig] = interned
            node_sig_ids[n] = interned
        position: Dict[int, int] = {}
        for idxs in residents.values():
            for pos, idx in enumerate(idxs):
                position[idx] = pos

        sigs: List[Signature] = []
        stages_list: List[MemberStages] = []
        indicators: List[float] = []
        makespans: List[float] = []
        for j, member in enumerate(spec.members):
            start = offsets[j]
            shape = 1 + member.num_couplings
            comp_nodes = tuple(flat[start : start + shape])
            if (
                previous is not None
                and changed_nodes is not None
                and not any(n in changed_nodes for n in comp_nodes)
            ):
                sigs.append(previous.sigs[j])
                stages_list.append(previous.stages[j])
                indicators.append(previous.indicators[j])
                makespans.append(previous.makespans[j])
                continue
            sig = self._member_signature(
                comp_nodes, node_sig_ids, position, start, shape
            )
            stages = self._stages_for(
                sig, member, comp_nodes, start, residents, models,
                node_sigs, position,
            )
            indicator, makespan = self._terms_for(
                sig, member, comp_nodes, stages, num_nodes
            )
            sigs.append(sig)
            stages_list.append(stages)
            indicators.append(indicator)
            makespans.append(makespan)
        return FlatEvaluation(
            sigs=sigs,
            stages=stages_list,
            indicators=indicators,
            makespans=makespans,
        )

    def _member_signature(
        self,
        comp_nodes: Tuple[int, ...],
        node_sig_ids: Dict[int, int],
        position: Dict[int, int],
        start: int,
        shape: int,
    ) -> Signature:
        relabel: Dict[int, int] = {}
        local: List[int] = []
        for node in comp_nodes:
            if node not in relabel:
                relabel[node] = len(relabel)
            local.append(relabel[node])
        neighborhoods = tuple(
            node_sig_ids[node] for node in relabel  # first-use order
        )
        positions = tuple(position[start + k] for k in range(shape))
        sim_node = comp_nodes[0]
        if self._hop_keyed:
            coupling_key = tuple(
                0 if node == sim_node else self._hops_between(sim_node, node)
                for node in comp_nodes[1:]
            )
        else:
            coupling_key = ("raw", sim_node) + comp_nodes[1:]
        return (tuple(local), neighborhoods, positions, coupling_key)

    def _stages_for(
        self,
        sig: Signature,
        member,
        comp_nodes: Tuple[int, ...],
        start: int,
        residents: Dict[int, List[int]],
        models: List[object],
        node_sigs: Dict[int, Tuple[int, ...]],
        position: Dict[int, int],
    ) -> MemberStages:
        cached = self._member_stages.get(sig)
        if cached is not None:
            self.stage_hits += 1
            return cached
        self.stage_misses += 1
        assessments: Dict[str, ContentionAssessment] = {}
        component_models = [member.simulation] + list(member.analyses)
        for k, (model, node) in enumerate(zip(component_models, comp_nodes)):
            per_node = self._assess_node(
                node_sigs[node], [models[i] for i in residents[node]]
            )
            assessments[model.name] = per_node[position[start + k]]
        mp = MemberPlacement(comp_nodes[0], tuple(comp_nodes[1:]))
        effective = member_effective_stages(member, mp, assessments, self.dtl)
        stages = MemberStages(
            simulation=SimulationStages(
                compute=effective.simulation.compute_time,
                write=effective.simulation.io_time,
            ),
            analyses=tuple(
                AnalysisStages(read=a.io_time, analyze=a.compute_time)
                for a in effective.analyses
            ),
        )
        self._member_stages[sig] = stages
        return stages

    def _terms_for(
        self,
        sig: Signature,
        member,
        comp_nodes: Tuple[int, ...],
        stages: MemberStages,
        num_nodes: int,
    ) -> Tuple[float, float]:
        key = (sig, member.n_steps, num_nodes)
        cached = self._member_terms.get(key)
        if cached is not None:
            return cached
        mp = MemberPlacement(comp_nodes[0], tuple(comp_nodes[1:]))
        measurement = MemberMeasurement(
            name=member.name,
            stages=stages,
            total_cores=member.total_cores,
            placement=mp.to_placement_sets(),
        )
        indicator = apply_stages(measurement, FINAL_STAGE_ORDER, num_nodes)
        makespan = member_makespan(stages, member.n_steps)
        self._member_terms[key] = (indicator, makespan)
        return (indicator, makespan)

    # -- placement-level API --------------------------------------------------
    @staticmethod
    def _flatten(placement: EnsemblePlacement) -> List[int]:
        flat: List[int] = []
        for mp in placement.members:
            flat.append(mp.simulation_node)
            flat.extend(mp.analysis_nodes)
        return flat

    def predict(
        self, spec: EnsembleSpec, placement: EnsemblePlacement
    ) -> Dict[str, MemberStages]:
        """Memoized drop-in for :func:`~repro.runtime.analytic
        .predict_member_stages` under this cache's context."""
        evaluation = self.evaluate_flat(
            spec, self._flatten(placement), placement.num_nodes
        )
        return {
            member.name: stages
            for member, stages in zip(spec.members, evaluation.stages)
        }

    def member_terms(
        self, spec: EnsembleSpec, placement: EnsemblePlacement
    ) -> "FlatEvaluation":
        """Cached per-member indicator/makespan terms for a placement."""
        return self.evaluate_flat(
            spec, self._flatten(placement), placement.num_nodes
        )

    def stats(self) -> Dict[str, int]:
        """Hit/miss counters (stage = member level, node = assessments).

        The public statistics surface: the placement service aggregates
        these per-worker dicts into its ``GET /stats`` payload, and
        ``scripts/bench_search.py`` records them per benchmark row.
        """
        return {
            "stage_hits": self.stage_hits,
            "stage_misses": self.stage_misses,
            "node_hits": self.node_hits,
            "node_misses": self.node_misses,
        }


class FlatEvaluation:
    """Per-member evaluation of one flat assignment (cache-backed).

    Holds parallel lists over members: signature, stages, final-stage
    indicator, and makespan. Annealing keeps the previous evaluation
    and passes it back with the moved nodes to get delta updates.
    """

    __slots__ = ("sigs", "stages", "indicators", "makespans")

    def __init__(
        self,
        sigs: List[Signature],
        stages: List[MemberStages],
        indicators: List[float],
        makespans: List[float],
    ) -> None:
        self.sigs = sigs
        self.stages = stages
        self.indicators = indicators
        self.makespans = makespans

    def stages_by_name(self, spec: EnsembleSpec) -> Dict[str, MemberStages]:
        return {
            member.name: stages
            for member, stages in zip(spec.members, self.stages)
        }

    @property
    def worst_makespan(self) -> float:
        worst = 0.0
        for m in self.makespans:
            worst = max(worst, m)
        return worst
