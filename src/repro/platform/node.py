"""Compute-node model: cores, sockets, memory.

A :class:`NodeSpec` describes the hardware; a :class:`Node` is one
instance inside a cluster, tracking which components currently occupy
which cores. Cores are numbered 0..cores-1 and socket ``s`` owns the
contiguous block ``[s*cores_per_socket, (s+1)*cores_per_socket)``.

Two deterministic placement policies are supported:

- ``"scatter"`` (default): an allocation takes free cores round-robin
  across sockets, the way unbound MPI ranks of one executable spread
  over a node. A 16-rank simulation on a 2-socket node gets 8 cores on
  each socket, so *any* two components sharing a node also share both
  LLCs — this is the regime of the paper's experiments, where every
  co-location scenario shows elevated LLC miss ratios.
- ``"compact"``: lowest-numbered free cores first (socket 0 fills
  before socket 1), the behaviour of explicit ``--cpu-bind=cores``
  pinning. Useful as a counterfactual in ablation studies.

Either way the assignment is a pure function of the placement order,
so repeated runs produce identical contention and identical traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.platform.cache import CacheSpec
from repro.platform.contention import (
    ContentionAssessment,
    ContentionModel,
    WorkloadProfile,
)
from repro.util.errors import PlacementError, ValidationError
from repro.util.units import GIB
from repro.util.validation import require_positive, require_positive_int


@dataclass(frozen=True)
class NodeSpec:
    """Hardware description of one compute node."""

    cores: int = 32
    sockets: int = 2
    core_freq_hz: float = 2.3e9
    llc: CacheSpec = field(default_factory=CacheSpec)
    memory_bytes: int = 128 * GIB
    memory_bandwidth: float = 120e9  # bytes/s, node-wide
    placement_policy: str = "scatter"

    def __post_init__(self) -> None:
        require_positive_int("cores", self.cores)
        require_positive_int("sockets", self.sockets)
        require_positive("core_freq_hz", self.core_freq_hz)
        require_positive_int("memory_bytes", self.memory_bytes)
        require_positive("memory_bandwidth", self.memory_bandwidth)
        if self.placement_policy not in ("scatter", "compact"):
            raise ValidationError(
                f"placement_policy must be 'scatter' or 'compact', "
                f"got {self.placement_policy!r}"
            )
        if self.cores % self.sockets != 0:
            raise ValidationError(
                f"cores ({self.cores}) must divide evenly into "
                f"sockets ({self.sockets})"
            )

    @property
    def cores_per_socket(self) -> int:
        return self.cores // self.sockets

    def socket_of_core(self, core: int) -> int:
        """Socket index owning core ``core``."""
        if not 0 <= core < self.cores:
            raise ValidationError(f"core {core} out of range 0..{self.cores - 1}")
        return core // self.cores_per_socket


@dataclass(frozen=True)
class CoreAllocation:
    """A component's claim on specific cores of one node."""

    component: str
    node_index: int
    cores: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.cores:
            raise ValidationError("allocation must contain at least one core")
        if len(set(self.cores)) != len(self.cores):
            raise ValidationError("allocation contains duplicate cores")

    @property
    def num_cores(self) -> int:
        return len(self.cores)


class Node:
    """One node of the cluster, with live occupancy state."""

    def __init__(self, index: int, spec: NodeSpec) -> None:
        if index < 0:
            raise ValidationError(f"node index must be >= 0, got {index}")
        self.index = index
        self.spec = spec
        self._free: List[int] = list(range(spec.cores))
        self._allocations: Dict[str, CoreAllocation] = {}
        self._profiles: Dict[str, WorkloadProfile] = {}

    # -- occupancy ---------------------------------------------------------
    @property
    def free_cores(self) -> int:
        return len(self._free)

    @property
    def used_cores(self) -> int:
        return self.spec.cores - len(self._free)

    @property
    def residents(self) -> List[str]:
        """Names of components currently allocated on this node."""
        return list(self._allocations)

    def allocation_of(self, component: str) -> CoreAllocation:
        try:
            return self._allocations[component]
        except KeyError:
            raise PlacementError(
                f"component {component!r} is not resident on node {self.index}"
            ) from None

    # -- allocate / free --------------------------------------------------------
    def allocate(
        self,
        component: str,
        cores: int,
        profile: WorkloadProfile,
        allow_oversubscription: bool = False,
    ) -> CoreAllocation:
        """Claim ``cores`` cores for ``component``.

        With ``allow_oversubscription`` the node hands out core *slots*
        beyond its physical count (time-sharing); the contention model
        will still see the full resident set, so oversubscribed runs
        show the expected dilation rather than failing.
        """
        require_positive_int("cores", cores)
        if component in self._allocations:
            raise PlacementError(
                f"component {component!r} already resident on node {self.index}"
            )
        if cores > len(self._free):
            if not allow_oversubscription:
                raise PlacementError(
                    f"node {self.index} has {len(self._free)} free cores, "
                    f"cannot allocate {cores} for {component!r}"
                )
            # Oversubscribe: reuse cores round-robin from the full set.
            granted = list(self._free)
            need = cores - len(granted)
            wheel = list(range(self.spec.cores))
            i = 0
            while need > 0:
                granted.append(wheel[i % self.spec.cores])
                i += 1
                need -= 1
            self._free = []
        else:
            ordered = self._placement_order()
            granted = ordered[:cores]
            taken = set(granted)
            self._free = [c for c in self._free if c not in taken]
        alloc = CoreAllocation(component, self.index, tuple(granted))
        self._allocations[component] = alloc
        self._profiles[component] = profile
        return alloc

    def _placement_order(self) -> List[int]:
        """Free cores in the order the placement policy hands them out."""
        if self.spec.placement_policy == "compact":
            return sorted(self._free)
        # scatter: round-robin across sockets, lowest core first per socket
        by_socket: List[List[int]] = [[] for _ in range(self.spec.sockets)]
        for core in sorted(self._free):
            by_socket[self.spec.socket_of_core(core)].append(core)
        order: List[int] = []
        buckets = [b for b in by_socket if b]
        while buckets:
            for bucket in buckets:
                order.append(bucket.pop(0))
            buckets = [b for b in buckets if b]
        return order

    def release(self, component: str) -> None:
        """Return a component's cores to the free pool."""
        alloc = self.allocation_of(component)
        del self._allocations[component]
        del self._profiles[component]
        returned = [c for c in alloc.cores if c not in self._free]
        self._free = sorted(self._free + returned)

    # -- contention -------------------------------------------------------------
    def socket_residency(
        self,
    ) -> List[Tuple[CacheSpec, List[Tuple[WorkloadProfile, int]]]]:
        """Group resident components by socket for the contention model.

        A component spanning sockets contributes to each socket it has
        cores on, proportioned by core count; its assessed miss ratio is
        taken from its *primary* socket (where most of its cores are),
        consistent with first-touch data placement.
        """
        per_socket: List[List[Tuple[WorkloadProfile, int]]] = [
            [] for _ in range(self.spec.sockets)
        ]
        for name, alloc in self._allocations.items():
            counts: Dict[int, int] = {}
            for core in alloc.cores:
                s = self.spec.socket_of_core(core)
                counts[s] = counts.get(s, 0) + 1
            profile = self._profiles[name]
            for s, n in counts.items():
                per_socket[s].append((profile, n))
        return [(self.spec.llc, residents) for residents in per_socket]

    def assess(self, model: ContentionModel) -> Dict[str, ContentionAssessment]:
        """Run the contention model over the current resident set.

        For components spanning multiple sockets the assessment of the
        socket holding the most of their cores wins (ties: lower socket).
        """
        sockets = self.socket_residency()
        # assess_node requires unique names per node; spanning components
        # appear on several sockets, so assess sockets independently and
        # merge by primary socket.
        merged: Dict[str, ContentionAssessment] = {}
        primary: Dict[str, int] = {}
        for name, alloc in self._allocations.items():
            counts: Dict[int, int] = {}
            for core in alloc.cores:
                s = self.spec.socket_of_core(core)
                counts[s] = counts.get(s, 0) + 1
            primary[name] = max(sorted(counts), key=lambda s: counts[s])

        assessments_by_socket: List[Dict[str, ContentionAssessment]] = []
        for s, (cache, residents) in enumerate(sockets):
            if residents:
                assessments_by_socket.append(model.assess_node([(cache, residents)]))
            else:
                assessments_by_socket.append({})

        # Recompute the node-wide bandwidth stretch across all sockets.
        total_demand = sum(
            a.bandwidth_demand
            for socket_assessments in assessments_by_socket
            for a in socket_assessments.values()
        )
        if model.enabled and total_demand > model.memory_bandwidth:
            stretch = total_demand / model.memory_bandwidth
        else:
            stretch = 1.0

        for name in self._allocations:
            base = assessments_by_socket[primary[name]][name]
            profile = base.profile
            cpi = (
                profile.base_cpi
                + profile.llc_refs_per_instr
                * base.llc_miss_ratio
                * profile.miss_penalty_cycles
                * stretch
            )
            merged[name] = ContentionAssessment(
                profile=profile,
                llc_miss_ratio=base.llc_miss_ratio,
                cpi=cpi,
                dilation=cpi / profile.solo_cpi(),
                bandwidth_demand=base.bandwidth_demand,
                bandwidth_stretch=stretch,
            )
        return merged

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Node(index={self.index}, used={self.used_cores}/"
            f"{self.spec.cores}, residents={self.residents})"
        )
