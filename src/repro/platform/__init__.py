"""Cluster hardware model: nodes, caches, memory bandwidth, network.

This subpackage simulates the aspects of an HPC machine that the paper's
evaluation depends on:

- **nodes** with a fixed core count split across sockets, each socket
  with a shared last-level cache (LLC), and a node-wide memory
  bandwidth (:mod:`repro.platform.node`);
- a **contention model** translating co-location of components into
  elevated LLC miss ratios, reduced IPC, and execution-time dilation
  (:mod:`repro.platform.contention`);
- a **dragonfly-style network** giving hop-dependent latency and link
  bandwidth for inter-node staging transfers
  (:mod:`repro.platform.network`);
- machine **specs**, including a Cori-like default matching the paper's
  platform (:mod:`repro.platform.specs`).

The defining behaviours preserved from the real machine are (a) cache
and memory-bandwidth interference between co-located components and
(b) the locality gap between in-node memory copies and cross-node
network transfers. Those two effects drive every figure in the paper.
"""

from repro.platform.cache import CacheSpec
from repro.platform.cluster import Cluster
from repro.platform.contention import (
    ContentionAssessment,
    ContentionModel,
    WorkloadProfile,
)
from repro.platform.network import DragonflyNetwork, NetworkSpec
from repro.platform.node import CoreAllocation, Node, NodeSpec
from repro.platform.specs import (
    cori_like_node,
    cori_like_network,
    make_cori_like_cluster,
    small_test_cluster,
)

__all__ = [
    "CacheSpec",
    "Cluster",
    "ContentionAssessment",
    "ContentionModel",
    "CoreAllocation",
    "DragonflyNetwork",
    "NetworkSpec",
    "Node",
    "NodeSpec",
    "WorkloadProfile",
    "cori_like_network",
    "cori_like_node",
    "make_cori_like_cluster",
    "small_test_cluster",
]
