"""Machine specifications, including the paper's platform.

:func:`cori_like_node` mirrors the evaluation platform of the paper:
NERSC Cori (Cray XC40) Haswell nodes — two Intel Xeon E5-2698 v3
sockets (16 cores each, 2.3 GHz, 40 MB shared LLC per socket), 128 GB
DRAM (~120 GB/s STREAM-class bandwidth), joined by a Cray Aries
dragonfly.
"""

from __future__ import annotations

from repro.platform.cache import CacheSpec
from repro.platform.cluster import Cluster
from repro.platform.contention import ContentionModel
from repro.platform.network import DragonflyNetwork, NetworkSpec
from repro.platform.node import NodeSpec
from repro.util.units import GIB, MIB


def cori_like_node() -> NodeSpec:
    """A Cori Haswell compute node (2x Xeon E5-2698 v3, 128 GB)."""
    return NodeSpec(
        cores=32,
        sockets=2,
        core_freq_hz=2.3e9,
        llc=CacheSpec(size_bytes=40 * MIB, line_bytes=64, associativity=20),
        memory_bytes=128 * GIB,
        memory_bandwidth=120e9,
    )


def cori_like_network() -> DragonflyNetwork:
    """A Cray Aries dragonfly (4 nodes/router, 96 routers/group)."""
    return DragonflyNetwork(
        NetworkSpec(
            nodes_per_router=4,
            routers_per_group=96,
            link_bandwidth=10e9,
            base_latency=1.3e-6,
            per_hop_latency=0.1e-6,
        )
    )


def make_cori_like_cluster(
    num_nodes: int, contention_enabled: bool = True
) -> Cluster:
    """A ready-to-use Cori-like allocation of ``num_nodes`` nodes."""
    spec = cori_like_node()
    return Cluster(
        node_spec=spec,
        num_nodes=num_nodes,
        network=cori_like_network(),
        contention=ContentionModel(
            core_freq_hz=spec.core_freq_hz,
            memory_bandwidth=spec.memory_bandwidth,
            enabled=contention_enabled,
        ),
    )


def small_test_cluster(num_nodes: int = 2) -> Cluster:
    """A small, fast node spec for unit tests (8 cores, 2 sockets)."""
    spec = NodeSpec(
        cores=8,
        sockets=2,
        core_freq_hz=2.0e9,
        llc=CacheSpec(size_bytes=8 * MIB, line_bytes=64, associativity=16),
        memory_bytes=16 * GIB,
        memory_bandwidth=40e9,
    )
    return Cluster(
        node_spec=spec,
        num_nodes=num_nodes,
        network=DragonflyNetwork(),
        contention=ContentionModel(
            core_freq_hz=spec.core_freq_hz,
            memory_bandwidth=spec.memory_bandwidth,
        ),
    )
