"""Analytic model of co-location interference.

This module answers one question: *given the set of components resident
on a node (or socket), how much slower does each run, and what do its
hardware counters look like?* The answer feeds both the discrete-event
executor (stage-time dilation) and the monitoring layer (Table 1
metrics: LLC miss ratio, memory intensity, instructions per cycle).

Model
-----
Each component carries a :class:`WorkloadProfile`:

- ``working_set_bytes`` — the hot data it keeps re-touching;
- ``llc_refs_per_instr`` — LLC references per retired instruction;
- ``solo_llc_miss_ratio`` — miss ratio when it owns the whole cache;
- ``max_llc_miss_ratio`` — miss ratio when it retains no cache at all;
- ``contention_exponent`` — shape of the response between those two
  extremes (see below);
- ``base_cpi`` — cycles per instruction if the LLC never missed;
- ``instructions_per_unit`` — instructions retired per unit of work.

**Cache sharing.** Components on the same socket compete for LLC
capacity. Each wins a share proportional to its access pressure
(``llc_refs_per_instr x instruction rate x working set``, simplified to
``llc_refs_per_instr x working_set_bytes`` since all our components are
continuously active during their compute stages). The fraction of its
solo cache footprint it loses interpolates its miss ratio between
``solo`` and ``max``:

    lost_k  = max(0, 1 - share_k*C / min(ws_k, C))
    miss_k  = solo_k + (max_k - solo_k) * lost_k ** exponent_k

The ``contention_exponent`` captures how gracefully a kernel degrades:
a cache-blocked MD kernel (exponent ~2) tolerates losing half its
cache — its blocked tiles still fit — but collapses when an aggressive
streaming neighbour evicts nearly everything, whereas a streaming
analysis kernel (exponent ~1) degrades linearly because every line it
loses is a line it would have re-used exactly once.

**Memory bandwidth.** Each component's DRAM demand is its miss rate
converted to bytes/s. If the sum over the node exceeds the node's
memory bandwidth, memory time stretches by the overload factor.

**CPI / dilation.** Cycles per instruction is
``base_cpi + llc_refs_per_instr * miss_ratio * miss_penalty * stretch``.
The dilation of a component is the ratio of its contended CPI to its
solo CPI; the executor multiplies compute-stage durations by it.

This is a deliberately simple fixed-point-free model (shares are
computed from static profiles, not from the dilated rates) — it is
deterministic, monotone in co-location pressure, and reproduces the
qualitative orderings in the paper's Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple

from repro.platform.cache import CacheSpec
from repro.util.errors import ValidationError
from repro.util.units import MIB
from repro.util.validation import (
    require_in_range,
    require_non_negative,
    require_positive,
)


@dataclass(frozen=True)
class WorkloadProfile:
    """Static micro-architectural description of one component's kernel.

    The defaults are deliberately neutral; use
    :func:`simulation_profile` / :func:`analysis_profile` in
    :mod:`repro.components` for profiles matching the paper's
    compute-intensive simulation and data-intensive analysis.
    """

    name: str
    working_set_bytes: float = 16 * MIB
    llc_refs_per_instr: float = 0.01
    solo_llc_miss_ratio: float = 0.05
    max_llc_miss_ratio: float = 0.60
    contention_exponent: float = 1.0
    base_cpi: float = 0.5
    instructions_per_unit: float = 1e9
    miss_penalty_cycles: float = 200.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("profile name must be non-empty")
        require_positive("working_set_bytes", self.working_set_bytes)
        require_non_negative("llc_refs_per_instr", self.llc_refs_per_instr)
        require_in_range("solo_llc_miss_ratio", self.solo_llc_miss_ratio, 0.0, 1.0)
        require_in_range("max_llc_miss_ratio", self.max_llc_miss_ratio, 0.0, 1.0)
        if self.max_llc_miss_ratio < self.solo_llc_miss_ratio:
            raise ValidationError(
                "max_llc_miss_ratio must be >= solo_llc_miss_ratio"
            )
        require_positive("contention_exponent", self.contention_exponent)
        require_positive("base_cpi", self.base_cpi)
        require_positive("instructions_per_unit", self.instructions_per_unit)
        require_non_negative("miss_penalty_cycles", self.miss_penalty_cycles)

    def scaled(self, name: str, work_scale: float) -> "WorkloadProfile":
        """Derive a profile doing ``work_scale`` times the instructions."""
        require_positive("work_scale", work_scale)
        return replace(
            self, name=name, instructions_per_unit=self.instructions_per_unit * work_scale
        )

    def solo_cpi(self) -> float:
        """Cycles per instruction with the whole cache and no bw pressure."""
        return (
            self.base_cpi
            + self.llc_refs_per_instr
            * self.solo_llc_miss_ratio
            * self.miss_penalty_cycles
        )


@dataclass(frozen=True)
class ContentionAssessment:
    """Per-component outcome of the interference model on one node."""

    profile: WorkloadProfile
    llc_miss_ratio: float
    cpi: float
    dilation: float
    bandwidth_demand: float
    bandwidth_stretch: float

    @property
    def memory_intensity(self) -> float:
        """LLC misses per instruction (the paper's 'memory intensity')."""
        return self.llc_refs_per_instr * self.llc_miss_ratio

    @property
    def llc_refs_per_instr(self) -> float:
        return self.profile.llc_refs_per_instr

    @property
    def ipc(self) -> float:
        """Instructions per cycle under the assessed contention."""
        return 1.0 / self.cpi


class ContentionModel:
    """Evaluates interference for sets of co-resident workload profiles.

    Parameters
    ----------
    core_freq_hz:
        Clock frequency used to convert cycles to seconds.
    memory_bandwidth:
        Node-wide DRAM bandwidth in bytes/s shared by all sockets.
    enabled:
        When ``False``, every assessment returns solo behaviour — the
        ablation switch used by ``benchmarks/test_bench_ablation.py``.
    """

    def __init__(
        self,
        core_freq_hz: float = 2.3e9,
        memory_bandwidth: float = 120e9,
        enabled: bool = True,
    ) -> None:
        require_positive("core_freq_hz", core_freq_hz)
        require_positive("memory_bandwidth", memory_bandwidth)
        self.core_freq_hz = core_freq_hz
        self.memory_bandwidth = memory_bandwidth
        self.enabled = enabled

    # -- cache sharing within one socket --------------------------------------
    def miss_ratios(
        self, cache: CacheSpec, profiles: Sequence[WorkloadProfile]
    ) -> List[float]:
        """Effective LLC miss ratio of each profile sharing ``cache``."""
        if not profiles:
            return []
        if not self.enabled or len(profiles) == 1:
            return [p.solo_llc_miss_ratio for p in profiles]
        pressures = [
            max(p.llc_refs_per_instr, 1e-12) * p.working_set_bytes for p in profiles
        ]
        total_pressure = sum(pressures)
        capacity = float(cache.size_bytes)
        ratios: List[float] = []
        for p, pressure in zip(profiles, pressures):
            share = pressure / total_pressure
            solo_footprint = min(p.working_set_bytes, capacity)
            kept = min(share * capacity, solo_footprint)
            lost = max(0.0, 1.0 - kept / solo_footprint)
            ratios.append(
                p.solo_llc_miss_ratio
                + (p.max_llc_miss_ratio - p.solo_llc_miss_ratio)
                * lost**p.contention_exponent
            )
        return ratios

    # -- bandwidth demand -------------------------------------------------------
    def bandwidth_demand(
        self,
        profile: WorkloadProfile,
        miss_ratio: float,
        cache: CacheSpec,
        cores: int,
    ) -> float:
        """DRAM traffic (bytes/s) the component generates at ``miss_ratio``.

        Instruction rate is approximated by ``cores * freq / solo_cpi``:
        the demand a component *would* issue if not yet slowed down.
        """
        instr_rate = cores * self.core_freq_hz / profile.solo_cpi()
        miss_rate = instr_rate * profile.llc_refs_per_instr * miss_ratio
        return miss_rate * cache.line_bytes

    # -- full assessment ----------------------------------------------------------
    def assess_node(
        self,
        sockets: Sequence[Tuple[CacheSpec, Sequence[Tuple[WorkloadProfile, int]]]],
    ) -> Dict[str, ContentionAssessment]:
        """Assess all components on a node.

        Parameters
        ----------
        sockets:
            One entry per socket: ``(cache_spec, [(profile, cores), ...])``
            listing the components whose cores live on that socket.

        Returns
        -------
        dict
            Maps ``profile.name`` to its :class:`ContentionAssessment`.
            Profile names must therefore be unique within a node.
        """
        placed: List[Tuple[WorkloadProfile, int, float]] = []
        seen: set = set()
        for cache, residents in sockets:
            profiles = [p for p, _ in residents]
            for p in profiles:
                if p.name in seen:
                    raise ValidationError(
                        f"duplicate profile name on node: {p.name!r}"
                    )
                seen.add(p.name)
            ratios = self.miss_ratios(cache, profiles)
            for (profile, cores), ratio in zip(residents, ratios):
                placed.append((profile, cores, ratio))

        # Node-wide memory-bandwidth overload.
        caches = {id(cache): cache for cache, _ in sockets}
        # line size may differ per socket in exotic specs; use each
        # component's own socket line size via recomputation below.
        demands: List[float] = []
        socket_of: Dict[str, CacheSpec] = {}
        for cache, residents in sockets:
            for profile, cores in residents:
                socket_of[profile.name] = cache
        for profile, cores, ratio in placed:
            demands.append(
                self.bandwidth_demand(profile, ratio, socket_of[profile.name], cores)
            )
        total_demand = sum(demands)
        if self.enabled and total_demand > self.memory_bandwidth:
            stretch = total_demand / self.memory_bandwidth
        else:
            stretch = 1.0

        out: Dict[str, ContentionAssessment] = {}
        for (profile, cores, ratio), demand in zip(placed, demands):
            cpi = (
                profile.base_cpi
                + profile.llc_refs_per_instr
                * ratio
                * profile.miss_penalty_cycles
                * stretch
            )
            out[profile.name] = ContentionAssessment(
                profile=profile,
                llc_miss_ratio=ratio,
                cpi=cpi,
                dilation=cpi / profile.solo_cpi(),
                bandwidth_demand=demand,
                bandwidth_stretch=stretch,
            )
        return out

    def solo_assessment(
        self, profile: WorkloadProfile, cache: CacheSpec, cores: int
    ) -> ContentionAssessment:
        """Assessment of a component running alone on one socket."""
        return self.assess_node([(cache, [(profile, cores)])])[profile.name]
