"""Cluster: a set of identical nodes joined by a network."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.platform.contention import ContentionAssessment, ContentionModel
from repro.platform.network import DragonflyNetwork
from repro.platform.node import Node, NodeSpec
from repro.util.errors import PlacementError, ValidationError
from repro.util.validation import require_positive_int


class Cluster:
    """A homogeneous allocation of compute nodes.

    This models the *allocation* granted to a workflow ensemble (the
    ``M`` nodes of the paper), not the whole machine: node indexes used
    in placements are relative to this allocation, starting at 0.
    """

    def __init__(
        self,
        node_spec: NodeSpec,
        num_nodes: int,
        network: Optional[DragonflyNetwork] = None,
        contention: Optional[ContentionModel] = None,
    ) -> None:
        require_positive_int("num_nodes", num_nodes)
        self.node_spec = node_spec
        self.network = network or DragonflyNetwork()
        self.contention = contention or ContentionModel(
            core_freq_hz=node_spec.core_freq_hz,
            memory_bandwidth=node_spec.memory_bandwidth,
        )
        self.nodes: List[Node] = [Node(i, node_spec) for i in range(num_nodes)]

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def node(self, index: int) -> Node:
        """The node at allocation-relative ``index``."""
        if not 0 <= index < len(self.nodes):
            raise PlacementError(
                f"node index {index} outside allocation of {len(self.nodes)} nodes"
            )
        return self.nodes[index]

    def nodes_hosting(self, component: str) -> List[Node]:
        """All nodes on which ``component`` holds cores."""
        return [n for n in self.nodes if component in n.residents]

    def assess_all(self) -> Dict[str, ContentionAssessment]:
        """Contention assessment for every resident component.

        Components placed on multiple nodes keep the assessment of their
        lowest-index node (the paper's components never span nodes, but
        the API stays total).
        """
        out: Dict[str, ContentionAssessment] = {}
        for node in self.nodes:
            if not node.residents:
                continue
            for name, assessment in node.assess(self.contention).items():
                out.setdefault(name, assessment)
        return out

    def transfer_time(self, src: int, dst: int, nbytes: float) -> float:
        """Network transfer time between two allocation-relative nodes."""
        self.node(src)
        self.node(dst)
        return self.network.transfer_time(src, dst, nbytes)

    def memory_copy_time(self, nbytes: float) -> float:
        """Time to copy ``nbytes`` within one node's memory.

        In-node staging reads pay one memory-bandwidth pass; this is the
        data-locality advantage DIMES gives co-located couplings.
        """
        if nbytes < 0:
            raise ValidationError(f"nbytes must be >= 0, got {nbytes!r}")
        return nbytes / self.node_spec.memory_bandwidth

    def reset(self) -> None:
        """Release all allocations (fresh run on the same cluster)."""
        self.nodes = [Node(i, self.node_spec) for i in range(len(self.nodes))]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        used = sum(n.used_cores for n in self.nodes)
        total = len(self.nodes) * self.node_spec.cores
        return f"Cluster({len(self.nodes)} nodes, {used}/{total} cores in use)"
