"""Last-level cache description.

Only the attributes that the contention model consumes are modeled:
capacity (drives occupancy pressure) and line size (converts miss
counts into memory-bandwidth demand). Associativity is carried for
documentation/spec fidelity but does not enter the analytic model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import MIB, format_bytes
from repro.util.validation import require_positive_int


@dataclass(frozen=True)
class CacheSpec:
    """A shared last-level cache.

    Attributes
    ----------
    size_bytes:
        Total capacity of the cache.
    line_bytes:
        Cache-line size; each LLC miss moves one line from DRAM.
    associativity:
        Set associativity (informational).
    """

    size_bytes: int = 40 * MIB
    line_bytes: int = 64
    associativity: int = 20

    def __post_init__(self) -> None:
        require_positive_int("size_bytes", self.size_bytes)
        require_positive_int("line_bytes", self.line_bytes)
        require_positive_int("associativity", self.associativity)
        if self.line_bytes > self.size_bytes:
            raise ValueError("line_bytes cannot exceed size_bytes")

    @property
    def num_lines(self) -> int:
        """Number of cache lines the cache can hold."""
        return self.size_bytes // self.line_bytes

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LLC {format_bytes(self.size_bytes)}, "
            f"{self.line_bytes} B lines, {self.associativity}-way"
        )
