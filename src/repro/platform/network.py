"""Dragonfly-style interconnect model.

Cori's Aries network is a three-level dragonfly: nodes attach to
routers, routers form all-to-all *groups*, and groups are linked by
global links. For staging-transfer costs the relevant behaviour is the
hop count of a minimal route:

- same node: no network at all (handled by the DTL as a memory copy);
- same router: 1 hop;
- same group: 2 hops (router -> router);
- different groups: up to 5 hops (router -> gateway -> global link ->
  gateway -> router) under minimal routing.

Transfer time = per-message latency (base + per-hop) + size / link
bandwidth. Congestion between concurrent transfers is not modeled — in
the paper's workloads each analysis reads from one simulation, so
staging reads do not share links in a way that changes the orderings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.util.units import MICROSECONDS
from repro.util.validation import (
    require_non_negative,
    require_positive,
    require_positive_int,
)


@dataclass(frozen=True)
class NetworkSpec:
    """Parameters of the dragonfly interconnect."""

    nodes_per_router: int = 4
    routers_per_group: int = 16
    link_bandwidth: float = 10e9  # bytes/s per direction
    base_latency: float = 1.0 * MICROSECONDS
    per_hop_latency: float = 0.15 * MICROSECONDS

    def __post_init__(self) -> None:
        require_positive_int("nodes_per_router", self.nodes_per_router)
        require_positive_int("routers_per_group", self.routers_per_group)
        require_positive("link_bandwidth", self.link_bandwidth)
        require_non_negative("base_latency", self.base_latency)
        require_non_negative("per_hop_latency", self.per_hop_latency)

    @property
    def nodes_per_group(self) -> int:
        return self.nodes_per_router * self.routers_per_group


class DragonflyNetwork:
    """Minimal-routing dragonfly with deterministic node placement.

    Node ``i`` attaches to router ``i // nodes_per_router`` inside group
    ``i // nodes_per_group`` — consecutive node indexes are
    topologically close, matching how batch allocations on real systems
    tend to be compact.
    """

    def __init__(self, spec: NetworkSpec | None = None) -> None:
        self.spec = spec or NetworkSpec()

    def coordinates(self, node_index: int) -> Tuple[int, int]:
        """(group, router-within-group) of a node."""
        if node_index < 0:
            raise ValueError(f"node index must be >= 0, got {node_index}")
        group = node_index // self.spec.nodes_per_group
        router = (node_index % self.spec.nodes_per_group) // self.spec.nodes_per_router
        return group, router

    def hops(self, src: int, dst: int) -> int:
        """Router-to-router hops of a minimal route (0 for same node)."""
        if src == dst:
            return 0
        sg, sr = self.coordinates(src)
        dg, dr = self.coordinates(dst)
        if sg == dg:
            return 1 if sr == dr else 2
        return 5  # minimal inter-group route: local, global, local

    def latency(self, src: int, dst: int) -> float:
        """Per-message latency between two nodes (0 for same node)."""
        h = self.hops(src, dst)
        if h == 0:
            return 0.0
        return self.spec.base_latency + h * self.spec.per_hop_latency

    def transfer_time(self, src: int, dst: int, nbytes: float) -> float:
        """Seconds to move ``nbytes`` from ``src`` to ``dst``.

        Same-node transfers return 0 — the DTL charges those against
        node memory bandwidth instead.
        """
        require_non_negative("nbytes", nbytes)
        if src == dst:
            return 0.0
        return self.latency(src, dst) + nbytes / self.spec.link_bandwidth
