"""Python client for the placement service (stdlib ``urllib`` only).

A thin, dependency-free mirror of the HTTP surface: submit a
:class:`~repro.service.schemas.PlacementRequest` (or a convenience
search), poll, block on completion, cancel, and read health/stats.
Deserialization goes through :mod:`repro.service.schemas`, so
:meth:`PlacementClient.result_score` hands back a real
:class:`~repro.scheduler.objectives.PlacementScore` carrying the
service's floats unchanged.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import List, Optional

from repro.runtime.spec import EnsembleSpec
from repro.scheduler.objectives import PlacementScore
from repro.service.schemas import (
    PlacementRequest,
    request_to_dict,
    score_from_dict,
)


class ServiceError(RuntimeError):
    """An HTTP-level failure reported by the placement service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class PlacementClient:
    """Client bound to one service base URL.

    Parameters
    ----------
    base_url:
        e.g. ``http://127.0.0.1:8765`` (trailing slash tolerated).
    timeout:
        Socket timeout per HTTP call, in seconds.
    """

    def __init__(self, base_url: str, timeout: float = 10.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- HTTP plumbing ------------------------------------------------------
    def _call(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> dict:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            url, data=data, method=method, headers=headers
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8"))["error"]
            except Exception:
                message = exc.reason
            raise ServiceError(exc.code, message) from exc

    # -- API ----------------------------------------------------------------
    def submit(
        self, request: PlacementRequest, priority: int = 0
    ) -> dict:
        """POST the request; returns the job snapshot (with its id)."""
        return self._call(
            "POST",
            "/jobs",
            {"request": request_to_dict(request), "priority": priority},
        )

    def submit_search(
        self,
        spec: EnsembleSpec,
        num_nodes: int,
        cores_per_node: int = 32,
        priority: int = 0,
        **kwargs,
    ) -> dict:
        """Convenience: submit an exhaustive-search request."""
        return self.submit(
            PlacementRequest(
                kind="search",
                spec=spec,
                num_nodes=num_nodes,
                cores_per_node=cores_per_node,
                **kwargs,
            ),
            priority=priority,
        )

    def submit_reschedule(
        self,
        spec: EnsembleSpec,
        num_nodes: int,
        placement,
        reschedule=None,
        cores_per_node: int = 32,
        priority: int = 0,
        **kwargs,
    ) -> dict:
        """Convenience: submit a static-vs-rescheduled drift comparison.

        ``reschedule`` is an optional
        :class:`~repro.service.schemas.RescheduleOptions` carrying the
        drift scenario and controller knobs (defaults apply when
        omitted).
        """
        return self.submit(
            PlacementRequest(
                kind="reschedule",
                spec=spec,
                num_nodes=num_nodes,
                cores_per_node=cores_per_node,
                placement=placement,
                reschedule=reschedule,
                **kwargs,
            ),
            priority=priority,
        )

    def submit_coschedule(
        self,
        requests,
        total_nodes: int,
        cores_per_node: int = 32,
        coschedule=None,
        priority: int = 0,
        **kwargs,
    ) -> dict:
        """Convenience: co-schedule an ensemble stream on one cluster.

        ``requests`` is a sequence of
        :class:`~repro.coschedule.requests.EnsembleRequest`; pass a
        prebuilt :class:`~repro.service.schemas.CoscheduleOptions` as
        ``coschedule`` to set objective weights (the stream inside it
        wins over ``requests``).
        """
        from repro.service.schemas import CoscheduleOptions

        options = coschedule or CoscheduleOptions(requests=tuple(requests))
        return self.submit(
            PlacementRequest(
                kind="coschedule",
                spec=options.requests[0].spec,
                num_nodes=total_nodes,
                cores_per_node=cores_per_node,
                coschedule=options,
                **kwargs,
            ),
            priority=priority,
        )

    def job(self, job_id: str) -> dict:
        """GET one job snapshot (includes the result when done)."""
        return self._call("GET", f"/jobs/{job_id}")

    def jobs(self) -> List[dict]:
        """GET every tracked job (without result payloads)."""
        return self._call("GET", "/jobs")["jobs"]

    def cancel(self, job_id: str) -> bool:
        """DELETE a job; True iff it was pending and is now cancelled."""
        return self._call("DELETE", f"/jobs/{job_id}")["cancelled"]

    def health(self) -> dict:
        return self._call("GET", "/health")

    def stats(self) -> dict:
        return self._call("GET", "/stats")

    def wait(
        self,
        job_id: str,
        timeout: float = 30.0,
        poll_interval: float = 0.01,
    ) -> dict:
        """Poll until the job is terminal; returns the final snapshot.

        Raises
        ------
        TimeoutError
            If the job is still pending/running after ``timeout``.
        """
        deadline = time.monotonic() + timeout
        while True:
            snapshot = self.job(job_id)
            if snapshot["state"] in ("done", "failed", "cancelled"):
                return snapshot
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {snapshot['state']} "
                    f"after {timeout}s"
                )
            time.sleep(poll_interval)

    @staticmethod
    def result_score(snapshot: dict) -> PlacementScore:
        """The :class:`PlacementScore` inside a DONE job snapshot."""
        if snapshot.get("state") != "done":
            raise ServiceError(
                409, f"job {snapshot.get('id')} is not done: {snapshot}"
            )
        return score_from_dict(snapshot["result"]["score"])
