"""Placement-as-a-service: the planner as a long-running backend.

The scheduler stack evaluates placements as a one-shot library call;
this package turns it into a *service* that fields many concurrent
placement queries — the broker role that ensemble systems such as
Ensemble Toolkit and the authors' co-scheduling follow-up assume a
cluster provides. Four layers, stdlib only:

- :mod:`~repro.service.schemas` — the wire format: lossless JSON
  round-trips for ensemble specs, placements, requests, and scores
  (floats survive bit-identically), plus the canonical request digest
  that keys the result cache and the deterministic job ids;
- :mod:`~repro.service.jobs` — :class:`PlacementJobQueue`, a
  thread-safe priority queue with submit / poll / cancel /
  ``pop_completed`` semantics and deterministic job ids;
- :mod:`~repro.service.cache` — :class:`ResultCache`, an LRU over
  finished result payloads keyed by the request digest, with
  hit/miss/eviction counters;
- :mod:`~repro.service.workers` — :class:`PlacementService`, a
  :mod:`concurrent.futures` worker pool draining the queue through
  the fast search engine (:func:`~repro.search.engine
  .find_best_placement`, :func:`~repro.scheduler.robust
  .rank_placements_robust`) with per-job timeout, retry on worker
  crash, and graceful shutdown;
- :mod:`~repro.service.api` / :mod:`~repro.service.client` — the
  HTTP/JSON surface (``POST /jobs``, ``GET /jobs[/<id>]``,
  ``DELETE /jobs/<id>``, ``GET /health``, ``GET /stats``) and the
  matching Python :class:`PlacementClient`.

Results are bit-identical to the direct library calls — the verify
subsystem's service tier asserts a score obtained through the HTTP API
equals :func:`~repro.scheduler.objectives.score_placement` exactly
(tier 0), proving the serialization layer is lossless.
"""

from repro.service.api import PlacementServer, make_server
from repro.service.cache import ResultCache
from repro.service.client import PlacementClient, ServiceError
from repro.service.jobs import JobState, PlacementJob, PlacementJobQueue
from repro.service.schemas import (
    PlacementRequest,
    RescheduleOptions,
    canonical_digest,
    placement_from_dict,
    placement_to_dict,
    request_from_dict,
    request_to_dict,
    score_from_dict,
    score_to_dict,
    spec_from_dict,
    spec_to_dict,
)
from repro.service.workers import PlacementService, execute_request

__all__ = [
    "JobState",
    "PlacementClient",
    "PlacementJob",
    "PlacementJobQueue",
    "PlacementRequest",
    "PlacementServer",
    "PlacementService",
    "RescheduleOptions",
    "ResultCache",
    "ServiceError",
    "canonical_digest",
    "execute_request",
    "make_server",
    "placement_from_dict",
    "placement_to_dict",
    "request_from_dict",
    "request_to_dict",
    "score_from_dict",
    "score_to_dict",
    "spec_from_dict",
    "spec_to_dict",
]
