"""The HTTP/JSON surface of the placement service (stdlib only).

Built on :class:`http.server.ThreadingHTTPServer` — no web framework,
matching the repo's zero-new-dependency rule. Routes:

====================  =====================================================
``POST /jobs``        submit ``{"request": <request dict>, "priority": n}``
                      -> 201 with the job snapshot (cache hits come back
                      already ``done`` with ``cached: true``)
``GET /jobs``         every tracked job (without result payloads)
``GET /jobs/<id>``    one job, including its result when done
``DELETE /jobs/<id>`` cancel a pending job -> ``{"cancelled": bool}``
``GET /health``       liveness: status, worker count, uptime
``GET /stats``        queue counters, result-cache hit/miss/eviction,
                      aggregated StageCache statistics
====================  =====================================================

Request/response bodies use :mod:`repro.service.schemas` exclusively,
so the HTTP path serves the same floats the library computes — the
verify subsystem's service tier holds this to tolerance 0.0. Errors
are JSON too: 400 for malformed payloads, 404 for unknown ids/routes,
405 for unsupported methods.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro.service.schemas import request_from_dict
from repro.service.workers import PlacementService
from repro.util.errors import ReproError


class PlacementServer:
    """One service instance bound to an HTTP listener.

    Parameters
    ----------
    service:
        The :class:`~repro.service.workers.PlacementService` to expose
        (a default two-worker one is created when omitted).
    host / port:
        Bind address; port 0 picks an ephemeral port (read it back
        from :attr:`port` — the pattern the tests use).
    """

    def __init__(
        self,
        service: Optional[PlacementService] = None,
        host: str = "127.0.0.1",
        port: int = 8765,
    ) -> None:
        self.service = service or PlacementService()
        self.started_at = time.monotonic()
        handler = _make_handler(self)
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "PlacementServer":
        """Start workers and serve HTTP on a background thread."""
        self.service.start()
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Start workers and serve on the calling thread (CLI path)."""
        self.service.start()
        self.httpd.serve_forever()

    def stop(self) -> None:
        """Stop accepting HTTP, then shut the worker pool down."""
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self.service.stop()

    def __enter__(self) -> "PlacementServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def make_server(
    host: str = "127.0.0.1",
    port: int = 8765,
    workers: int = 2,
    cache_entries: int = 1024,
    job_timeout: Optional[float] = None,
) -> PlacementServer:
    """Build a :class:`PlacementServer` with a fresh service."""
    from repro.service.cache import ResultCache

    service = PlacementService(
        workers=workers,
        result_cache=ResultCache(max_entries=cache_entries),
        job_timeout=job_timeout,
    )
    return PlacementServer(service=service, host=host, port=port)


def _make_handler(server: PlacementServer):
    service = server.service

    class Handler(BaseHTTPRequestHandler):
        # the service speaks JSON everywhere, including errors
        protocol_version = "HTTP/1.1"

        def log_message(self, *args) -> None:  # quiet by default
            pass

        # -- plumbing -------------------------------------------------------
        def _send(self, status: int, payload: dict) -> None:
            body = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _error(self, status: int, message: str) -> None:
            self._send(status, {"error": message})

        def _route(self) -> Tuple[str, Optional[str]]:
            parts = [p for p in self.path.split("?")[0].split("/") if p]
            if not parts:
                return "", None
            if len(parts) == 1:
                return parts[0], None
            return parts[0], "/".join(parts[1:])

        # -- verbs ----------------------------------------------------------
        def do_GET(self) -> None:
            head, rest = self._route()
            if head == "health" and rest is None:
                self._send(
                    200,
                    {
                        "status": "ok",
                        "workers": service.num_workers,
                        "uptime_s": time.monotonic() - server.started_at,
                    },
                )
            elif head == "stats" and rest is None:
                self._send(200, service.stats())
            elif head == "jobs" and rest is None:
                self._send(
                    200,
                    {
                        "jobs": [
                            j.to_dict(include_result=False)
                            for j in service.queue.jobs()
                        ]
                    },
                )
            elif head == "jobs":
                job = service.queue.poll(rest)
                if job is None:
                    self._error(404, f"unknown job {rest!r}")
                else:
                    self._send(200, job.to_dict())
            else:
                self._error(404, f"no route GET {self.path}")

        def do_POST(self) -> None:
            head, rest = self._route()
            if head != "jobs" or rest is not None:
                self._error(404, f"no route POST {self.path}")
                return
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b""
            try:
                payload = json.loads(raw.decode("utf-8") or "{}")
                request = request_from_dict(payload["request"])
                priority = int(payload.get("priority", 0))
                job = service.submit(request, priority=priority)
            except (ReproError, KeyError, TypeError, ValueError) as exc:
                self._error(400, f"bad request: {exc}")
                return
            self._send(201, job.to_dict())

        def do_DELETE(self) -> None:
            head, rest = self._route()
            if head != "jobs" or rest is None:
                self._error(404, f"no route DELETE {self.path}")
                return
            if service.queue.poll(rest) is None:
                self._error(404, f"unknown job {rest!r}")
                return
            self._send(200, {"id": rest, "cancelled": service.queue.cancel(rest)})

    return Handler
