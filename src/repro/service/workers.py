"""The worker pool: drain the job queue through the search engine.

:func:`execute_request` is the single execution choke point — a pure
function from a :class:`~repro.service.schemas.PlacementRequest` to a
JSON-ready payload, dispatching on the request kind to the fast search
engine (:func:`~repro.search.engine.find_best_placement`), the scorer
(:func:`~repro.scheduler.objectives.score_placement`), or the robust
surrogate ranker (:func:`~repro.scheduler.robust
.rank_placements_robust`). Purity is what makes the service
deterministic: the same request computes the identical payload on any
worker, any pool size, any submission order — asserted exactly by the
service determinism tests.

:class:`PlacementService` wraps a :class:`~repro.service.jobs
.PlacementJobQueue`, a :class:`~repro.service.cache.ResultCache`, and
``workers`` threads from a :class:`concurrent.futures
.ThreadPoolExecutor`:

- **cache-first submit** — a request whose digest is cached completes
  instantly (``cached=True``) without touching the queue;
- **per-job timeout** — each execution runs under a deadline; on
  expiry the job FAILs with a timeout error and the worker moves on
  (the stray computation finishes on a daemon thread and is
  discarded);
- **retry on worker crash** — an execution that raises is requeued up
  to ``max_retries`` times before the job FAILs with the exception
  text;
- **graceful shutdown** — :meth:`PlacementService.stop` closes the
  queue, lets in-flight jobs resolve, and joins the pool.

Each worker owns a private :class:`~repro.search.cache.StageCache`
(warm across that worker's jobs); caches are exact memoizations, so
which worker computes a job never changes its floats.
"""

from __future__ import annotations

import concurrent.futures
import threading
from typing import Callable, Dict, List, Optional

from repro.faults.analytic import RobustnessTerm, node_crash_builder
from repro.faults.recovery import make_policy
from repro.scheduler.context import PlanningContext
from repro.scheduler.objectives import score_placement
from repro.scheduler.robust import (
    crash_straggler_factory,
    rank_placements_robust,
)
from repro.search.cache import StageCache
from repro.search.engine import find_best_placement
from repro.service.cache import ResultCache
from repro.service.jobs import JobState, PlacementJob, PlacementJobQueue
from repro.service.schemas import (
    PlacementRequest,
    robust_score_to_dict,
    score_to_dict,
)
from repro.util.errors import ValidationError
from repro.util.validation import require_positive_int


class JobTimeout(Exception):
    """Raised internally when a job exceeds its execution deadline."""


def _robustness_term(request: PlacementRequest) -> Optional[RobustnessTerm]:
    if request.robust_rate <= 0:
        return None
    return RobustnessTerm(
        policy=make_policy(request.policy),
        model_builder=node_crash_builder(request.robust_rate),
        weight=request.robust_weight,
    )


def _execute_reschedule(request: PlacementRequest) -> dict:
    """Static vs rescheduled DES comparison under the request's drift.

    Both runs share one seed and one compiled drift schedule, so the
    only difference between them is the controller's migrations — the
    improvement is attributable, and the payload is deterministic
    (same request, same floats, any worker).
    """
    from repro.reschedule import (
        DriftEvent,
        DriftKind,
        RescheduleController,
        StaticDriftModel,
    )
    from repro.runtime.runner import run_ensemble
    from repro.service.schemas import RescheduleOptions

    options = request.reschedule or RescheduleOptions()
    drift = StaticDriftModel(
        (
            DriftEvent(
                node=options.drift_node,
                kind=DriftKind(options.drift_kind),
                start_step=options.drift_start,
                magnitude=options.drift_magnitude,
            ),
        )
    )
    static = run_ensemble(
        request.spec,
        request.placement,
        seed=options.seed,
        drift=drift,
    )
    controller = RescheduleController(
        window=options.window,
        threshold=options.threshold,
        min_dwell=options.min_dwell,
        min_gain=options.min_gain,
        max_migrations=options.max_migrations,
    )
    rescheduled = run_ensemble(
        request.spec,
        request.placement,
        seed=options.seed,
        drift=drift,
        rescheduler=controller,
    )
    improvement = 1.0 - (
        rescheduled.ensemble_makespan / static.ensemble_makespan
    )
    return {
        "static_makespan": static.ensemble_makespan,
        "rescheduled_makespan": rescheduled.ensemble_makespan,
        "improvement": improvement,
        "controller": controller.summary(),
    }


def _execute_coschedule(
    request: PlacementRequest,
    stage_cache: Optional[StageCache] = None,
) -> dict:
    """Run the request's ensemble stream through the co-scheduler.

    The co-scheduler is deterministic by construction (event ranks,
    first-optimum-wins allocation, canonical digests), so the payload
    — including its content digest — is identical on any worker.
    """
    from repro.coschedule import ClusterObjective, CoScheduler

    options = request.coschedule
    if options is None:  # pragma: no cover - guarded by __post_init__
        raise ValidationError("coschedule request without options")

    scheduler = CoScheduler(
        total_nodes=request.num_nodes,
        cores_per_node=request.cores_per_node,
        objective=ClusterObjective(
            utility_weight=options.utility_weight,
            fairness_weight=options.fairness_weight,
            deadline_weight=options.deadline_weight,
        ),
        context=PlanningContext(
            robustness=None,
            cache=stage_cache,
        ),
        robust_rate=request.robust_rate,
        policy=request.policy,
        max_partitions=options.max_partitions,
    )
    result = scheduler.run(options.requests)
    return {
        "coschedule": result.to_dict(),
        "digest": result.digest(),
        "decisions_digest": result.decisions_digest(),
    }


def execute_request(
    request: PlacementRequest,
    stage_cache: Optional[StageCache] = None,
) -> dict:
    """Execute one request; return the JSON-ready result payload.

    The payload mirrors what ``GET /jobs/<id>`` serves:

    - ``search``     -> ``{"score": ..., "evaluated": int}``
    - ``score``      -> ``{"score": ...}``
    - ``rank``       -> ``{"ranking": [...]}`` (best first)
    - ``reschedule`` -> static vs rescheduled DES makespans under the
      request's drift scenario, plus the migration log.
    - ``coschedule`` -> the full co-schedule of the request's stream
      (decisions, completions, timeline, utilization) plus its
      content digests.

    A shared ``stage_cache`` only memoizes — payloads are bit-identical
    with or without it. Scoring and search calls route through one
    :class:`~repro.scheduler.context.PlanningContext` (float-identical
    to the legacy keyword spelling by the oracle's exact context tier).
    """
    robustness = _robustness_term(request)
    context = PlanningContext(robustness=robustness, cache=stage_cache)
    if request.kind == "search":
        # vectorized=True routes large canonical spaces through the
        # batch kernel with branch-and-bound; the winner is re-scored
        # on the scalar path, so the payload (score floats, evaluated
        # count) is identical to the scalar engine's — small instances
        # and robust searches stay on the scalar path automatically
        # (the routing taken is visible via engine.search_counters)
        best, evaluated = find_best_placement(
            request.spec,
            request.num_nodes,
            request.cores_per_node,
            context=context.evolve(vectorized=True),
        )
        return {"score": score_to_dict(best), "evaluated": evaluated}
    if request.kind == "score":
        score = score_placement(
            request.spec,
            request.placement,
            context=context,
        )
        return {"score": score_to_dict(score)}
    if request.kind == "reschedule":
        return _execute_reschedule(request)
    if request.kind == "coschedule":
        return _execute_coschedule(request, stage_cache=stage_cache)
    if request.kind == "rank":
        if request.rank_method == "des":
            # full injected trials, replayed by the batched engine:
            # one fault-free DES per candidate + delta replay of the
            # fault schedules (common random numbers pair candidates)
            ranking = rank_placements_robust(
                request.spec,
                request.candidates,
                crash_straggler_factory(request.robust_rate),
                make_policy(request.policy),
                trials=request.trials,
                base_seed=request.base_seed,
                method="des",
                engine="batched",
            )
        else:
            ranking = rank_placements_robust(
                request.spec,
                request.candidates,
                crash_straggler_factory(request.robust_rate),
                make_policy(request.policy),
                base_seed=request.base_seed,
                method="surrogate",
                context=context,
            )
        return {"ranking": [robust_score_to_dict(s) for s in ranking]}
    raise ValidationError(f"unknown request kind {request.kind!r}")


class PlacementService:
    """Long-running placement service: queue + cache + worker pool.

    Parameters
    ----------
    workers:
        Worker threads draining the queue.
    result_cache:
        Digest-keyed :class:`ResultCache` (a 1024-entry one is built
        when omitted).
    job_timeout:
        Per-job execution deadline in seconds (None = unbounded).
    max_retries:
        Re-executions granted after a worker crash before the job
        FAILs.
    execute_fn:
        Execution hook, defaulting to :func:`execute_request`. Tests
        substitute crashing/slow functions to exercise the retry and
        timeout paths.
    """

    def __init__(
        self,
        workers: int = 2,
        result_cache: Optional[ResultCache] = None,
        job_timeout: Optional[float] = None,
        max_retries: int = 1,
        execute_fn: Optional[Callable[..., dict]] = None,
    ) -> None:
        require_positive_int("workers", workers)
        if max_retries < 0:
            raise ValidationError(
                f"max_retries must be >= 0, got {max_retries!r}"
            )
        self.queue = PlacementJobQueue()
        # `or` would discard an *empty* caller cache (len 0 is falsy)
        self.result_cache = (
            result_cache if result_cache is not None else ResultCache()
        )
        self.num_workers = workers
        self.job_timeout = job_timeout
        self.max_retries = max_retries
        self._execute = execute_fn or execute_request
        self._stage_caches: List[StageCache] = []
        self._pool: Optional[concurrent.futures.ThreadPoolExecutor] = None
        self._loops: List[concurrent.futures.Future] = []
        self._stopping = threading.Event()
        self._started = threading.Event()

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> "PlacementService":
        """Spin up the worker loops (idempotent)."""
        if self._started.is_set():
            return self
        self._started.set()
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.num_workers,
            thread_name_prefix="placement-worker",
        )
        for _ in range(self.num_workers):
            cache = StageCache()
            self._stage_caches.append(cache)
            self._loops.append(self._pool.submit(self._worker_loop, cache))
        return self

    def stop(self, wait: bool = True) -> None:
        """Graceful shutdown: close the queue, drain, join the pool.

        In-flight jobs run to completion; PENDING jobs stay pending
        (observable, never silently dropped). With ``wait=False`` the
        pool is abandoned without joining.
        """
        if not self._started.is_set():
            return
        self._stopping.set()
        self.queue.close()
        if self._pool is not None:
            self._pool.shutdown(wait=wait)
        if wait:
            for loop in self._loops:
                exc = loop.exception()
                if exc is not None:  # pragma: no cover - defensive
                    raise exc

    def __enter__(self) -> "PlacementService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- submission ---------------------------------------------------------
    def submit(
        self, request: PlacementRequest, priority: int = 0
    ) -> PlacementJob:
        """Submit one request; cache hits complete without a worker."""
        from repro.service.schemas import canonical_digest

        cached = self.result_cache.get(canonical_digest(request))
        if cached is not None:
            return self.queue.add_finished(request, cached, cached=True)
        return self.queue.submit(request, priority=priority)

    def wait(
        self, job_id: str, timeout: Optional[float] = None
    ) -> PlacementJob:
        """Block until ``job_id`` reaches a terminal state."""
        import time

        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            job = self.queue.poll(job_id)
            if job is None:
                raise ValidationError(f"unknown job {job_id!r}")
            if job.state.terminal:
                return job
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {job.state.value} after "
                    f"{timeout}s"
                )
            time.sleep(0.002)

    # -- worker loop --------------------------------------------------------
    def _worker_loop(self, stage_cache: StageCache) -> None:
        while not self._stopping.is_set():
            job = self.queue.claim_next(timeout=0.1)
            if job is None:
                if self._stopping.is_set():
                    return
                continue
            self._run_job(job, stage_cache)

    def _run_job(self, job: PlacementJob, stage_cache: StageCache) -> None:
        try:
            result = self._execute_with_deadline(job.request, stage_cache)
        except JobTimeout:
            self.queue.fail(
                job.id,
                f"timeout: exceeded {self.job_timeout}s "
                f"(attempt {job.attempts})",
            )
            return
        except Exception as exc:  # worker crash: retry, then fail
            if job.attempts <= self.max_retries:
                self.queue.requeue(job.id)
            else:
                self.queue.fail(
                    job.id,
                    f"{type(exc).__name__}: {exc} "
                    f"(after {job.attempts} attempts)",
                )
            return
        self.result_cache.put(job.digest, result)
        self.queue.complete(job.id, result)
        self.queue.complete_pending_duplicates(job.digest, result)

    def _execute_with_deadline(
        self, request: PlacementRequest, stage_cache: StageCache
    ) -> dict:
        if self.job_timeout is None:
            return self._execute(request, stage_cache=stage_cache)
        # threads cannot be preempted: run the job on a disposable
        # daemon thread and abandon it past the deadline — the stray
        # result is discarded, the worker moves on
        outcome: Dict[str, object] = {}

        def target() -> None:
            try:
                outcome["result"] = self._execute(
                    request, stage_cache=stage_cache
                )
            except Exception as exc:  # surfaced to the retry path
                outcome["error"] = exc

        runner = threading.Thread(target=target, daemon=True)
        runner.start()
        runner.join(self.job_timeout)
        if runner.is_alive():
            raise JobTimeout()
        if "error" in outcome:
            raise outcome["error"]  # type: ignore[misc]
        return outcome["result"]  # type: ignore[return-value]

    # -- stats --------------------------------------------------------------
    def stage_cache_stats(self) -> Dict[str, int]:
        """Hit/miss counters summed over the workers' stage caches."""
        totals = {
            "stage_hits": 0,
            "stage_misses": 0,
            "node_hits": 0,
            "node_misses": 0,
        }
        for cache in self._stage_caches:
            for key, value in cache.stats().items():
                totals[key] += value
        return totals

    def stats(self) -> dict:
        """The ``GET /stats`` payload: queue, caches, pool, engines."""
        from repro.coschedule import coschedule_counters
        from repro.faults.batched import engine_counters
        from repro.reschedule import reschedule_counters
        from repro.search.engine import last_search_routing, search_counters

        return {
            "queue": self.queue.stats(),
            "result_cache": self.result_cache.stats(),
            "stage_cache": self.stage_cache_stats(),
            "workers": self.num_workers,
            "job_timeout": self.job_timeout,
            "max_retries": self.max_retries,
            "batched": engine_counters(),
            "search": {
                **search_counters(),
                "last_routing": last_search_routing(),
            },
            "reschedule": reschedule_counters(),
            "coschedule": coschedule_counters(),
        }
