"""The placement job queue: submit / poll / cancel / pop_completed.

A :class:`PlacementJobQueue` is the hand-off point between request
producers (the HTTP API, the Python client, tests) and the worker pool
that drains it. Semantics follow the task-queue idiom of ensemble
brokers (submit returns immediately with a job handle; completion is
observed by polling or by draining ``pop_completed``):

- **priority ordering** — higher ``priority`` first; ties resolve in
  submission order (FIFO), so two equal-priority submissions never
  reorder and a replayed submission sequence schedules identically;
- **deterministic ids** — ``job-<seq>-<digest12>``: the submission
  sequence number plus the request's canonical content digest.
  Replaying the same submissions yields the same ids, and the id
  alone identifies *what* was asked (the digest) and *when* (the
  sequence);
- **lifecycle** — ``PENDING -> RUNNING -> DONE | FAILED``, with
  ``CANCELLED`` reachable only from ``PENDING`` (a running job cannot
  be preempted; its worker owns it until it resolves).

All mutating calls are thread-safe; :meth:`claim_next` blocks workers
on a condition variable so an idle pool costs nothing.
"""

from __future__ import annotations

import enum
import heapq
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.service.schemas import PlacementRequest, canonical_digest
from repro.util.errors import ValidationError


class JobState(enum.Enum):
    """Lifecycle of one submitted placement job."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


@dataclass
class PlacementJob:
    """One submitted request plus its progress through the queue.

    ``result`` is the JSON-ready payload produced by
    :func:`~repro.service.workers.execute_request` (``None`` until the
    job is DONE); ``error`` the failure reason for FAILED jobs.
    ``cached`` marks results served from the
    :class:`~repro.service.cache.ResultCache` without touching a
    worker.
    """

    id: str
    request: PlacementRequest
    digest: str
    priority: int = 0
    seq: int = 0
    state: JobState = JobState.PENDING
    result: Optional[dict] = None
    error: Optional[str] = None
    cached: bool = False
    attempts: int = 0
    submitted_at: float = field(default_factory=time.monotonic)
    finished_at: Optional[float] = None

    def to_dict(self, include_result: bool = True) -> dict:
        """JSON-ready snapshot (the ``GET /jobs`` representations)."""
        out = {
            "id": self.id,
            "digest": self.digest,
            "kind": self.request.kind,
            "priority": self.priority,
            "state": self.state.value,
            "cached": self.cached,
            "attempts": self.attempts,
            "error": self.error,
        }
        if include_result:
            out["result"] = self.result
        return out


class PlacementJobQueue:
    """Thread-safe priority queue of placement jobs.

    The queue owns every job it has ever seen (until popped via
    :meth:`pop_completed`), so ``poll`` answers for running and
    finished jobs alike. Workers claim with :meth:`claim_next` and
    resolve with :meth:`complete` / :meth:`fail` / :meth:`requeue`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._jobs: Dict[str, PlacementJob] = {}
        # heap entries: (-priority, seq, job_id); lazily invalidated on
        # cancel/update_priority (stale entries are skipped on pop)
        self._heap: List[tuple] = []
        self._seq = 0
        self._closed = False

    # -- producer side ------------------------------------------------------
    def submit(
        self, request: PlacementRequest, priority: int = 0
    ) -> PlacementJob:
        """Enqueue one request; returns its job (state PENDING)."""
        digest = canonical_digest(request)
        with self._lock:
            if self._closed:
                raise ValidationError("queue is closed to new submissions")
            seq = self._seq
            self._seq += 1
            job = PlacementJob(
                id=f"job-{seq:06d}-{digest[:12]}",
                request=request,
                digest=digest,
                priority=priority,
                seq=seq,
            )
            self._jobs[job.id] = job
            heapq.heappush(self._heap, (-priority, seq, job.id))
            self._not_empty.notify()
            return job

    def add_finished(
        self,
        request: PlacementRequest,
        result: dict,
        cached: bool = True,
    ) -> PlacementJob:
        """Record a job that never needs a worker (cache hit on submit)."""
        digest = canonical_digest(request)
        with self._lock:
            seq = self._seq
            self._seq += 1
            job = PlacementJob(
                id=f"job-{seq:06d}-{digest[:12]}",
                request=request,
                digest=digest,
                seq=seq,
                state=JobState.DONE,
                result=result,
                cached=cached,
                finished_at=time.monotonic(),
            )
            self._jobs[job.id] = job
            return job

    def poll(self, job_id: str) -> Optional[PlacementJob]:
        """The job for ``job_id``, or None if unknown/popped."""
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[PlacementJob]:
        """Snapshot of every tracked job, in submission order."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.seq)

    def cancel(self, job_id: str) -> bool:
        """Cancel a PENDING job. Returns False for any other state."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.state is not JobState.PENDING:
                return False
            job.state = JobState.CANCELLED
            job.finished_at = time.monotonic()
            return True

    def update_priority(self, job_id: str, priority: int) -> bool:
        """Re-prioritize a PENDING job (False otherwise)."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.state is not JobState.PENDING:
                return False
            job.priority = priority
            heapq.heappush(self._heap, (-priority, job.seq, job.id))
            self._not_empty.notify()
            return True

    def pop_completed(self) -> List[PlacementJob]:
        """Remove and return every terminal job (submission order)."""
        with self._lock:
            done = [j for j in self._jobs.values() if j.state.terminal]
            for job in done:
                del self._jobs[job.id]
            return sorted(done, key=lambda j: j.seq)

    # -- worker side --------------------------------------------------------
    def claim_next(self, timeout: Optional[float] = None) -> Optional[PlacementJob]:
        """Block until a PENDING job is available; claim it as RUNNING.

        Returns None on timeout or once the queue is closed and
        drained — the worker-loop exit signal.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._not_empty:
            while True:
                job = self._pop_pending_locked()
                if job is not None:
                    job.state = JobState.RUNNING
                    job.attempts += 1
                    return job
                if self._closed:
                    return None
                if deadline is None:
                    self._not_empty.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    self._not_empty.wait(remaining)

    def _pop_pending_locked(self) -> Optional[PlacementJob]:
        while self._heap:
            neg_priority, _, job_id = heapq.heappop(self._heap)
            job = self._jobs.get(job_id)
            # skip stale records: cancelled/claimed jobs, and entries
            # whose recorded priority no longer matches the job's (a
            # fresh entry was pushed by update_priority/requeue)
            if job is None or job.state is not JobState.PENDING:
                continue
            if -neg_priority != job.priority:
                continue
            return job
        return None

    def complete(self, job_id: str, result: dict) -> None:
        """Resolve a RUNNING job as DONE with ``result``."""
        with self._lock:
            job = self._require_running(job_id)
            job.state = JobState.DONE
            job.result = result
            job.finished_at = time.monotonic()

    def fail(self, job_id: str, error: str) -> None:
        """Resolve a RUNNING job as FAILED with ``error``."""
        with self._lock:
            job = self._require_running(job_id)
            job.state = JobState.FAILED
            job.error = error
            job.finished_at = time.monotonic()

    def requeue(self, job_id: str) -> None:
        """Return a RUNNING job to PENDING (crash-retry path)."""
        with self._lock:
            job = self._require_running(job_id)
            job.state = JobState.PENDING
            heapq.heappush(self._heap, (-job.priority, job.seq, job.id))
            self._not_empty.notify()

    def complete_pending_duplicates(self, digest: str, result: dict) -> int:
        """Resolve every PENDING job sharing ``digest`` with ``result``.

        Request coalescing: once one worker has computed a digest,
        identical jobs still waiting in the queue are completed in
        place (marked ``cached``) instead of recomputing. Their heap
        records go stale and are skipped on pop. Returns the count.
        """
        with self._lock:
            count = 0
            for job in self._jobs.values():
                if job.state is JobState.PENDING and job.digest == digest:
                    job.state = JobState.DONE
                    job.result = result
                    job.cached = True
                    job.finished_at = time.monotonic()
                    count += 1
            return count

    def _require_running(self, job_id: str) -> PlacementJob:
        job = self._jobs.get(job_id)
        if job is None:
            raise ValidationError(f"unknown job {job_id!r}")
        if job.state is not JobState.RUNNING:
            raise ValidationError(
                f"job {job_id!r} is {job.state.value}, expected running"
            )
        return job

    # -- lifecycle / stats --------------------------------------------------
    def close(self) -> None:
        """Refuse new submissions and wake every blocked worker."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()

    def stats(self) -> Dict[str, int]:
        """Per-state job counts plus the total ever submitted."""
        with self._lock:
            counts = {state.value: 0 for state in JobState}
            for job in self._jobs.values():
                counts[job.state.value] += 1
            counts["submitted"] = self._seq
            return counts
