"""LRU result cache keyed by the canonical request digest.

Placement queries repeat heavily in a broker setting — every member of
a campaign asks for the same (platform, ensemble, objective,
fault-model) plan — so finished result payloads are cached under their
request's :func:`~repro.service.schemas.canonical_digest`. A repeated
query is then an O(1) dictionary lookup that never reaches a worker;
``scripts/bench_service.py`` records the measured speedup (>= 10x
floor) in ``BENCH_service.json``.

The cache stores the JSON-ready result payload (plain dicts/lists/
floats), so a hit returns exactly the bytes-equivalent payload a
worker produced — bit-identical floats, as the determinism tests
assert. Eviction is least-recently-*used* (hits refresh recency), and
the hit/miss/eviction counters feed ``GET /stats``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional

from repro.util.errors import ValidationError


class ResultCache:
    """Thread-safe LRU of result payloads, keyed by request digest.

    Parameters
    ----------
    max_entries:
        Capacity; the least recently used entry is evicted on
        overflow. Must be positive.
    """

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries <= 0:
            raise ValidationError(
                f"max_entries must be > 0, got {max_entries!r}"
            )
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, dict]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, digest: str) -> Optional[dict]:
        """The cached payload for ``digest``, or None (counted)."""
        with self._lock:
            payload = self._entries.get(digest)
            if payload is None:
                self.misses += 1
                return None
            self._entries.move_to_end(digest)
            self.hits += 1
            return payload

    def put(self, digest: str, payload: dict) -> None:
        """Insert (or refresh) one payload, evicting LRU on overflow."""
        with self._lock:
            if digest in self._entries:
                self._entries.move_to_end(digest)
            self._entries[digest] = payload
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            return digest in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, int]:
        """Hit/miss/eviction counters plus occupancy."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._entries),
                "max_entries": self.max_entries,
            }
