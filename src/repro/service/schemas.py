"""The service wire format: lossless JSON round-trips.

Everything the service moves over HTTP — ensemble specs, placements,
requests, scores — serializes here, and *only* here, so the one-shot
CLI (``plan --json``) and the service speak the same format. The
round-trip contract is exact, not approximate: ``json.dumps`` renders
floats with ``repr`` and Python parses them back to the identical
IEEE-754 value, so a :class:`~repro.scheduler.objectives
.PlacementScore` that travels through the API carries the very floats
the scorer produced. The verify subsystem's service tier asserts this
with tolerance 0.0.

Component models serialize by *content*, not by reference: every
constructor parameter plus the full
:class:`~repro.platform.contention.WorkloadProfile` — the fields the
:class:`~repro.search.cache.StageCache` fingerprints — so a
deserialized spec scores bit-identically to the original. Only the two
paper model types are wire-transportable; an unknown
:class:`~repro.components.base.ComponentModel` subclass raises
:class:`~repro.util.errors.ValidationError` rather than serializing
lossily.

:func:`canonical_digest` hashes the canonical JSON rendering of a
request (sorted keys, no whitespace), giving the content-addressed key
the :class:`~repro.service.cache.ResultCache` and the deterministic
job ids build on: two semantically identical requests — however they
were constructed — share one digest.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Dict, Optional, Tuple

from repro.components.analysis import EigenAnalysisModel
from repro.components.base import ComponentModel
from repro.components.simulation import MDSimulationModel
from repro.faults.recovery import POLICY_NAMES
from repro.platform.contention import WorkloadProfile
from repro.runtime.placement import EnsemblePlacement, MemberPlacement
from repro.runtime.spec import EnsembleSpec, MemberSpec
from repro.scheduler.objectives import PlacementScore
from repro.scheduler.robust import RobustScore
from repro.util.errors import ValidationError
from repro.util.validation import require_positive_int

#: Wire-format version carried by every request payload.
SCHEMA_VERSION = 1

#: Request kinds the service executes.
REQUEST_KINDS: Tuple[str, ...] = ("search", "score", "rank", "reschedule")

_PROFILE_FIELDS = (
    "working_set_bytes",
    "llc_refs_per_instr",
    "solo_llc_miss_ratio",
    "max_llc_miss_ratio",
    "contention_exponent",
    "base_cpi",
    "instructions_per_unit",
    "miss_penalty_cycles",
)


# -- components and specs ----------------------------------------------------
def _profile_to_dict(profile: WorkloadProfile) -> dict:
    out = {"name": profile.name}
    for field in _PROFILE_FIELDS:
        out[field] = getattr(profile, field)
    return out


def _profile_from_dict(payload: dict) -> WorkloadProfile:
    return WorkloadProfile(**{k: payload[k] for k in ("name",) + _PROFILE_FIELDS})


def component_to_dict(model: ComponentModel) -> dict:
    """Serialize one component model by content.

    Raises
    ------
    ValidationError
        For model types outside the wire format (custom subclasses
        would round-trip lossily, so they are rejected instead).
    """
    if isinstance(model, MDSimulationModel):
        return {
            "type": "md_simulation",
            "name": model.name,
            "cores": model.cores,
            "natoms": model.natoms,
            "stride": model.stride,
            "seconds_per_atom_step": model.seconds_per_atom_step,
            "serial_fraction": model.serial_fraction,
            "profile": _profile_to_dict(model.profile),
        }
    if isinstance(model, EigenAnalysisModel):
        return {
            "type": "eigen_analysis",
            "name": model.name,
            "cores": model.cores,
            "natoms": model.natoms,
            "single_core_time": model.single_core_time,
            "serial_fraction": model.serial_fraction,
            "profile": _profile_to_dict(model.profile),
        }
    raise ValidationError(
        f"component {model.name!r} has non-serializable type "
        f"{type(model).__qualname__}; wire format supports "
        f"MDSimulationModel and EigenAnalysisModel"
    )


def component_from_dict(payload: dict) -> ComponentModel:
    """Rebuild a component model from its wire dict."""
    kind = payload.get("type")
    profile = _profile_from_dict(payload["profile"])
    if kind == "md_simulation":
        return MDSimulationModel(
            name=payload["name"],
            cores=payload["cores"],
            natoms=payload["natoms"],
            stride=payload["stride"],
            seconds_per_atom_step=payload["seconds_per_atom_step"],
            serial_fraction=payload["serial_fraction"],
            profile=profile,
        )
    if kind == "eigen_analysis":
        return EigenAnalysisModel(
            name=payload["name"],
            cores=payload["cores"],
            natoms=payload["natoms"],
            single_core_time=payload["single_core_time"],
            serial_fraction=payload["serial_fraction"],
            profile=profile,
        )
    raise ValidationError(f"unknown component type {kind!r} in payload")


def spec_to_dict(spec: EnsembleSpec) -> dict:
    """Serialize an :class:`EnsembleSpec` (content-complete)."""
    return {
        "name": spec.name,
        "members": [
            {
                "name": m.name,
                "n_steps": m.n_steps,
                "simulation": component_to_dict(m.simulation),
                "analyses": [component_to_dict(a) for a in m.analyses],
            }
            for m in spec.members
        ],
    }


def spec_from_dict(payload: dict) -> EnsembleSpec:
    """Rebuild an :class:`EnsembleSpec`; validation reruns on build."""
    members = tuple(
        MemberSpec(
            name=m["name"],
            simulation=component_from_dict(m["simulation"]),
            analyses=tuple(component_from_dict(a) for a in m["analyses"]),
            n_steps=m["n_steps"],
        )
        for m in payload["members"]
    )
    return EnsembleSpec(payload["name"], members)


# -- placements --------------------------------------------------------------
def placement_to_dict(placement: EnsemblePlacement) -> dict:
    return {
        "num_nodes": placement.num_nodes,
        "members": [
            {
                "simulation_node": mp.simulation_node,
                "analysis_nodes": list(mp.analysis_nodes),
            }
            for mp in placement.members
        ],
    }


def placement_from_dict(payload: dict) -> EnsemblePlacement:
    return EnsemblePlacement(
        num_nodes=payload["num_nodes"],
        members=tuple(
            MemberPlacement(
                simulation_node=m["simulation_node"],
                analysis_nodes=tuple(m["analysis_nodes"]),
            )
            for m in payload["members"]
        ),
    )


# -- scores ------------------------------------------------------------------
def score_to_dict(score: PlacementScore) -> dict:
    """Serialize a :class:`PlacementScore` (floats survive exactly)."""
    return {
        "placement": placement_to_dict(score.placement),
        "objective": score.objective,
        "ensemble_makespan": score.ensemble_makespan,
        "num_nodes": score.num_nodes,
        "member_indicators": list(score.member_indicators),
        "robust_penalty": score.robust_penalty,
        "utility": score.utility,
    }


def score_from_dict(payload: dict) -> PlacementScore:
    return PlacementScore(
        placement=placement_from_dict(payload["placement"]),
        objective=payload["objective"],
        ensemble_makespan=payload["ensemble_makespan"],
        num_nodes=payload["num_nodes"],
        member_indicators=tuple(payload["member_indicators"]),
        robust_penalty=payload["robust_penalty"],
    )


def robust_score_to_dict(score: RobustScore) -> dict:
    """Serialize a :class:`~repro.scheduler.robust.RobustScore`."""
    return {
        "name": score.name,
        "placement": placement_to_dict(score.placement),
        "objective": score.objective,
        "ideal_objective": score.ideal_objective,
        "mean_inflation": score.mean_inflation,
        "mean_goodput": score.mean_goodput,
        "num_nodes": score.num_nodes,
        "trials": score.trials,
    }


def robust_score_from_dict(payload: dict) -> RobustScore:
    return RobustScore(
        name=payload["name"],
        placement=placement_from_dict(payload["placement"]),
        objective=payload["objective"],
        ideal_objective=payload["ideal_objective"],
        mean_inflation=payload["mean_inflation"],
        mean_goodput=payload["mean_goodput"],
        num_nodes=payload["num_nodes"],
        trials=payload["trials"],
    )


# -- reschedule options ------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class RescheduleOptions:
    """Drift scenario + controller knobs for a ``reschedule`` request.

    The drift is a single node-attributed event
    (:class:`~repro.reschedule.drift.DriftEvent`): ``drift_kind``
    selects the shape (``"step"``: constant factor from
    ``drift_start`` on; ``"ramp"``: per-step increment), and the
    controller knobs mirror
    :class:`~repro.reschedule.controller.RescheduleController`.
    """

    drift_node: int = 0
    drift_kind: str = "step"
    drift_magnitude: float = 2.5
    drift_start: int = 4
    window: int = 4
    threshold: float = 1.25
    min_dwell: int = 4
    min_gain: float = 0.0
    max_migrations: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.drift_kind not in ("step", "ramp"):
            raise ValidationError(
                f"unknown drift_kind {self.drift_kind!r}; "
                f"valid: ['step', 'ramp']"
            )
        if self.drift_node < 0:
            raise ValidationError(
                f"drift_node must be >= 0, got {self.drift_node!r}"
            )
        if self.drift_start < 0:
            raise ValidationError(
                f"drift_start must be >= 0, got {self.drift_start!r}"
            )
        if self.drift_kind == "step" and self.drift_magnitude <= 1.0:
            raise ValidationError(
                f"step drift_magnitude must be > 1, got "
                f"{self.drift_magnitude!r}"
            )
        if self.drift_kind == "ramp" and self.drift_magnitude <= 0.0:
            raise ValidationError(
                f"ramp drift_magnitude must be > 0, got "
                f"{self.drift_magnitude!r}"
            )
        if self.threshold <= 1.0:
            raise ValidationError(
                f"threshold must be > 1, got {self.threshold!r}"
            )
        require_positive_int("window", self.window)
        require_positive_int("min_dwell", self.min_dwell)
        require_positive_int("max_migrations", self.max_migrations)


def reschedule_options_to_dict(options: RescheduleOptions) -> dict:
    """Serialize the full options record (attached only when present)."""
    return dataclasses.asdict(options)


def reschedule_options_from_dict(payload: dict) -> RescheduleOptions:
    defaults = RescheduleOptions()
    return RescheduleOptions(
        **{
            field.name: payload.get(
                field.name, getattr(defaults, field.name)
            )
            for field in dataclasses.fields(RescheduleOptions)
        }
    )


# -- requests ----------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class PlacementRequest:
    """One placement query, as the service understands it.

    ``kind`` selects the execution path:

    - ``"search"`` — exhaustive canonical search over ``num_nodes`` x
      ``cores_per_node`` via :func:`~repro.search.engine
      .find_best_placement`; returns the best score and the candidate
      count;
    - ``"score"`` — score the given ``placement`` via
      :func:`~repro.scheduler.objectives.score_placement`;
    - ``"rank"`` — robust-rank the named ``candidates``. With the
      default ``rank_method="surrogate"`` each candidate is priced in
      closed form (:func:`~repro.scheduler.robust
      .rank_placements_robust`, ``method="surrogate"``);
      ``rank_method="des"`` averages ``trials`` injected DES replicas
      per candidate through the batched delta-replay engine instead;
    - ``"reschedule"`` — run the given ``placement`` through the DES
      twice under the drift scenario in ``reschedule``
      (:class:`RescheduleOptions`): once statically and once with the
      online rescheduling controller attached, returning both
      makespans, the relative improvement, and the migration log.

    A positive ``robust_rate`` prices failures into search/score
    requests through a node-crash
    :class:`~repro.faults.analytic.RobustnessTerm` (weight
    ``robust_weight``, recovery ``policy``); rank requests always use
    ``robust_rate`` as the crash/straggler rate of the ranking's
    failure model.
    """

    kind: str
    spec: EnsembleSpec
    num_nodes: int
    cores_per_node: int = 32
    placement: Optional[EnsemblePlacement] = None
    candidates: Optional[Dict[str, EnsemblePlacement]] = None
    robust_rate: float = 0.0
    robust_weight: float = 1.0
    policy: str = "retry"
    base_seed: int = 0
    rank_method: str = "surrogate"
    trials: int = 3
    reschedule: Optional[RescheduleOptions] = None

    def __post_init__(self) -> None:
        if self.kind not in REQUEST_KINDS:
            raise ValidationError(
                f"unknown request kind {self.kind!r}; "
                f"valid: {list(REQUEST_KINDS)}"
            )
        require_positive_int("num_nodes", self.num_nodes)
        require_positive_int("cores_per_node", self.cores_per_node)
        if self.kind == "score" and self.placement is None:
            raise ValidationError("a 'score' request needs a placement")
        if self.kind == "reschedule" and self.placement is None:
            raise ValidationError(
                "a 'reschedule' request needs a placement to drift"
            )
        if self.kind == "rank" and not self.candidates:
            raise ValidationError(
                "a 'rank' request needs at least one named candidate"
            )
        if self.robust_rate < 0:
            raise ValidationError(
                f"robust_rate must be >= 0, got {self.robust_rate!r}"
            )
        if self.policy not in POLICY_NAMES:
            raise ValidationError(
                f"unknown recovery policy {self.policy!r}; "
                f"valid: {list(POLICY_NAMES)}"
            )
        if self.rank_method not in ("surrogate", "des"):
            raise ValidationError(
                f"unknown rank_method {self.rank_method!r}; "
                f"valid: ['surrogate', 'des']"
            )
        require_positive_int("trials", self.trials)


def request_to_dict(request: PlacementRequest) -> dict:
    """Serialize a request (including the schema version)."""
    payload = {
        "schema_version": SCHEMA_VERSION,
        "kind": request.kind,
        "spec": spec_to_dict(request.spec),
        "num_nodes": request.num_nodes,
        "cores_per_node": request.cores_per_node,
        "robust_rate": request.robust_rate,
        "robust_weight": request.robust_weight,
        "policy": request.policy,
        "base_seed": request.base_seed,
    }
    if request.placement is not None:
        payload["placement"] = placement_to_dict(request.placement)
    if request.candidates is not None:
        payload["candidates"] = {
            name: placement_to_dict(p)
            for name, p in request.candidates.items()
        }
    # serialized only when non-default so every digest computed before
    # these fields existed still addresses the same request
    if request.rank_method != "surrogate":
        payload["rank_method"] = request.rank_method
    if request.trials != 3:
        payload["trials"] = request.trials
    if request.reschedule is not None:
        payload["reschedule"] = reschedule_options_to_dict(
            request.reschedule
        )
    return payload


def request_from_dict(payload: dict) -> PlacementRequest:
    """Rebuild a request; unknown schema versions are rejected."""
    version = payload.get("schema_version", SCHEMA_VERSION)
    if version != SCHEMA_VERSION:
        raise ValidationError(
            f"unsupported schema_version {version!r} "
            f"(this build speaks {SCHEMA_VERSION})"
        )
    placement = payload.get("placement")
    candidates = payload.get("candidates")
    return PlacementRequest(
        kind=payload["kind"],
        spec=spec_from_dict(payload["spec"]),
        num_nodes=payload["num_nodes"],
        cores_per_node=payload.get("cores_per_node", 32),
        placement=(
            placement_from_dict(placement) if placement is not None else None
        ),
        candidates=(
            {n: placement_from_dict(p) for n, p in candidates.items()}
            if candidates is not None
            else None
        ),
        robust_rate=payload.get("robust_rate", 0.0),
        robust_weight=payload.get("robust_weight", 1.0),
        policy=payload.get("policy", "retry"),
        base_seed=payload.get("base_seed", 0),
        rank_method=payload.get("rank_method", "surrogate"),
        trials=payload.get("trials", 3),
        reschedule=(
            reschedule_options_from_dict(payload["reschedule"])
            if "reschedule" in payload
            else None
        ),
    )


def canonical_json(payload: dict) -> str:
    """The canonical rendering digests are computed over."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def canonical_digest(request: PlacementRequest) -> str:
    """Content-addressed key of one request (hex SHA-256).

    Every semantic field participates — spec content, kind, budgets,
    placement/candidates, and the fault model — so two requests share
    a digest iff the service would compute the identical result for
    both. Submission metadata (priority, timeouts) never enters.
    """
    rendered = canonical_json(request_to_dict(request))
    return hashlib.sha256(rendered.encode("utf-8")).hexdigest()
