"""The service wire format: lossless JSON round-trips.

Everything the service moves over HTTP — ensemble specs, placements,
requests, scores — serializes here, and *only* here, so the one-shot
CLI (``plan --json``) and the service speak the same format. The
round-trip contract is exact, not approximate: ``json.dumps`` renders
floats with ``repr`` and Python parses them back to the identical
IEEE-754 value, so a :class:`~repro.scheduler.objectives
.PlacementScore` that travels through the API carries the very floats
the scorer produced. The verify subsystem's service tier asserts this
with tolerance 0.0.

Component models serialize by *content*, not by reference: every
constructor parameter plus the full
:class:`~repro.platform.contention.WorkloadProfile` — the fields the
:class:`~repro.search.cache.StageCache` fingerprints — so a
deserialized spec scores bit-identically to the original. Only the two
paper model types are wire-transportable; an unknown
:class:`~repro.components.base.ComponentModel` subclass raises
:class:`~repro.util.errors.ValidationError` rather than serializing
lossily.

:func:`canonical_digest` hashes the canonical JSON rendering of a
request (sorted keys, no whitespace), giving the content-addressed key
the :class:`~repro.service.cache.ResultCache` and the deterministic
job ids build on: two semantically identical requests — however they
were constructed — share one digest.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Dict, Optional, Tuple

from repro.components.analysis import EigenAnalysisModel
from repro.components.base import ComponentModel
from repro.components.simulation import MDSimulationModel
from repro.coschedule.requests import (
    EnsembleRequest,
    MembershipEvent,
    validate_stream,
)
from repro.faults.recovery import POLICY_NAMES
from repro.platform.contention import WorkloadProfile
from repro.runtime.placement import EnsemblePlacement, MemberPlacement
from repro.runtime.spec import EnsembleSpec, MemberSpec
from repro.scheduler.objectives import PlacementScore
from repro.scheduler.robust import RobustScore
from repro.util.errors import ValidationError
from repro.util.validation import require_positive_int

#: Wire-format version carried by every request payload.
SCHEMA_VERSION = 1

#: Request kinds the service executes.
REQUEST_KINDS: Tuple[str, ...] = (
    "search",
    "score",
    "rank",
    "reschedule",
    "coschedule",
)

_PROFILE_FIELDS = (
    "working_set_bytes",
    "llc_refs_per_instr",
    "solo_llc_miss_ratio",
    "max_llc_miss_ratio",
    "contention_exponent",
    "base_cpi",
    "instructions_per_unit",
    "miss_penalty_cycles",
)


# -- components and specs ----------------------------------------------------
def _profile_to_dict(profile: WorkloadProfile) -> dict:
    out = {"name": profile.name}
    for field in _PROFILE_FIELDS:
        out[field] = getattr(profile, field)
    return out


def _profile_from_dict(payload: dict) -> WorkloadProfile:
    return WorkloadProfile(**{k: payload[k] for k in ("name",) + _PROFILE_FIELDS})


def component_to_dict(model: ComponentModel) -> dict:
    """Serialize one component model by content.

    Raises
    ------
    ValidationError
        For model types outside the wire format (custom subclasses
        would round-trip lossily, so they are rejected instead).
    """
    if isinstance(model, MDSimulationModel):
        return {
            "type": "md_simulation",
            "name": model.name,
            "cores": model.cores,
            "natoms": model.natoms,
            "stride": model.stride,
            "seconds_per_atom_step": model.seconds_per_atom_step,
            "serial_fraction": model.serial_fraction,
            "profile": _profile_to_dict(model.profile),
        }
    if isinstance(model, EigenAnalysisModel):
        return {
            "type": "eigen_analysis",
            "name": model.name,
            "cores": model.cores,
            "natoms": model.natoms,
            "single_core_time": model.single_core_time,
            "serial_fraction": model.serial_fraction,
            "profile": _profile_to_dict(model.profile),
        }
    raise ValidationError(
        f"component {model.name!r} has non-serializable type "
        f"{type(model).__qualname__}; wire format supports "
        f"MDSimulationModel and EigenAnalysisModel"
    )


def component_from_dict(payload: dict) -> ComponentModel:
    """Rebuild a component model from its wire dict."""
    kind = payload.get("type")
    profile = _profile_from_dict(payload["profile"])
    if kind == "md_simulation":
        return MDSimulationModel(
            name=payload["name"],
            cores=payload["cores"],
            natoms=payload["natoms"],
            stride=payload["stride"],
            seconds_per_atom_step=payload["seconds_per_atom_step"],
            serial_fraction=payload["serial_fraction"],
            profile=profile,
        )
    if kind == "eigen_analysis":
        return EigenAnalysisModel(
            name=payload["name"],
            cores=payload["cores"],
            natoms=payload["natoms"],
            single_core_time=payload["single_core_time"],
            serial_fraction=payload["serial_fraction"],
            profile=profile,
        )
    raise ValidationError(f"unknown component type {kind!r} in payload")


def member_to_dict(member: MemberSpec) -> dict:
    """Serialize one :class:`MemberSpec` (content-complete)."""
    return {
        "name": member.name,
        "n_steps": member.n_steps,
        "simulation": component_to_dict(member.simulation),
        "analyses": [component_to_dict(a) for a in member.analyses],
    }


def member_from_dict(payload: dict) -> MemberSpec:
    """Rebuild one :class:`MemberSpec` from its wire dict."""
    return MemberSpec(
        name=payload["name"],
        simulation=component_from_dict(payload["simulation"]),
        analyses=tuple(
            component_from_dict(a) for a in payload["analyses"]
        ),
        n_steps=payload["n_steps"],
    )


def spec_to_dict(spec: EnsembleSpec) -> dict:
    """Serialize an :class:`EnsembleSpec` (content-complete)."""
    return {
        "name": spec.name,
        "members": [member_to_dict(m) for m in spec.members],
    }


def spec_from_dict(payload: dict) -> EnsembleSpec:
    """Rebuild an :class:`EnsembleSpec`; validation reruns on build."""
    members = tuple(member_from_dict(m) for m in payload["members"])
    return EnsembleSpec(payload["name"], members)


# -- placements --------------------------------------------------------------
def placement_to_dict(placement: EnsemblePlacement) -> dict:
    return {
        "num_nodes": placement.num_nodes,
        "members": [
            {
                "simulation_node": mp.simulation_node,
                "analysis_nodes": list(mp.analysis_nodes),
            }
            for mp in placement.members
        ],
    }


def placement_from_dict(payload: dict) -> EnsemblePlacement:
    return EnsemblePlacement(
        num_nodes=payload["num_nodes"],
        members=tuple(
            MemberPlacement(
                simulation_node=m["simulation_node"],
                analysis_nodes=tuple(m["analysis_nodes"]),
            )
            for m in payload["members"]
        ),
    )


# -- scores ------------------------------------------------------------------
def score_to_dict(score: PlacementScore) -> dict:
    """Serialize a :class:`PlacementScore` (floats survive exactly)."""
    return {
        "placement": placement_to_dict(score.placement),
        "objective": score.objective,
        "ensemble_makespan": score.ensemble_makespan,
        "num_nodes": score.num_nodes,
        "member_indicators": list(score.member_indicators),
        "robust_penalty": score.robust_penalty,
        "utility": score.utility,
    }


def score_from_dict(payload: dict) -> PlacementScore:
    return PlacementScore(
        placement=placement_from_dict(payload["placement"]),
        objective=payload["objective"],
        ensemble_makespan=payload["ensemble_makespan"],
        num_nodes=payload["num_nodes"],
        member_indicators=tuple(payload["member_indicators"]),
        robust_penalty=payload["robust_penalty"],
    )


def robust_score_to_dict(score: RobustScore) -> dict:
    """Serialize a :class:`~repro.scheduler.robust.RobustScore`."""
    return {
        "name": score.name,
        "placement": placement_to_dict(score.placement),
        "objective": score.objective,
        "ideal_objective": score.ideal_objective,
        "mean_inflation": score.mean_inflation,
        "mean_goodput": score.mean_goodput,
        "num_nodes": score.num_nodes,
        "trials": score.trials,
    }


def robust_score_from_dict(payload: dict) -> RobustScore:
    return RobustScore(
        name=payload["name"],
        placement=placement_from_dict(payload["placement"]),
        objective=payload["objective"],
        ideal_objective=payload["ideal_objective"],
        mean_inflation=payload["mean_inflation"],
        mean_goodput=payload["mean_goodput"],
        num_nodes=payload["num_nodes"],
        trials=payload["trials"],
    )


# -- reschedule options ------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class RescheduleOptions:
    """Drift scenario + controller knobs for a ``reschedule`` request.

    The drift is a single node-attributed event
    (:class:`~repro.reschedule.drift.DriftEvent`): ``drift_kind``
    selects the shape (``"step"``: constant factor from
    ``drift_start`` on; ``"ramp"``: per-step increment), and the
    controller knobs mirror
    :class:`~repro.reschedule.controller.RescheduleController`.
    """

    drift_node: int = 0
    drift_kind: str = "step"
    drift_magnitude: float = 2.5
    drift_start: int = 4
    window: int = 4
    threshold: float = 1.25
    min_dwell: int = 4
    min_gain: float = 0.0
    max_migrations: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.drift_kind not in ("step", "ramp"):
            raise ValidationError(
                f"unknown drift_kind {self.drift_kind!r}; "
                f"valid: ['step', 'ramp']"
            )
        if self.drift_node < 0:
            raise ValidationError(
                f"drift_node must be >= 0, got {self.drift_node!r}"
            )
        if self.drift_start < 0:
            raise ValidationError(
                f"drift_start must be >= 0, got {self.drift_start!r}"
            )
        if self.drift_kind == "step" and self.drift_magnitude <= 1.0:
            raise ValidationError(
                f"step drift_magnitude must be > 1, got "
                f"{self.drift_magnitude!r}"
            )
        if self.drift_kind == "ramp" and self.drift_magnitude <= 0.0:
            raise ValidationError(
                f"ramp drift_magnitude must be > 0, got "
                f"{self.drift_magnitude!r}"
            )
        if self.threshold <= 1.0:
            raise ValidationError(
                f"threshold must be > 1, got {self.threshold!r}"
            )
        require_positive_int("window", self.window)
        require_positive_int("min_dwell", self.min_dwell)
        require_positive_int("max_migrations", self.max_migrations)


def reschedule_options_to_dict(options: RescheduleOptions) -> dict:
    """Serialize the full options record (attached only when present)."""
    return dataclasses.asdict(options)


def reschedule_options_from_dict(payload: dict) -> RescheduleOptions:
    defaults = RescheduleOptions()
    return RescheduleOptions(
        **{
            field.name: payload.get(
                field.name, getattr(defaults, field.name)
            )
            for field in dataclasses.fields(RescheduleOptions)
        }
    )


# -- coschedule options ------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class CoscheduleOptions:
    """Stream + cluster objective for a ``coschedule`` request.

    ``requests`` is the full ensemble stream (the enclosing
    :class:`PlacementRequest`'s ``spec`` must equal the first stream
    entry's spec, and ``num_nodes`` is the cluster size). The three
    weights configure the :class:`~repro.coschedule.allocator
    .ClusterObjective`; ``max_partitions`` bounds the allocator's
    exhaustive grant-lattice before it falls back to greedy
    water-filling.
    """

    requests: Tuple["EnsembleRequest", ...]
    utility_weight: float = 1.0
    fairness_weight: float = 0.0
    deadline_weight: float = 0.0
    max_partitions: int = 20_000

    def __post_init__(self) -> None:
        if not self.requests:
            raise ValidationError(
                "a coschedule request needs at least one stream entry"
            )
        validate_stream(self.requests)
        for label in ("utility_weight", "fairness_weight", "deadline_weight"):
            value = getattr(self, label)
            if value < 0:
                raise ValidationError(
                    f"{label} must be >= 0, got {value!r}"
                )
        if (
            self.utility_weight == 0
            and self.fairness_weight == 0
            and self.deadline_weight == 0
        ):
            raise ValidationError(
                "at least one cluster objective weight must be positive"
            )
        require_positive_int("max_partitions", self.max_partitions)


def membership_event_to_dict(event: MembershipEvent) -> dict:
    payload = {
        "offset": event.offset,
        "action": event.action,
        "member_name": event.member_name,
    }
    if event.member is not None:
        payload["member"] = member_to_dict(event.member)
    return payload


def membership_event_from_dict(payload: dict) -> MembershipEvent:
    member = payload.get("member")
    return MembershipEvent(
        offset=payload["offset"],
        action=payload["action"],
        member_name=payload["member_name"],
        member=member_from_dict(member) if member is not None else None,
    )


def ensemble_request_to_dict(request: "EnsembleRequest") -> dict:
    """Serialize one stream entry (optional fields only when set)."""
    payload = {
        "name": request.name,
        "spec": spec_to_dict(request.spec),
        "arrival_time": request.arrival_time,
        "priority": request.priority,
        "min_nodes": request.min_nodes,
    }
    if request.deadline is not None:
        payload["deadline"] = request.deadline
    if request.max_nodes is not None:
        payload["max_nodes"] = request.max_nodes
    if request.membership:
        payload["membership"] = [
            membership_event_to_dict(e) for e in request.membership
        ]
    return payload


def ensemble_request_from_dict(payload: dict) -> "EnsembleRequest":
    from repro.coschedule.requests import EnsembleRequest

    return EnsembleRequest(
        name=payload["name"],
        spec=spec_from_dict(payload["spec"]),
        arrival_time=payload.get("arrival_time", 0.0),
        deadline=payload.get("deadline"),
        priority=payload.get("priority", 0),
        min_nodes=payload.get("min_nodes", 1),
        max_nodes=payload.get("max_nodes"),
        membership=tuple(
            membership_event_from_dict(e)
            for e in payload.get("membership", [])
        ),
    )


def coschedule_options_to_dict(options: CoscheduleOptions) -> dict:
    """Serialize the full options record (attached only when present)."""
    return {
        "requests": [
            ensemble_request_to_dict(r) for r in options.requests
        ],
        "utility_weight": options.utility_weight,
        "fairness_weight": options.fairness_weight,
        "deadline_weight": options.deadline_weight,
        "max_partitions": options.max_partitions,
    }


def coschedule_options_from_dict(payload: dict) -> CoscheduleOptions:
    return CoscheduleOptions(
        requests=tuple(
            ensemble_request_from_dict(r) for r in payload["requests"]
        ),
        utility_weight=payload.get("utility_weight", 1.0),
        fairness_weight=payload.get("fairness_weight", 0.0),
        deadline_weight=payload.get("deadline_weight", 0.0),
        max_partitions=payload.get("max_partitions", 20_000),
    )


# -- requests ----------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class PlacementRequest:
    """One placement query, as the service understands it.

    ``kind`` selects the execution path:

    - ``"search"`` — exhaustive canonical search over ``num_nodes`` x
      ``cores_per_node`` via :func:`~repro.search.engine
      .find_best_placement`; returns the best score and the candidate
      count;
    - ``"score"`` — score the given ``placement`` via
      :func:`~repro.scheduler.objectives.score_placement`;
    - ``"rank"`` — robust-rank the named ``candidates``. With the
      default ``rank_method="surrogate"`` each candidate is priced in
      closed form (:func:`~repro.scheduler.robust
      .rank_placements_robust`, ``method="surrogate"``);
      ``rank_method="des"`` averages ``trials`` injected DES replicas
      per candidate through the batched delta-replay engine instead;
    - ``"reschedule"`` — run the given ``placement`` through the DES
      twice under the drift scenario in ``reschedule``
      (:class:`RescheduleOptions`): once statically and once with the
      online rescheduling controller attached, returning both
      makespans, the relative improvement, and the migration log.
    - ``"coschedule"`` — run the ensemble stream in ``coschedule``
      (:class:`CoscheduleOptions`) through the cluster-level
      co-scheduler (:class:`~repro.coschedule.loop.CoScheduler`) on a
      ``num_nodes``-node cluster, returning admission decisions,
      completions, the event timeline, and utilization. ``spec`` must
      equal the first stream entry's spec (it keys the digest the
      same way every other kind does).

    A positive ``robust_rate`` prices failures into search/score
    requests through a node-crash
    :class:`~repro.faults.analytic.RobustnessTerm` (weight
    ``robust_weight``, recovery ``policy``); rank requests always use
    ``robust_rate`` as the crash/straggler rate of the ranking's
    failure model.
    """

    kind: str
    spec: EnsembleSpec
    num_nodes: int
    cores_per_node: int = 32
    placement: Optional[EnsemblePlacement] = None
    candidates: Optional[Dict[str, EnsemblePlacement]] = None
    robust_rate: float = 0.0
    robust_weight: float = 1.0
    policy: str = "retry"
    base_seed: int = 0
    rank_method: str = "surrogate"
    trials: int = 3
    reschedule: Optional[RescheduleOptions] = None
    coschedule: Optional[CoscheduleOptions] = None

    def __post_init__(self) -> None:
        if self.kind not in REQUEST_KINDS:
            raise ValidationError(
                f"unknown request kind {self.kind!r}; "
                f"valid: {list(REQUEST_KINDS)}"
            )
        require_positive_int("num_nodes", self.num_nodes)
        require_positive_int("cores_per_node", self.cores_per_node)
        if self.kind == "score" and self.placement is None:
            raise ValidationError("a 'score' request needs a placement")
        if self.kind == "reschedule" and self.placement is None:
            raise ValidationError(
                "a 'reschedule' request needs a placement to drift"
            )
        if self.kind == "rank" and not self.candidates:
            raise ValidationError(
                "a 'rank' request needs at least one named candidate"
            )
        if self.kind == "coschedule":
            if self.coschedule is None:
                raise ValidationError(
                    "a 'coschedule' request needs a stream in coschedule"
                )
            first = self.coschedule.requests[0]
            if spec_to_dict(first.spec) != spec_to_dict(self.spec):
                raise ValidationError(
                    "a 'coschedule' request's spec must equal the first "
                    f"stream entry's spec (got {self.spec.name!r} vs "
                    f"{first.spec.name!r})"
                )
        if self.robust_rate < 0:
            raise ValidationError(
                f"robust_rate must be >= 0, got {self.robust_rate!r}"
            )
        if self.policy not in POLICY_NAMES:
            raise ValidationError(
                f"unknown recovery policy {self.policy!r}; "
                f"valid: {list(POLICY_NAMES)}"
            )
        if self.rank_method not in ("surrogate", "des"):
            raise ValidationError(
                f"unknown rank_method {self.rank_method!r}; "
                f"valid: ['surrogate', 'des']"
            )
        require_positive_int("trials", self.trials)


def request_to_dict(request: PlacementRequest) -> dict:
    """Serialize a request (including the schema version)."""
    payload = {
        "schema_version": SCHEMA_VERSION,
        "kind": request.kind,
        "spec": spec_to_dict(request.spec),
        "num_nodes": request.num_nodes,
        "cores_per_node": request.cores_per_node,
        "robust_rate": request.robust_rate,
        "robust_weight": request.robust_weight,
        "policy": request.policy,
        "base_seed": request.base_seed,
    }
    if request.placement is not None:
        payload["placement"] = placement_to_dict(request.placement)
    if request.candidates is not None:
        payload["candidates"] = {
            name: placement_to_dict(p)
            for name, p in request.candidates.items()
        }
    # serialized only when non-default so every digest computed before
    # these fields existed still addresses the same request
    if request.rank_method != "surrogate":
        payload["rank_method"] = request.rank_method
    if request.trials != 3:
        payload["trials"] = request.trials
    if request.reschedule is not None:
        payload["reschedule"] = reschedule_options_to_dict(
            request.reschedule
        )
    if request.coschedule is not None:
        payload["coschedule"] = coschedule_options_to_dict(
            request.coschedule
        )
    return payload


def request_from_dict(payload: dict) -> PlacementRequest:
    """Rebuild a request; unknown schema versions are rejected."""
    version = payload.get("schema_version", SCHEMA_VERSION)
    if version != SCHEMA_VERSION:
        raise ValidationError(
            f"unsupported schema_version {version!r} "
            f"(this build speaks {SCHEMA_VERSION})"
        )
    placement = payload.get("placement")
    candidates = payload.get("candidates")
    return PlacementRequest(
        kind=payload["kind"],
        spec=spec_from_dict(payload["spec"]),
        num_nodes=payload["num_nodes"],
        cores_per_node=payload.get("cores_per_node", 32),
        placement=(
            placement_from_dict(placement) if placement is not None else None
        ),
        candidates=(
            {n: placement_from_dict(p) for n, p in candidates.items()}
            if candidates is not None
            else None
        ),
        robust_rate=payload.get("robust_rate", 0.0),
        robust_weight=payload.get("robust_weight", 1.0),
        policy=payload.get("policy", "retry"),
        base_seed=payload.get("base_seed", 0),
        rank_method=payload.get("rank_method", "surrogate"),
        trials=payload.get("trials", 3),
        reschedule=(
            reschedule_options_from_dict(payload["reschedule"])
            if "reschedule" in payload
            else None
        ),
        coschedule=(
            coschedule_options_from_dict(payload["coschedule"])
            if "coschedule" in payload
            else None
        ),
    )


def canonical_json(payload: dict) -> str:
    """The canonical rendering digests are computed over."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def canonical_digest(request: PlacementRequest) -> str:
    """Content-addressed key of one request (hex SHA-256).

    Every semantic field participates — spec content, kind, budgets,
    placement/candidates, and the fault model — so two requests share
    a digest iff the service would compute the identical result for
    both. Submission metadata (priority, timeouts) never enters.
    """
    rendered = canonical_json(request_to_dict(request))
    return hashlib.sha256(rendered.encode("utf-8")).hexdigest()
