"""Workflow ensemble runtime: specs, placement, execution.

The runtime mirrors the paper's Figure 2 architecture: ensemble
components talk to a data transport layer through plugin-mediated
chunk staging, coordinated by the synchronous no-buffering protocol.
Execution is simulated on the modeled platform by a discrete-event
executor; a closed-form analytic predictor shares the same effective
stage-time model and is cross-validated against the executor in the
test suite.

Public entry points:

- :func:`~repro.runtime.runner.run_ensemble` — run a configured
  ensemble end to end, returning an
  :class:`~repro.runtime.results.ExecutionResult` (traces, metrics,
  member measurements, indicators input).
- :func:`~repro.runtime.analytic.predict_member_stages` — fast
  steady-state prediction without discrete-event execution.
"""

from repro.runtime.analytic import predict_member_stages
from repro.runtime.compare import (
    PlacementComparison,
    compare_placements,
    render_comparison,
)
from repro.runtime.effective import EffectiveMember, compute_effective_stages
from repro.runtime.executor import EnsembleExecutor
from repro.runtime.placement import EnsemblePlacement, MemberPlacement
from repro.runtime.results import ExecutionResult, MemberResult
from repro.runtime.runner import run_ensemble
from repro.runtime.spec import EnsembleSpec, MemberSpec

__all__ = [
    "EffectiveMember",
    "EnsembleExecutor",
    "EnsemblePlacement",
    "EnsembleSpec",
    "ExecutionResult",
    "MemberPlacement",
    "MemberResult",
    "MemberSpec",
    "PlacementComparison",
    "compare_placements",
    "compute_effective_stages",
    "predict_member_stages",
    "render_comparison",
    "run_ensemble",
]
