"""Effective stage times under a placement.

This module computes, for every component, the stage durations the
platform model predicts for a given placement — the single source of
truth shared by the analytic predictor and the discrete-event executor:

- ``S_eff`` — the simulation's solo compute time, dilated by the
  contention assessment of its node, further stretched by the DIMES
  progress-thread tax when it serves remote consumers, plus the per-op
  producer overhead of each remote read;
- ``W_eff`` — the DTL write cost (marshal + transport);
- ``R_eff[j]`` — the DTL read cost of analysis ``j`` (locality
  sensitive);
- ``A_eff[j]`` — analysis ``j``'s solo compute time, dilated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.dtl.base import DataTransportLayer
from repro.platform.cluster import Cluster
from repro.platform.contention import ContentionAssessment
from repro.runtime.placement import EnsemblePlacement, MemberPlacement
from repro.runtime.spec import EnsembleSpec, MemberSpec
from repro.util.errors import PlacementError


@dataclass(frozen=True)
class EffectiveComponent:
    """One component's effective per-step stage model.

    ``transport_time`` is the share of ``io_time`` spent on the
    network (nonzero only for remote reads) — the portion that
    serializes on the producer's NIC when the executor runs in
    congestion-aware mode.
    """

    name: str
    node: int
    compute_time: float  # S_eff or A_eff
    io_time: float  # W_eff or R_eff
    assessment: ContentionAssessment
    transport_time: float = 0.0
    producer_node: int = -1  # whose NIC a remote read occupies


@dataclass(frozen=True)
class EffectiveMember:
    """Effective stage times of one member under a placement."""

    name: str
    simulation: EffectiveComponent
    analyses: Tuple[EffectiveComponent, ...]
    n_steps: int
    total_cores: int


def compute_effective_stages(
    spec: EnsembleSpec,
    placement: EnsemblePlacement,
    cluster: Cluster,
    dtl: DataTransportLayer,
    allow_oversubscription: bool = False,
) -> List[EffectiveMember]:
    """Place the ensemble on the cluster and evaluate stage times.

    The cluster is reset, all components are allocated (making
    contention a static property of the placement — all components run
    concurrently for the whole execution), the node-level contention
    model is assessed once, and DTL costs are evaluated per coupling.
    """
    placement.validate_against(
        spec,
        cluster.node_spec.cores,
        allow_oversubscription=allow_oversubscription,
    )
    if placement.num_nodes > cluster.num_nodes:
        raise PlacementError(
            f"placement spans {placement.num_nodes} nodes, cluster has "
            f"{cluster.num_nodes}"
        )
    cluster.reset()

    # 1. allocate everything
    for member_spec, mp in zip(spec.members, placement.members):
        cluster.node(mp.simulation_node).allocate(
            member_spec.simulation.name,
            member_spec.simulation.cores,
            member_spec.simulation.profile,
            allow_oversubscription=allow_oversubscription,
        )
        for ana, node in zip(member_spec.analyses, mp.analysis_nodes):
            cluster.node(node).allocate(
                ana.name,
                ana.cores,
                ana.profile,
                allow_oversubscription=allow_oversubscription,
            )

    # 2. one static contention assessment per component
    assessments: Dict[str, ContentionAssessment] = cluster.assess_all()

    # 3. per-member effective stage times
    members: List[EffectiveMember] = []
    for member_spec, mp in zip(spec.members, placement.members):
        members.append(member_effective_stages(member_spec, mp, assessments, dtl))
    return members


def member_effective_stages(
    member_spec: MemberSpec,
    mp: MemberPlacement,
    assessments: Dict[str, ContentionAssessment],
    dtl: DataTransportLayer,
) -> EffectiveMember:
    """Assemble one member's effective stages from node assessments.

    ``assessments`` must contain an entry for each of the member's
    components (keyed by component name). This is the single code path
    used both by :func:`compute_effective_stages` and by the memoized
    stage cache in :mod:`repro.search` — sharing it is what makes the
    cached predictions bit-identical to the full ones.
    """
    progress_tax = getattr(dtl, "producer_progress_tax", 0.0)
    sim_model = member_spec.simulation
    sim_assess = assessments[sim_model.name]
    payload = sim_model.payload_bytes()

    remote_consumers = [
        node for node in mp.analysis_nodes if node != mp.simulation_node
    ]
    per_op_overhead = sum(
        dtl.read_cost(mp.simulation_node, node, payload).producer_overhead
        for node in remote_consumers
    )
    s_eff = (
        sim_model.solo_compute_time()
        * sim_assess.dilation
        * (1.0 + progress_tax * len(remote_consumers))
        + per_op_overhead
    )
    w_eff = dtl.write_cost(mp.simulation_node, payload).total
    sim_effective = EffectiveComponent(
        name=sim_model.name,
        node=mp.simulation_node,
        compute_time=s_eff,
        io_time=w_eff,
        assessment=sim_assess,
    )

    analyses: List[EffectiveComponent] = []
    for ana_model, node in zip(member_spec.analyses, mp.analysis_nodes):
        ana_assess = assessments[ana_model.name]
        read = dtl.read_cost(mp.simulation_node, node, payload)
        is_remote = node != mp.simulation_node
        analyses.append(
            EffectiveComponent(
                name=ana_model.name,
                node=node,
                compute_time=ana_model.solo_compute_time()
                * ana_assess.dilation,
                io_time=read.total,
                assessment=ana_assess,
                transport_time=read.transport if is_remote else 0.0,
                producer_node=mp.simulation_node,
            )
        )
    return EffectiveMember(
        name=member_spec.name,
        simulation=sim_effective,
        analyses=tuple(analyses),
        n_steps=member_spec.n_steps,
        total_cores=member_spec.total_cores,
    )
