"""What-if comparison of candidate placements.

:func:`compare_placements` is the "which placement should I use?"
one-call API: evaluate any number of named candidate placements for one
ensemble through the analytic predictor, and return them ranked by the
paper's full objective, with makespans and per-member efficiencies
attached. The text rendering is suitable for direct printing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.efficiency import computational_efficiency
from repro.core.insitu import member_makespan
from repro.core.pipeline import ensemble_objective_paths
from repro.core.indicators import MemberMeasurement
from repro.dtl.base import DataTransportLayer
from repro.platform.cluster import Cluster
from repro.platform.specs import make_cori_like_cluster
from repro.runtime.analytic import predict_member_stages
from repro.runtime.placement import EnsemblePlacement
from repro.runtime.spec import EnsembleSpec
from repro.util.errors import ValidationError


@dataclass(frozen=True)
class PlacementComparison:
    """One candidate's evaluation."""

    name: str
    placement: EnsemblePlacement
    objective: float  # F(P^{U,A,P})
    objective_paths: Dict[str, float]
    ensemble_makespan: float
    member_efficiencies: Dict[str, float]


def compare_placements(
    spec: EnsembleSpec,
    candidates: Mapping[str, EnsemblePlacement],
    cluster_factory=None,
    dtl: Optional[DataTransportLayer] = None,
) -> List[PlacementComparison]:
    """Evaluate and rank candidate placements (best first).

    ``cluster_factory`` maps a node count to a
    :class:`~repro.platform.cluster.Cluster` (defaults to Cori-like
    allocations sized per candidate).
    """
    if not candidates:
        raise ValidationError("at least one candidate placement required")
    factory = cluster_factory or make_cori_like_cluster

    results: List[PlacementComparison] = []
    for name, placement in candidates.items():
        cluster = factory(placement.num_nodes)
        stages = predict_member_stages(
            spec, placement, cluster=cluster, dtl=dtl
        )
        measurements: List[MemberMeasurement] = []
        worst = 0.0
        efficiencies: Dict[str, float] = {}
        for member, mp in zip(spec.members, placement.members):
            ms = stages[member.name]
            measurements.append(
                MemberMeasurement(
                    member.name,
                    ms,
                    member.total_cores,
                    mp.to_placement_sets(),
                )
            )
            efficiencies[member.name] = computational_efficiency(ms)
            worst = max(worst, member_makespan(ms, member.n_steps))
        paths = ensemble_objective_paths(measurements, placement.num_nodes)
        results.append(
            PlacementComparison(
                name=name,
                placement=placement,
                objective=paths["U,A,P"],
                objective_paths=paths,
                ensemble_makespan=worst,
                member_efficiencies=efficiencies,
            )
        )
    results.sort(key=lambda c: -c.objective)
    return results


def render_comparison(results: List[PlacementComparison]) -> str:
    """Text table of a :func:`compare_placements` outcome."""
    if not results:
        raise ValidationError("nothing to render")
    lines = [
        f"{'candidate':20s} {'F(U,A,P)':>10s} {'makespan':>10s} "
        f"{'nodes':>5s}  members (E)"
    ]
    for c in results:
        members = ", ".join(
            f"{name}={e:.3f}" for name, e in c.member_efficiencies.items()
        )
        lines.append(
            f"{c.name:20s} {c.objective:10.6f} "
            f"{c.ensemble_makespan:10.1f} {c.placement.num_nodes:5d}  "
            f"{members}"
        )
    return "\n".join(lines)
