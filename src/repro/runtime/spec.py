"""Workflow ensemble specification.

A :class:`MemberSpec` couples one simulation model with ``K >= 1``
analysis models (the paper restricts members to a single simulation,
§2.1); an :class:`EnsembleSpec` is the set of members that run
concurrently, all starting at the same time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.components.analysis import EigenAnalysisModel
from repro.components.base import ComponentKind, ComponentModel
from repro.components.simulation import MDSimulationModel
from repro.util.errors import ConfigurationError, ValidationError
from repro.util.validation import require_positive_int


@dataclass
class MemberSpec:
    """One ensemble member: a simulation coupled with K analyses."""

    name: str
    simulation: ComponentModel
    analyses: Tuple[ComponentModel, ...]
    n_steps: int = 37

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("member name must be non-empty")
        if not isinstance(self.analyses, tuple):
            self.analyses = tuple(self.analyses)
        if self.simulation.spec.kind is not ComponentKind.SIMULATION:
            raise ConfigurationError(
                f"member {self.name!r}: simulation slot holds a "
                f"{self.simulation.spec.kind.value} component"
            )
        if not self.analyses:
            raise ConfigurationError(
                f"member {self.name!r} needs at least one analysis (K >= 1)"
            )
        for ana in self.analyses:
            if ana.spec.kind is not ComponentKind.ANALYSIS:
                raise ConfigurationError(
                    f"member {self.name!r}: analysis slot holds a "
                    f"{ana.spec.kind.value} component"
                )
        require_positive_int("n_steps", self.n_steps)
        names = [self.simulation.name] + [a.name for a in self.analyses]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"member {self.name!r} has duplicate component names: {names}"
            )

    @property
    def num_couplings(self) -> int:
        """K_i."""
        return len(self.analyses)

    @property
    def total_cores(self) -> int:
        """c_i = cs_i + sum_j ca_i^j."""
        return self.simulation.cores + sum(a.cores for a in self.analyses)

    @property
    def component_names(self) -> Tuple[str, ...]:
        return (self.simulation.name,) + tuple(a.name for a in self.analyses)


@dataclass
class EnsembleSpec:
    """A workflow ensemble: N members running concurrently."""

    name: str
    members: Tuple[MemberSpec, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("ensemble name must be non-empty")
        if not isinstance(self.members, tuple):
            self.members = tuple(self.members)
        if not self.members:
            raise ConfigurationError("an ensemble needs at least one member")
        member_names = [m.name for m in self.members]
        if len(set(member_names)) != len(member_names):
            raise ConfigurationError(f"duplicate member names: {member_names}")
        component_names = [
            n for m in self.members for n in m.component_names
        ]
        if len(set(component_names)) != len(component_names):
            raise ConfigurationError(
                "component names must be unique across the whole ensemble"
            )

    @property
    def num_members(self) -> int:
        """N."""
        return len(self.members)


def default_member(
    name: str,
    num_analyses: int = 1,
    n_steps: int = 37,
    sim_cores: int = 16,
    ana_cores: int = 8,
    natoms: int = 250_000,
    stride: int = 800,
) -> MemberSpec:
    """The paper's default member: MD simulation + K identical analyses.

    16-core simulation at stride 800 and 8-core analyses — the §3.4
    operating point. ``n_steps`` defaults to 37 (30 000 MD steps at
    stride 800, rounded down).
    """
    require_positive_int("num_analyses", num_analyses)
    sim = MDSimulationModel(
        f"{name}.sim", cores=sim_cores, natoms=natoms, stride=stride
    )
    analyses = tuple(
        EigenAnalysisModel(f"{name}.ana{j + 1}", cores=ana_cores, natoms=natoms)
        for j in range(num_analyses)
    )
    return MemberSpec(name=name, simulation=sim, analyses=analyses, n_steps=n_steps)
