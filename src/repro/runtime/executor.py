"""Discrete-event execution of a workflow ensemble.

Implements the synchronous coupling protocol of §2.1/§3.1 as DES
processes over the effective stage times:

- the simulation runs ``S -> I^S -> W`` each step, where ``I^S`` waits
  until every coupled analysis has finished *reading* the previous
  step's chunk (``W_{i+1}`` strictly after all ``R_i`` — the
  no-buffering rule);
- each analysis runs ``R -> A -> I^A``, where ``R_i`` can begin only
  once ``W_i`` completed, and ``I^A`` waits for the next write.

Every stage instance is recorded into a
:class:`~repro.monitoring.tracer.StageTracer`. Optional multiplicative
timing noise (seeded) perturbs each stage instance independently,
modeling step-to-step variation; with zero noise the run is exactly
the analytic steady state after the first step.

With ``stage_real_chunks=True`` the execution additionally pushes real
(small) chunk payloads through the DTL's functional store in lockstep
with the simulated time: the W stage stages a chunk, each R stage
retrieves and verifies it, and the DTL's own no-buffering checks police
the protocol *during* the run. This mode proves the timing model and
the data path implement the same protocol.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, List, Optional, Set

import numpy as np

from repro.des.engine import Environment
from repro.des.events import Event
from repro.des.resources import Resource
from repro.dtl.base import DataTransportLayer
from repro.dtl.chunk import Chunk, ChunkKey
from repro.dtl.dimes import InMemoryStagingDTL
from repro.faults.injector import (
    AnalysisDropped,
    FaultInjector,
    FaultLog,
    StageContext,
)
from repro.faults.models import FailureModel
from repro.faults.recovery import RecoveryPolicy
from repro.monitoring.tracer import Stage, StageTracer
from repro.platform.cluster import Cluster
from repro.platform.specs import make_cori_like_cluster
from repro.runtime.effective import EffectiveMember, compute_effective_stages
from repro.runtime.placement import EnsemblePlacement
from repro.runtime.results import ExecutionResult, build_result
from repro.runtime.spec import EnsembleSpec
from repro.util.errors import ProtocolError
from repro.util.rng import RandomSource
from repro.util.validation import require_non_negative

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.reschedule.controller import RescheduleController
    from repro.reschedule.drift import DriftSchedule
    from repro.reschedule.migration import MigrationRecord
    from repro.verify.invariants import InvariantChecker, InvariantReport


class _StaticBinding:
    """The no-rescheduler binding: one member, fixed for the whole run.

    The DES processes read their member through a binding cell so a
    :class:`~repro.reschedule.controller.RescheduleController` can swap
    effective stages at a step boundary. Without a controller the cell
    simply never changes — the per-step re-read returns the same
    object, so the emitted event sequence is byte-identical to the
    pre-binding executor.
    """

    __slots__ = ("member",)

    def __init__(self, member: EffectiveMember) -> None:
        self.member = member


class TimelineRecorder:
    """Captures every stage instance's nominal inputs at the choke point.

    The batched fault-replication engine (:mod:`repro.faults.batched`)
    replays fault perturbations against a fault-free baseline run. For
    that replay to be bit-exact it needs the *nominal* (already
    noise-jittered) duration handed to each ``_stage`` call — not the
    traced ``end - start`` span, which for injected runs includes fault
    costs. The recorder observes ``(member, component, stage, step,
    duration, step_time)`` tuples as the run schedules them; it never
    reads or advances the clock, so a recorded run's trace is
    byte-identical to an unrecorded one.
    """

    def __init__(self) -> None:
        self.records: List[tuple] = []

    def observe(
        self,
        member: str,
        component: str,
        stage: str,
        step: int,
        duration: float,
        step_time: float,
    ) -> None:
        self.records.append(
            (member, component, stage, step, duration, step_time)
        )


class EnsembleExecutor:
    """Runs one workflow ensemble configuration end to end.

    Parameters
    ----------
    spec / placement:
        What to run and where.
    cluster:
        Platform model; defaults to a Cori-like allocation sized to the
        placement.
    dtl:
        Staging tier; defaults to the DIMES-like in-memory tier wired
        to the cluster.
    seed:
        Seed for the timing-noise streams (one independent stream per
        component).
    timing_noise:
        Relative half-width of per-stage multiplicative jitter
        (0 = deterministic).
    stage_real_chunks:
        When True, every W/R stage also performs a real chunk
        stage/retrieve against the DTL store (small sentinel payloads),
        so protocol violations surface as failures during execution.
    congestion_aware:
        When True, the network-transport share of every remote read
        serializes on the producer node's NIC (a capacity-1 DES
        resource per node): concurrent remote reads from one node
        queue instead of proceeding in parallel. Off by default — at
        the paper's chunk sizes transport is negligible, but for large
        payloads the serialization visibly stretches R.
    failure_model:
        Optional :class:`~repro.faults.models.FailureModel`. When set,
        its fault schedule is injected into the run: every timed stage
        is routed through a :class:`~repro.faults.injector
        .FaultInjector`, which perturbs stage events without touching
        the coupling-protocol logic. A model with an empty schedule
        (e.g. rate 0) produces a byte-identical trace to no model at
        all.
    recovery:
        Recovery policy applied to injected crashes (default:
        retry with exponential backoff). Ignored without a
        ``failure_model``.
    verify:
        When True, an :class:`~repro.verify.invariants
        .InvariantChecker` audits the run at the stage choke point
        (clock monotonicity, step ordering, Eq. 1 period consistency,
        resource/DTL conservation, Eq. 3 efficiency bounds) and
        :meth:`run` raises :class:`~repro.verify.invariants
        .InvariantViolation` on any violation; the report is kept on
        :attr:`invariant_report` either way. The checker only *reads*
        the clock, so a verified run's trace is byte-identical to an
        unverified one; when False the only extra cost is an
        ``is None`` test per stage.
    drift:
        Optional :class:`~repro.reschedule.drift.DriftSchedule` or
        :class:`~repro.reschedule.drift.DriftModel`: node-attributed
        multiplicative slowdowns applied to stage durations *after*
        the jitter draw, so the RNG streams of a drifted run are
        identical to the baseline's. An empty schedule (e.g. rate 0)
        produces a byte-identical trace to no drift at all.
    rescheduler:
        Optional :class:`~repro.reschedule.controller
        .RescheduleController`. When set, the controller observes
        every stage at the choke point, and members adopt accepted
        re-placements (with their DTL state-transfer pause) at step
        boundaries. With zero drift the controller never fires, and
        the trace is byte-identical to a bare run.
    """

    def __init__(
        self,
        spec: EnsembleSpec,
        placement: EnsemblePlacement,
        cluster: Optional[Cluster] = None,
        dtl: Optional[DataTransportLayer] = None,
        seed: Optional[int] = 0,
        timing_noise: float = 0.0,
        allow_oversubscription: bool = False,
        stage_real_chunks: bool = False,
        congestion_aware: bool = False,
        failure_model: Optional[FailureModel] = None,
        recovery: Optional[RecoveryPolicy] = None,
        verify: bool = False,
        timeline_recorder: Optional[TimelineRecorder] = None,
        drift: Optional[object] = None,
        rescheduler: Optional[RescheduleController] = None,
    ) -> None:
        require_non_negative("timing_noise", timing_noise)
        self.spec = spec
        self.placement = placement
        self.cluster = cluster or make_cori_like_cluster(placement.num_nodes)
        self.dtl = dtl or InMemoryStagingDTL(
            network=self.cluster.network,
            memory_bandwidth=self.cluster.node_spec.memory_bandwidth,
        )
        self.seed = seed
        self.timing_noise = timing_noise
        self.allow_oversubscription = allow_oversubscription
        self.stage_real_chunks = stage_real_chunks
        self.congestion_aware = congestion_aware
        self.failure_model = failure_model
        self.recovery = recovery
        self.verify = verify
        self.timeline_recorder = timeline_recorder
        self.drift = drift
        self.rescheduler = rescheduler
        self.fault_log: Optional[FaultLog] = None
        self.invariant_report: Optional[InvariantReport] = None
        self.drift_schedule: Optional[DriftSchedule] = None
        self.migration_log: List[MigrationRecord] = []

    def run(self) -> ExecutionResult:
        """Execute the ensemble; returns the full result bundle."""
        effective = compute_effective_stages(
            self.spec,
            self.placement,
            self.cluster,
            self.dtl,
            allow_oversubscription=self.allow_oversubscription,
        )
        env = Environment()
        tracer = StageTracer()
        root_rng = RandomSource(self.seed, name="executor")
        nics = None
        if self.congestion_aware:
            nics = {
                node: Resource(env, capacity=1, name=f"nic-n{node}")
                for node in range(self.placement.num_nodes)
            }
        injector = None
        if self.failure_model is not None:
            schedule = self.failure_model.build_schedule(self.spec)
            injector = FaultInjector(schedule, self.recovery)
            self.fault_log = injector.log
        drift = None
        if self.drift is not None:
            from repro.reschedule.drift import coerce_drift

            max_steps = max(m.n_steps for m in effective)
            drift = coerce_drift(
                self.drift, self.placement.num_nodes, max_steps
            )
        self.drift_schedule = drift
        controller = self.rescheduler
        if controller is not None:
            controller.bind_run(
                self.spec, self.placement, self.cluster, self.dtl, effective
            )
            bindings = controller.bindings
        else:
            bindings = {
                member.name: _StaticBinding(member) for member in effective
            }
        checker = None
        if self.verify:
            from repro.verify.invariants import InvariantChecker

            checker = InvariantChecker(
                exact=(
                    self.timing_noise == 0.0
                    and injector is None
                    and not self.congestion_aware
                    and drift is None
                )
            )

        member_procs = []
        for member in effective:
            procs = self._launch_member(
                env, bindings[member.name], tracer, root_rng, nics,
                injector, checker, self.timeline_recorder, drift,
                controller,
            )
            member_procs.extend(procs)
        env.run()
        self.migration_log = (
            list(controller.migration_log) if controller is not None else []
        )

        result = build_result(
            spec=self.spec,
            placement=self.placement,
            effective=effective,
            tracer=tracer,
            cluster=self.cluster,
            seed=self.seed,
            noise=self.timing_noise,
            fault_log=self.fault_log,
        )
        if checker is not None:
            from repro.verify.invariants import InvariantViolation

            checker.check_periods()
            if nics is not None:
                checker.check_resources(nics.values())
            if self.stage_real_chunks:
                checker.check_dtl(self.dtl)
            checker.check_result(result)
            self.invariant_report = checker.report()
            if not self.invariant_report.passed:
                raise InvariantViolation(self.invariant_report.to_text())
        return result

    # -- process construction ---------------------------------------------------
    def _launch_member(
        self,
        env: Environment,
        binding,
        tracer: StageTracer,
        root_rng: RandomSource,
        nics=None,
        injector: Optional[FaultInjector] = None,
        checker: Optional[InvariantChecker] = None,
        recorder: Optional[TimelineRecorder] = None,
        drift: Optional[DriftSchedule] = None,
        controller: Optional[RescheduleController] = None,
    ):
        member = binding.member
        n = member.n_steps
        written: List[Event] = [env.event() for _ in range(n)]
        read_done: List[List[Event]] = [
            [env.event() for _ in member.analyses] for _ in range(n)
        ]
        all_read: List[Event] = [env.all_of(evs) for evs in read_done]

        noise = self.timing_noise
        dtl = self.dtl if self.stage_real_chunks else None
        dropped: Set[str] = set()
        sim_rng = root_rng.spawn(member.simulation.name)
        procs = [
            env.process(
                _simulation_process(
                    env, binding, tracer, sim_rng, noise, written, all_read,
                    dtl, injector, dropped, checker, recorder, drift,
                    controller,
                )
            )
        ]
        for j in range(len(member.analyses)):
            ana_rng = root_rng.spawn(member.analyses[j].name)
            procs.append(
                env.process(
                    _analysis_process(
                        env,
                        binding,
                        j,
                        tracer,
                        ana_rng,
                        noise,
                        written,
                        read_done,
                        dtl,
                        nics,
                        injector,
                        dropped,
                        checker,
                        recorder,
                        drift,
                        controller,
                    )
                )
            )
        return procs


def _stage(
    env: Environment,
    injector: Optional[FaultInjector],
    member_name: str,
    component: str,
    stage: str,
    step: int,
    duration: float,
    step_time: float,
    producer: Optional[str] = None,
    body=None,
    checker: Optional[InvariantChecker] = None,
    recorder: Optional[TimelineRecorder] = None,
    telemetry: Optional[RescheduleController] = None,
) -> Generator:
    """Run one timed stage, routing through the fault injector if any.

    The single choke point through which every S/W/R/A stage's waiting
    flows — injectors perturb here, and the invariant checker (when
    verification is on) observes each completed stage here, so the
    coupling-protocol logic in the process functions below never forks
    on either path. Without an injector (or with nothing scheduled at
    this site) the emitted event sequence is exactly the baseline's;
    the checker only reads ``env.now`` and never schedules events.
    The telemetry hook (the rescheduling controller) likewise never
    touches the environment: it sees the same nominal-duration tuples
    the recorder does and reacts in zero DES time.
    """
    if recorder is not None:
        recorder.observe(
            member_name, component, stage, step, duration, step_time
        )
    if telemetry is not None:
        telemetry.observe(
            member_name, component, stage, step, duration, step_time
        )
    start = env.now if checker is not None else 0.0
    if injector is None:
        if body is None:
            yield env.timeout(duration)
        else:
            yield from body(1.0)
    else:
        ctx = StageContext(
            member=member_name,
            component=component,
            stage=stage,
            step=step,
            duration=duration,
            step_time=step_time,
            producer=producer,
        )
        yield from injector.execute(env, ctx, body)
    if checker is not None:
        checker.observe_stage(
            member_name, component, stage, step, start, env.now, duration
        )


def _simulation_process(
    env: Environment,
    binding,
    tracer: StageTracer,
    rng: RandomSource,
    noise: float,
    written: List[Event],
    all_read: List[Event],
    dtl: Optional[DataTransportLayer] = None,
    injector: Optional[FaultInjector] = None,
    dropped: Optional[Set[str]] = None,
    checker: Optional[InvariantChecker] = None,
    recorder: Optional[TimelineRecorder] = None,
    drift: Optional[DriftSchedule] = None,
    controller: Optional[RescheduleController] = None,
):
    """S -> I^S -> W per step, enforcing W_{i+1} after all R_i.

    The member's effective stages are re-read through ``binding`` at
    every step boundary: a migration swaps the binding there (and only
    there), so each step's stages come from one consistent placement.
    Without a controller the binding never changes and the re-read is
    float-identical to the hoisted original.
    """
    member = binding.member
    member_name = member.name
    n_steps = member.n_steps
    for step in range(n_steps):
        if controller is not None:
            delay = controller.begin_step(member_name, step)
            if delay > 0.0:
                pause_start = env.now
                yield env.timeout(delay)
                controller.note_migrated(
                    member_name, step, pause_start, env.now
                )
                if checker is not None:
                    checker.note_migration(
                        member_name, step, delay, pause_start, env.now
                    )
            member = binding.member
        sim = member.simulation
        step_time = sim.compute_time + sim.io_time
        s_duration = rng.uniform_jitter(sim.compute_time, noise)
        if drift is not None:
            s_duration *= drift.factor(sim.node, "S", step)
        t0 = env.now
        yield from _stage(
            env, injector, member_name, sim.name, "S", step,
            s_duration, step_time,
            checker=checker, recorder=recorder, telemetry=controller,
        )
        t1 = env.now
        tracer.record(sim.name, Stage.SIM_COMPUTE, step, t0, t1)

        if step > 0 and not all_read[step - 1].triggered:
            yield all_read[step - 1]
        t2 = env.now
        tracer.record(sim.name, Stage.SIM_IDLE, step, t1, t2)

        w_duration = rng.uniform_jitter(sim.io_time, noise)
        if drift is not None:
            w_duration *= drift.factor(sim.node, "W", step)
        yield from _stage(
            env, injector, member_name, sim.name, "W", step,
            w_duration, step_time,
            checker=checker, recorder=recorder, telemetry=controller,
        )
        t3 = env.now
        tracer.record(sim.name, Stage.SIM_WRITE, step, t2, t3)
        if dtl is not None:
            # real-data mode: stage a sentinel payload; the DTL's
            # no-buffering check fires here if the protocol were broken.
            # Dropped (degraded) analyses no longer count as consumers.
            active = len(member.analyses) - (len(dropped) if dropped else 0)
            if active > 0:
                chunk = Chunk(
                    key=ChunkKey(producer=sim.name, step=step),
                    payload=np.array([float(step), t3], dtype=np.float64),
                    metadata={"member": member.name},
                )
                dtl.stage(
                    chunk,
                    producer_node=sim.node,
                    expected_consumers=active,
                )
        written[step].succeed(step)


def _analysis_process(
    env: Environment,
    binding,
    index: int,
    tracer: StageTracer,
    rng: RandomSource,
    noise: float,
    written: List[Event],
    read_done: List[List[Event]],
    dtl: Optional[DataTransportLayer] = None,
    nics=None,
    injector: Optional[FaultInjector] = None,
    dropped: Optional[Set[str]] = None,
    checker: Optional[InvariantChecker] = None,
    recorder: Optional[TimelineRecorder] = None,
    drift: Optional[DriftSchedule] = None,
    controller: Optional[RescheduleController] = None,
):
    """R -> A -> I^A per step; R_i gated on W_i.

    The effective analysis (node, stage times, NIC) is re-read through
    ``binding`` after the ``written[step]`` gate fires — by then the
    member's simulation has already begun this step, so any migration
    adopted at the step boundary is visible here before the step's R
    stage prices itself. Without a controller the re-read returns the
    same object every step.
    """
    member = binding.member
    member_name = member.name
    ana_name = member.analyses[index].name
    sim_name = member.simulation.name
    n_steps = member.n_steps
    try:
        for step in range(n_steps):
            wait_start = env.now
            if not written[step].triggered:
                yield written[step]
            t1 = env.now
            if step > 0:
                # the wait that just ended is the *previous* step's I^A
                tracer.record(
                    ana_name, Stage.ANA_IDLE, step - 1, wait_start, t1
                )

            member = binding.member
            ana = member.analyses[index]
            step_time = ana.io_time + ana.compute_time
            nic = (
                nics.get(ana.producer_node)
                if nics is not None and ana.transport_time > 0
                else None
            )

            def read_body(scale: float) -> Generator:
                # local share first (marshal + copy), then the network
                # transport holding the producer's NIC
                local_share = ana.io_time - ana.transport_time
                if local_share > 0:
                    yield env.timeout(
                        rng.uniform_jitter(local_share, noise) * scale
                    )
                req = nic.request(1)
                yield req
                yield env.timeout(
                    rng.uniform_jitter(ana.transport_time, noise) * scale
                )
                nic.release(req)

            if nic is None:
                read_duration = rng.uniform_jitter(ana.io_time, noise)
                if drift is not None:
                    read_duration *= drift.factor(ana.node, "R", step)
                body = None
            else:
                read_duration = ana.io_time
                body = read_body
            try:
                yield from _stage(
                    env, injector, member_name, ana_name, "R", step,
                    read_duration, step_time, producer=sim_name, body=body,
                    checker=checker, recorder=recorder, telemetry=controller,
                )
            except AnalysisDropped:
                tracer.record(ana_name, Stage.ANA_READ, step, t1, env.now)
                raise
            t2 = env.now
            tracer.record(ana_name, Stage.ANA_READ, step, t1, t2)
            if dtl is not None:
                chunk = dtl.retrieve(
                    ChunkKey(producer=sim_name, step=step),
                    consumer=ana_name,
                )
                if int(chunk.payload[0]) != step:  # pragma: no cover
                    raise ProtocolError(
                        f"member {member_name!r}: {ana_name} read step "
                        f"{int(chunk.payload[0])} while expecting {step}"
                    )
            read_done[step][index].succeed(step)

            a_duration = rng.uniform_jitter(ana.compute_time, noise)
            if drift is not None:
                a_duration *= drift.factor(ana.node, "A", step)
            try:
                yield from _stage(
                    env, injector, member_name, ana_name, "A", step,
                    a_duration, step_time,
                    checker=checker, recorder=recorder, telemetry=controller,
                )
            except AnalysisDropped:
                tracer.record(ana_name, Stage.ANA_COMPUTE, step, t2, env.now)
                raise
            t3 = env.now
            tracer.record(ana_name, Stage.ANA_COMPUTE, step, t2, t3)
        # the final step has no subsequent write to wait for
        tracer.record(
            ana_name, Stage.ANA_IDLE, n_steps - 1, env.now, env.now
        )
    except AnalysisDropped:
        _retire_analysis(binding.member, index, read_done, dtl, dropped)


def _retire_analysis(
    member: EffectiveMember,
    index: int,
    read_done: List[List[Event]],
    dtl: Optional[DataTransportLayer],
    dropped: Optional[Set[str]],
) -> None:
    """Release a dropped analysis from the member's coupling protocol.

    The degraded analysis stops gating the simulation: every pending
    read barrier it owned is released, and the DTL forgets it as a
    consumer (so already-staged chunks can be reclaimed and future
    stagings expect one fewer reader).
    """
    ana = member.analyses[index]
    if dropped is not None:
        dropped.add(ana.name)
    if dtl is not None:
        dtl.forget_consumer(member.simulation.name, ana.name)
    for events in read_done:
        event = events[index]
        if not event.triggered:
            event.succeed(None)
