"""Discrete-event execution of a workflow ensemble.

Implements the synchronous coupling protocol of §2.1/§3.1 as DES
processes over the effective stage times:

- the simulation runs ``S -> I^S -> W`` each step, where ``I^S`` waits
  until every coupled analysis has finished *reading* the previous
  step's chunk (``W_{i+1}`` strictly after all ``R_i`` — the
  no-buffering rule);
- each analysis runs ``R -> A -> I^A``, where ``R_i`` can begin only
  once ``W_i`` completed, and ``I^A`` waits for the next write.

Every stage instance is recorded into a
:class:`~repro.monitoring.tracer.StageTracer`. Optional multiplicative
timing noise (seeded) perturbs each stage instance independently,
modeling step-to-step variation; with zero noise the run is exactly
the analytic steady state after the first step.

With ``stage_real_chunks=True`` the execution additionally pushes real
(small) chunk payloads through the DTL's functional store in lockstep
with the simulated time: the W stage stages a chunk, each R stage
retrieves and verifies it, and the DTL's own no-buffering checks police
the protocol *during* the run. This mode proves the timing model and
the data path implement the same protocol.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.des.engine import Environment
from repro.des.events import Event
from repro.des.resources import Resource
from repro.dtl.base import DataTransportLayer
from repro.dtl.chunk import Chunk, ChunkKey
from repro.dtl.dimes import InMemoryStagingDTL
from repro.monitoring.tracer import Stage, StageTracer
from repro.platform.cluster import Cluster
from repro.platform.specs import make_cori_like_cluster
from repro.runtime.effective import EffectiveMember, compute_effective_stages
from repro.runtime.placement import EnsemblePlacement
from repro.runtime.results import ExecutionResult, build_result
from repro.runtime.spec import EnsembleSpec
from repro.util.errors import ProtocolError
from repro.util.rng import RandomSource
from repro.util.validation import require_non_negative


class EnsembleExecutor:
    """Runs one workflow ensemble configuration end to end.

    Parameters
    ----------
    spec / placement:
        What to run and where.
    cluster:
        Platform model; defaults to a Cori-like allocation sized to the
        placement.
    dtl:
        Staging tier; defaults to the DIMES-like in-memory tier wired
        to the cluster.
    seed:
        Seed for the timing-noise streams (one independent stream per
        component).
    timing_noise:
        Relative half-width of per-stage multiplicative jitter
        (0 = deterministic).
    stage_real_chunks:
        When True, every W/R stage also performs a real chunk
        stage/retrieve against the DTL store (small sentinel payloads),
        so protocol violations surface as failures during execution.
    congestion_aware:
        When True, the network-transport share of every remote read
        serializes on the producer node's NIC (a capacity-1 DES
        resource per node): concurrent remote reads from one node
        queue instead of proceeding in parallel. Off by default — at
        the paper's chunk sizes transport is negligible, but for large
        payloads the serialization visibly stretches R.
    """

    def __init__(
        self,
        spec: EnsembleSpec,
        placement: EnsemblePlacement,
        cluster: Optional[Cluster] = None,
        dtl: Optional[DataTransportLayer] = None,
        seed: Optional[int] = 0,
        timing_noise: float = 0.0,
        allow_oversubscription: bool = False,
        stage_real_chunks: bool = False,
        congestion_aware: bool = False,
    ) -> None:
        require_non_negative("timing_noise", timing_noise)
        self.spec = spec
        self.placement = placement
        self.cluster = cluster or make_cori_like_cluster(placement.num_nodes)
        self.dtl = dtl or InMemoryStagingDTL(
            network=self.cluster.network,
            memory_bandwidth=self.cluster.node_spec.memory_bandwidth,
        )
        self.seed = seed
        self.timing_noise = timing_noise
        self.allow_oversubscription = allow_oversubscription
        self.stage_real_chunks = stage_real_chunks
        self.congestion_aware = congestion_aware

    def run(self) -> ExecutionResult:
        """Execute the ensemble; returns the full result bundle."""
        effective = compute_effective_stages(
            self.spec,
            self.placement,
            self.cluster,
            self.dtl,
            allow_oversubscription=self.allow_oversubscription,
        )
        env = Environment()
        tracer = StageTracer()
        root_rng = RandomSource(self.seed, name="executor")
        nics = None
        if self.congestion_aware:
            nics = {
                node: Resource(env, capacity=1, name=f"nic-n{node}")
                for node in range(self.placement.num_nodes)
            }

        member_procs = []
        for member in effective:
            procs = self._launch_member(env, member, tracer, root_rng, nics)
            member_procs.extend(procs)
        env.run()

        return build_result(
            spec=self.spec,
            placement=self.placement,
            effective=effective,
            tracer=tracer,
            cluster=self.cluster,
            seed=self.seed,
            noise=self.timing_noise,
        )

    # -- process construction ---------------------------------------------------
    def _launch_member(
        self,
        env: Environment,
        member: EffectiveMember,
        tracer: StageTracer,
        root_rng: RandomSource,
        nics=None,
    ):
        n = member.n_steps
        written: List[Event] = [env.event() for _ in range(n)]
        read_done: List[List[Event]] = [
            [env.event() for _ in member.analyses] for _ in range(n)
        ]
        all_read: List[Event] = [env.all_of(evs) for evs in read_done]

        noise = self.timing_noise
        dtl = self.dtl if self.stage_real_chunks else None
        sim_rng = root_rng.spawn(member.simulation.name)
        procs = [
            env.process(
                _simulation_process(
                    env, member, tracer, sim_rng, noise, written, all_read,
                    dtl,
                )
            )
        ]
        for j in range(len(member.analyses)):
            ana_rng = root_rng.spawn(member.analyses[j].name)
            procs.append(
                env.process(
                    _analysis_process(
                        env,
                        member,
                        j,
                        tracer,
                        ana_rng,
                        noise,
                        written,
                        read_done,
                        dtl,
                        nics,
                    )
                )
            )
        return procs


def _simulation_process(
    env: Environment,
    member: EffectiveMember,
    tracer: StageTracer,
    rng: RandomSource,
    noise: float,
    written: List[Event],
    all_read: List[Event],
    dtl: Optional[DataTransportLayer] = None,
):
    """S -> I^S -> W per step, enforcing W_{i+1} after all R_i."""
    sim = member.simulation
    for step in range(member.n_steps):
        t0 = env.now
        yield env.timeout(rng.uniform_jitter(sim.compute_time, noise))
        t1 = env.now
        tracer.record(sim.name, Stage.SIM_COMPUTE, step, t0, t1)

        if step > 0 and not all_read[step - 1].triggered:
            yield all_read[step - 1]
        t2 = env.now
        tracer.record(sim.name, Stage.SIM_IDLE, step, t1, t2)

        yield env.timeout(rng.uniform_jitter(sim.io_time, noise))
        t3 = env.now
        tracer.record(sim.name, Stage.SIM_WRITE, step, t2, t3)
        if dtl is not None:
            # real-data mode: stage a sentinel payload; the DTL's
            # no-buffering check fires here if the protocol were broken
            chunk = Chunk(
                key=ChunkKey(producer=sim.name, step=step),
                payload=np.array([float(step), t3], dtype=np.float64),
                metadata={"member": member.name},
            )
            dtl.stage(
                chunk,
                producer_node=sim.node,
                expected_consumers=len(member.analyses),
            )
        written[step].succeed(step)


def _analysis_process(
    env: Environment,
    member: EffectiveMember,
    index: int,
    tracer: StageTracer,
    rng: RandomSource,
    noise: float,
    written: List[Event],
    read_done: List[List[Event]],
    dtl: Optional[DataTransportLayer] = None,
    nics=None,
):
    """R -> A -> I^A per step; R_i gated on W_i."""
    ana = member.analyses[index]
    nic = (
        nics.get(ana.producer_node)
        if nics is not None and ana.transport_time > 0
        else None
    )
    for step in range(member.n_steps):
        wait_start = env.now
        if not written[step].triggered:
            yield written[step]
        t1 = env.now
        if step > 0:
            # the wait that just ended is the *previous* step's I^A
            tracer.record(ana.name, Stage.ANA_IDLE, step - 1, wait_start, t1)

        if nic is None:
            yield env.timeout(rng.uniform_jitter(ana.io_time, noise))
        else:
            # local share first (marshal + copy), then the network
            # transport holding the producer's NIC
            local_share = ana.io_time - ana.transport_time
            if local_share > 0:
                yield env.timeout(rng.uniform_jitter(local_share, noise))
            req = nic.request(1)
            yield req
            yield env.timeout(rng.uniform_jitter(ana.transport_time, noise))
            nic.release(req)
        t2 = env.now
        tracer.record(ana.name, Stage.ANA_READ, step, t1, t2)
        if dtl is not None:
            chunk = dtl.retrieve(
                ChunkKey(producer=member.simulation.name, step=step),
                consumer=ana.name,
            )
            if int(chunk.payload[0]) != step:  # pragma: no cover
                raise ProtocolError(
                    f"{ana.name} read step {int(chunk.payload[0])} "
                    f"while expecting {step}"
                )
        read_done[step][index].succeed(step)

        yield env.timeout(rng.uniform_jitter(ana.compute_time, noise))
        t3 = env.now
        tracer.record(ana.name, Stage.ANA_COMPUTE, step, t2, t3)
    # the final step has no subsequent write to wait for
    tracer.record(
        ana.name, Stage.ANA_IDLE, member.n_steps - 1, env.now, env.now
    )
