"""Execution results: traces distilled into the paper's data products.

:func:`build_result` turns a finished run (tracer + effective members)
into:

- per-component Table-1 metrics (execution time, LLC miss ratio,
  memory intensity, IPC) with synthesized hardware counters;
- per-member steady-state :class:`~repro.core.stages.MemberStages`
  estimated from the trace, the measured makespan, the computational
  efficiency E, and the :class:`~repro.core.indicators
  .MemberMeasurement` that feeds the indicator pipeline;
- ensemble-level makespan and node count M.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.efficiency import computational_efficiency
from repro.core.indicators import (
    IndicatorStage,
    MemberMeasurement,
    apply_stages,
)
from repro.core.objective import objective_function
from repro.core.stages import (
    AnalysisStages,
    MemberStages,
    SimulationStages,
    estimate_steady_state,
)
from repro.monitoring.counters import HardwareCounters, synthesize_counters
from repro.monitoring.metrics import (
    ComponentMetrics,
    EnsembleMetrics,
    MemberMetrics,
    component_metrics,
    ensemble_makespan,
    member_makespan_from_trace,
)
from repro.monitoring.tracer import Stage, StageTracer
from repro.platform.cluster import Cluster
from repro.runtime.effective import EffectiveMember
from repro.runtime.placement import EnsemblePlacement
from repro.runtime.spec import EnsembleSpec
from repro.util.errors import ValidationError
from repro.util.rng import RandomSource

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.injector import FaultLog


@dataclass(frozen=True)
class MemberResult:
    """Everything measured about one ensemble member."""

    name: str
    stages: MemberStages
    makespan: float
    efficiency: float
    measurement: MemberMeasurement


@dataclass(frozen=True)
class ExecutionResult:
    """Full outcome of one ensemble execution."""

    ensemble_name: str
    members: Tuple[MemberResult, ...]
    total_nodes: int  # M
    tracer: StageTracer
    component_metrics: Dict[str, ComponentMetrics]
    counters: Dict[str, HardwareCounters]
    ensemble: EnsembleMetrics
    #: fault record of the run (None when executed without injection)
    fault_log: Optional["FaultLog"] = None

    @property
    def member_makespans(self) -> Dict[str, float]:
        return {m.name: m.makespan for m in self.members}

    @property
    def ensemble_makespan(self) -> float:
        return self.ensemble.makespan

    def indicator_values(
        self, order: Sequence[IndicatorStage]
    ) -> Dict[str, float]:
        """Each member's indicator after applying ``order``'s stages."""
        return {
            m.name: apply_stages(m.measurement, order, self.total_nodes)
            for m in self.members
        }

    def objective(self, order: Sequence[IndicatorStage]) -> float:
        """F(P_i) (Eq. 9) for the chosen indicator stage order."""
        return objective_function(list(self.indicator_values(order).values()))


def estimate_member_stages(
    member: EffectiveMember, tracer: StageTracer
) -> MemberStages:
    """Steady-state stage durations estimated from the trace."""
    sim_name = member.simulation.name
    sim = SimulationStages(
        compute=estimate_steady_state(tracer.durations(sim_name, Stage.SIM_COMPUTE)),
        write=estimate_steady_state(tracer.durations(sim_name, Stage.SIM_WRITE)),
    )
    analyses: List[AnalysisStages] = []
    for ana in member.analyses:
        analyses.append(
            AnalysisStages(
                read=estimate_steady_state(
                    tracer.durations(ana.name, Stage.ANA_READ)
                ),
                analyze=estimate_steady_state(
                    tracer.durations(ana.name, Stage.ANA_COMPUTE)
                ),
            )
        )
    return MemberStages(simulation=sim, analyses=tuple(analyses))


def build_result(
    spec: EnsembleSpec,
    placement: EnsemblePlacement,
    effective: Sequence[EffectiveMember],
    tracer: StageTracer,
    cluster: Cluster,
    seed: Optional[int] = 0,
    noise: float = 0.0,
    fault_log: Optional["FaultLog"] = None,
) -> ExecutionResult:
    """Assemble the :class:`ExecutionResult` for a finished run."""
    if len(effective) != spec.num_members:
        raise ValidationError(
            "effective member list does not match the ensemble spec"
        )
    counter_rng = RandomSource(seed, name="counters")
    freq = cluster.node_spec.core_freq_hz

    counters: Dict[str, HardwareCounters] = {}
    metrics: Dict[str, ComponentMetrics] = {}
    member_results: List[MemberResult] = []
    member_metrics: Dict[str, MemberMetrics] = {}

    for member_spec, member_eff, mp in zip(
        spec.members, effective, placement.members
    ):
        models = [member_spec.simulation] + list(member_spec.analyses)
        assessments = [member_eff.simulation.assessment] + [
            a.assessment for a in member_eff.analyses
        ]
        for model, assessment in zip(models, assessments):
            cnt = synthesize_counters(
                model,
                assessment,
                core_freq_hz=freq,
                n_steps=member_spec.n_steps,
                rng=counter_rng.spawn(model.name),
                noise=noise,
            )
            counters[model.name] = cnt
            metrics[model.name] = component_metrics(model.name, tracer, cnt)

        stages = estimate_member_stages(member_eff, tracer)
        mm = member_makespan_from_trace(
            member_spec.name,
            member_spec.simulation.name,
            [a.name for a in member_spec.analyses],
            tracer,
        )
        member_metrics[member_spec.name] = mm
        measurement = MemberMeasurement(
            name=member_spec.name,
            stages=stages,
            total_cores=member_spec.total_cores,
            placement=mp.to_placement_sets(),
        )
        member_results.append(
            MemberResult(
                name=member_spec.name,
                stages=stages,
                makespan=mm.makespan,
                efficiency=computational_efficiency(stages),
                measurement=measurement,
            )
        )

    return ExecutionResult(
        ensemble_name=spec.name,
        members=tuple(member_results),
        total_nodes=placement.num_nodes,
        tracer=tracer,
        component_metrics=metrics,
        counters=counters,
        ensemble=ensemble_makespan(member_metrics),
        fault_log=fault_log,
    )
