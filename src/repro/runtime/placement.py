"""Component-to-node placement of a workflow ensemble.

A :class:`MemberPlacement` assigns the member's simulation and each of
its analyses to a node (the paper places every component on exactly one
node; the indicator algebra in :mod:`repro.core.indicators` also
handles node *sets* for generality). An :class:`EnsemblePlacement`
collects member placements over an allocation of ``num_nodes`` nodes
and validates them against a spec and a cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.core.indicators import PlacementSets
from repro.runtime.spec import EnsembleSpec
from repro.util.errors import PlacementError, ValidationError
from repro.util.validation import require_positive_int


@dataclass(frozen=True)
class MemberPlacement:
    """Node assignment of one member's components (single node each)."""

    simulation_node: int
    analysis_nodes: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.simulation_node < 0:
            raise ValidationError(
                f"simulation_node must be >= 0, got {self.simulation_node}"
            )
        if not isinstance(self.analysis_nodes, tuple):
            object.__setattr__(self, "analysis_nodes", tuple(self.analysis_nodes))
        if not self.analysis_nodes:
            raise ValidationError("at least one analysis node required")
        for n in self.analysis_nodes:
            if n < 0:
                raise ValidationError(f"analysis node must be >= 0, got {n}")

    @property
    def num_couplings(self) -> int:
        return len(self.analysis_nodes)

    @property
    def used_nodes(self) -> FrozenSet[int]:
        """d_i's node set."""
        return frozenset((self.simulation_node,) + self.analysis_nodes)

    def to_placement_sets(self) -> PlacementSets:
        """Convert to the indicator algebra's set representation."""
        return PlacementSets(
            simulation_nodes=frozenset({self.simulation_node}),
            analysis_nodes=tuple(frozenset({n}) for n in self.analysis_nodes),
        )


@dataclass(frozen=True)
class EnsemblePlacement:
    """Placement of every member over an allocation of M nodes."""

    num_nodes: int
    members: Tuple[MemberPlacement, ...]

    def __post_init__(self) -> None:
        require_positive_int("num_nodes", self.num_nodes)
        if not isinstance(self.members, tuple):
            object.__setattr__(self, "members", tuple(self.members))
        if not self.members:
            raise ValidationError("at least one member placement required")
        for mp in self.members:
            for node in mp.used_nodes:
                if node >= self.num_nodes:
                    raise PlacementError(
                        f"node index {node} outside allocation of "
                        f"{self.num_nodes} nodes"
                    )

    @property
    def used_nodes(self) -> FrozenSet[int]:
        """Distinct nodes actually hosting components."""
        out: FrozenSet[int] = frozenset()
        for mp in self.members:
            out |= mp.used_nodes
        return out

    def validate_against(
        self,
        spec: EnsembleSpec,
        cores_per_node: int,
        allow_oversubscription: bool = False,
    ) -> Dict[int, int]:
        """Check member count and per-node core demand.

        Returns the per-node core demand map. Raises
        :class:`PlacementError` if the member/coupling counts disagree
        with the spec, or — unless ``allow_oversubscription`` — if any
        node's demand exceeds ``cores_per_node``.
        """
        if len(self.members) != spec.num_members:
            raise PlacementError(
                f"placement has {len(self.members)} members, spec has "
                f"{spec.num_members}"
            )
        demand: Dict[int, int] = {}
        for member_spec, mp in zip(spec.members, self.members):
            if mp.num_couplings != member_spec.num_couplings:
                raise PlacementError(
                    f"member {member_spec.name!r}: placement has "
                    f"{mp.num_couplings} analyses, spec has "
                    f"{member_spec.num_couplings}"
                )
            demand[mp.simulation_node] = (
                demand.get(mp.simulation_node, 0) + member_spec.simulation.cores
            )
            for ana, node in zip(member_spec.analyses, mp.analysis_nodes):
                demand[node] = demand.get(node, 0) + ana.cores
        if not allow_oversubscription:
            overloaded = {
                n: c for n, c in demand.items() if c > cores_per_node
            }
            if overloaded:
                raise PlacementError(
                    f"nodes oversubscribed (capacity {cores_per_node}): "
                    f"{overloaded}"
                )
        return demand


def pack_members_per_node(spec: EnsembleSpec) -> EnsemblePlacement:
    """The fully co-located placement: member i entirely on node i.

    This is the paper's C1.5 / C2.8 pattern generalized to N members.
    """
    members = tuple(
        MemberPlacement(
            simulation_node=i,
            analysis_nodes=tuple(i for _ in member.analyses),
        )
        for i, member in enumerate(spec.members)
    )
    return EnsemblePlacement(num_nodes=spec.num_members, members=members)


def spread_components(spec: EnsembleSpec) -> EnsemblePlacement:
    """The fully dedicated placement: every component on its own node."""
    members: List[MemberPlacement] = []
    next_node = 0
    for member in spec.members:
        sim_node = next_node
        next_node += 1
        ana_nodes = []
        for _ in member.analyses:
            ana_nodes.append(next_node)
            next_node += 1
        members.append(
            MemberPlacement(
                simulation_node=sim_node, analysis_nodes=tuple(ana_nodes)
            )
        )
    return EnsemblePlacement(num_nodes=next_node, members=tuple(members))
