"""High-level entry point: run one workflow ensemble configuration."""

from __future__ import annotations

from typing import Optional

from repro.dtl.base import DataTransportLayer
from repro.faults.models import FailureModel
from repro.faults.recovery import RecoveryPolicy
from repro.platform.cluster import Cluster
from repro.runtime.executor import EnsembleExecutor
from repro.runtime.placement import EnsemblePlacement
from repro.runtime.results import ExecutionResult
from repro.runtime.spec import EnsembleSpec


def run_ensemble(
    spec: EnsembleSpec,
    placement: EnsemblePlacement,
    cluster: Optional[Cluster] = None,
    dtl: Optional[DataTransportLayer] = None,
    seed: Optional[int] = 0,
    timing_noise: float = 0.0,
    allow_oversubscription: bool = False,
    stage_real_chunks: bool = False,
    failure_model: Optional[FailureModel] = None,
    recovery: Optional[RecoveryPolicy] = None,
    verify: bool = False,
    drift=None,
    rescheduler=None,
) -> ExecutionResult:
    """Execute ``spec`` under ``placement`` and return the results.

    Thin convenience wrapper over :class:`EnsembleExecutor`; see its
    docstring for parameter semantics. Typical use::

        from repro.runtime import run_ensemble
        from repro.runtime.spec import EnsembleSpec, default_member
        from repro.runtime.placement import pack_members_per_node

        spec = EnsembleSpec(
            "demo", (default_member("em1"), default_member("em2"))
        )
        result = run_ensemble(spec, pack_members_per_node(spec))
        print(result.ensemble_makespan)
    """
    return EnsembleExecutor(
        spec=spec,
        placement=placement,
        cluster=cluster,
        dtl=dtl,
        seed=seed,
        timing_noise=timing_noise,
        allow_oversubscription=allow_oversubscription,
        stage_real_chunks=stage_real_chunks,
        failure_model=failure_model,
        recovery=recovery,
        verify=verify,
        drift=drift,
        rescheduler=rescheduler,
    ).run()
