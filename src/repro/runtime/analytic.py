"""Closed-form steady-state prediction (no discrete-event execution).

Under the synchronous protocol the steady state is fully determined by
the effective stage times (paper §3.1-§3.2): the member's period is
Eq. 1's max, and the stage durations *are* the steady-state values. The
predictor therefore maps :func:`~repro.runtime.effective
.compute_effective_stages` output straight into
:class:`~repro.core.stages.MemberStages` — orders of magnitude faster
than the executor, and cross-validated against it (noise-free executor
traces estimate the same steady state to <0.1%) in
``tests/runtime/test_cross_validation.py``.

This is the path the parameter sweeps (Figure 7, heuristic search,
placement enumeration) use.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.stages import AnalysisStages, MemberStages, SimulationStages
from repro.dtl.base import DataTransportLayer
from repro.dtl.dimes import InMemoryStagingDTL
from repro.platform.cluster import Cluster
from repro.platform.specs import make_cori_like_cluster
from repro.runtime.effective import compute_effective_stages
from repro.runtime.placement import EnsemblePlacement
from repro.runtime.spec import EnsembleSpec


def predict_member_stages(
    spec: EnsembleSpec,
    placement: EnsemblePlacement,
    cluster: Optional[Cluster] = None,
    dtl: Optional[DataTransportLayer] = None,
    allow_oversubscription: bool = False,
) -> Dict[str, MemberStages]:
    """Predict every member's steady-state stages under a placement.

    ``cluster`` defaults to a Cori-like allocation sized to the
    placement; ``dtl`` defaults to the DIMES-like in-memory tier wired
    to the cluster's network and memory bandwidth.
    """
    if cluster is None:
        cluster = make_cori_like_cluster(placement.num_nodes)
    if dtl is None:
        dtl = InMemoryStagingDTL(
            network=cluster.network,
            memory_bandwidth=cluster.node_spec.memory_bandwidth,
        )
    effective = compute_effective_stages(
        spec, placement, cluster, dtl, allow_oversubscription=allow_oversubscription
    )
    out: Dict[str, MemberStages] = {}
    for member in effective:
        out[member.name] = MemberStages(
            simulation=SimulationStages(
                compute=member.simulation.compute_time,
                write=member.simulation.io_time,
            ),
            analyses=tuple(
                AnalysisStages(read=a.io_time, analyze=a.compute_time)
                for a in member.analyses
            ),
        )
    return out
