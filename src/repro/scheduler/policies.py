"""Placement policies: indicator-guided scheduling and baselines.

All policies implement :class:`SchedulingPolicy`: given an ensemble
spec, a node budget, and per-node core capacity, produce an
:class:`~repro.runtime.placement.EnsemblePlacement` (or raise
:class:`~repro.util.errors.PlacementError` if the budget cannot hold
the ensemble).

- :class:`ExhaustiveSearchPolicy` — scores every feasible placement;
  the optimum, tractable at the paper's problem sizes.
- :class:`GreedyIndicatorPolicy` — operationalizes the paper's
  conclusion ("schedule each ensemble member ... individually,
  worrying only about the co-location among ensemble components of
  each member"): members are placed one at a time, each choosing the
  member-local placement that maximizes the partial ensemble's
  F(P^{U,A,P}). Candidate count is per-member, not exponential.
- :class:`RoundRobinPolicy` — the classic spread-for-load-balance
  baseline (what a locality-unaware scheduler does).
- :class:`RandomPolicy` — seeded random feasible assignment.
"""

from __future__ import annotations

import abc
import itertools
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.search.cache import StageCache

from repro.configs.generator import enumerate_placements
from repro.runtime.placement import EnsemblePlacement, MemberPlacement
from repro.runtime.spec import EnsembleSpec, MemberSpec
from repro.scheduler.objectives import PlacementScore, score_placement
from repro.util.errors import PlacementError
from repro.util.rng import RandomSource
from repro.util.validation import require_positive_int


class SchedulingPolicy(abc.ABC):
    """Maps an ensemble onto a node budget."""

    #: human-readable policy name (for reports and benches)
    name: str = "abstract"

    @abc.abstractmethod
    def place(
        self,
        spec: EnsembleSpec,
        num_nodes: int,
        cores_per_node: int,
    ) -> EnsemblePlacement:
        """Produce a feasible placement or raise PlacementError."""

    # -- shared helpers ----------------------------------------------------
    @staticmethod
    def _component_cores(member: MemberSpec) -> List[int]:
        return [member.simulation.cores] + [a.cores for a in member.analyses]

    @staticmethod
    def _check_total_capacity(
        spec: EnsembleSpec, num_nodes: int, cores_per_node: int
    ) -> None:
        total = sum(m.total_cores for m in spec.members)
        if total > num_nodes * cores_per_node:
            raise PlacementError(
                f"ensemble needs {total} cores; budget is "
                f"{num_nodes} x {cores_per_node}"
            )


class ExhaustiveSearchPolicy(SchedulingPolicy):
    """Score every feasible placement; return the best.

    Runs through :func:`repro.search.engine.find_best_placement`: the
    canonical (symmetry-free) enumerator streams flat assignments into
    a memoized stage cache, so the search visits the same candidates
    in the same order and returns the same optimum as scoring every
    enumerated placement individually — just orders of magnitude
    faster (asserted in the search benchmarks).

    Parameters
    ----------
    cache:
        Optional :class:`~repro.search.cache.StageCache` shared across
        ``place`` calls (one is built per call when omitted).
    parallel / processes:
        Opt in to pool-based candidate scoring (serial fallback
        applies; results are identical either way).
    vectorized:
        Opt in to the numpy batch kernel with branch-and-bound
        (:mod:`repro.search.vectorized`). Falls back to the scalar
        path for tiny instances or unsupported contexts; the winner is
        re-scored through the scalar cache, so the returned placement
        and floats are the same either way.
    """

    name = "exhaustive"

    def __init__(
        self,
        cache: Optional["StageCache"] = None,
        parallel: bool = False,
        processes: Optional[int] = None,
        vectorized: bool = False,
    ) -> None:
        self.evaluated = 0
        self.cache = cache
        self.parallel = parallel
        self.processes = processes
        self.vectorized = vectorized

    def place(
        self,
        spec: EnsembleSpec,
        num_nodes: int,
        cores_per_node: int,
    ) -> EnsemblePlacement:
        require_positive_int("num_nodes", num_nodes)
        self._check_total_capacity(spec, num_nodes, cores_per_node)
        from repro.search.engine import find_best_placement

        best, self.evaluated = find_best_placement(
            spec,
            num_nodes,
            cores_per_node,
            cache=self.cache,
            parallel=self.parallel,
            processes=self.processes,
            vectorized=self.vectorized,
        )
        return best.placement


class GreedyIndicatorPolicy(SchedulingPolicy):
    """Member-at-a-time placement maximizing the partial-ensemble F.

    For each member, candidate local placements are every assignment of
    its 1 + K components to nodes with remaining capacity, deduplicated
    by the multiset of unused-so-far nodes (untouched empty nodes are
    interchangeable). The member adopts the candidate whose addition
    maximizes F(P^{U,A,P}) of the members placed so far.
    """

    name = "greedy-indicator"

    def __init__(self) -> None:
        self.evaluated = 0

    def place(
        self,
        spec: EnsembleSpec,
        num_nodes: int,
        cores_per_node: int,
    ) -> EnsemblePlacement:
        require_positive_int("num_nodes", num_nodes)
        self._check_total_capacity(spec, num_nodes, cores_per_node)
        self.evaluated = 0

        placed: List[MemberPlacement] = []
        free: Dict[int, int] = {n: cores_per_node for n in range(num_nodes)}

        for i, member in enumerate(spec.members):
            candidates = self._member_candidates(
                member, free, cores_per_node
            )
            if not candidates:
                raise PlacementError(
                    f"cannot place member {member.name!r}: "
                    f"insufficient free cores"
                )
            # look-ahead: prefer candidates whose residual capacity can
            # still hold every remaining member (first-fit-decreasing
            # check); fall back to all candidates if none pass — a
            # failed FFD is pessimistic, not a proof of infeasibility.
            remaining = spec.members[i + 1 :]
            safe = [
                c
                for c in candidates
                if self._residual_feasible(member, c, free, remaining)
            ]
            if safe:
                candidates = safe
            partial_spec = EnsembleSpec(
                f"{spec.name}-partial-{i}", tuple(spec.members[: i + 1])
            )
            best: Optional[Tuple[PlacementScore, MemberPlacement]] = None
            for candidate in candidates:
                trial = EnsemblePlacement(
                    num_nodes, tuple(placed + [candidate])
                )
                score = score_placement(partial_spec, trial)
                self.evaluated += 1
                if best is None or score > best[0]:
                    best = (score, candidate)
            assert best is not None
            chosen = best[1]
            placed.append(chosen)
            free[chosen.simulation_node] -= member.simulation.cores
            for ana, node in zip(member.analyses, chosen.analysis_nodes):
                free[node] -= ana.cores

        return EnsemblePlacement(num_nodes, tuple(placed))

    def _residual_feasible(
        self,
        member: MemberSpec,
        candidate: MemberPlacement,
        free: Dict[int, int],
        remaining: Sequence[MemberSpec],
    ) -> bool:
        """Can the remaining members still fit after taking ``candidate``?

        First-fit-decreasing over the residual free map — a standard
        bin-packing heuristic: sufficient when it succeeds, inconclusive
        when it fails (hence only used as a preference filter).
        """
        residual = dict(free)
        residual[candidate.simulation_node] -= member.simulation.cores
        for ana, node in zip(member.analyses, candidate.analysis_nodes):
            residual[node] -= ana.cores
        if any(v < 0 for v in residual.values()):
            return False
        components = sorted(
            (
                cores
                for m in remaining
                for cores in self._component_cores(m)
            ),
            reverse=True,
        )
        for cores in components:
            target = None
            for node in sorted(residual, key=lambda n: residual[n]):
                if residual[node] >= cores:
                    target = node  # best-fit: tightest node that fits
                    break
            if target is None:
                return False
            residual[target] -= cores
        return True

    def _member_candidates(
        self,
        member: MemberSpec,
        free: Dict[int, int],
        cores_per_node: int,
    ) -> List[MemberPlacement]:
        cores = self._component_cores(member)
        nodes = sorted(free)
        candidates: List[MemberPlacement] = []
        seen: set = set()
        for assignment in itertools.product(nodes, repeat=len(cores)):
            demand: Dict[int, int] = {}
            ok = True
            for node, c in zip(assignment, cores):
                demand[node] = demand.get(node, 0) + c
                if demand[node] > free[node]:
                    ok = False
                    break
            if not ok:
                continue
            # dedup: untouched empty nodes are interchangeable — relabel
            # fresh (currently empty) nodes by order of first use
            fresh = {n for n in nodes if free[n] == cores_per_node}
            relabel: Dict[int, int] = {}
            sig = []
            counter = 0
            for node in assignment:
                if node in fresh:
                    if node not in relabel:
                        relabel[node] = counter
                        counter += 1
                    sig.append(("fresh", relabel[node]))
                else:
                    sig.append(("used", node))
            key = tuple(sig)
            if key in seen:
                continue
            seen.add(key)
            candidates.append(
                MemberPlacement(assignment[0], tuple(assignment[1:]))
            )
        return candidates


class RoundRobinPolicy(SchedulingPolicy):
    """Spread components across nodes round-robin (locality-unaware)."""

    name = "round-robin"

    def place(
        self,
        spec: EnsembleSpec,
        num_nodes: int,
        cores_per_node: int,
    ) -> EnsemblePlacement:
        require_positive_int("num_nodes", num_nodes)
        self._check_total_capacity(spec, num_nodes, cores_per_node)
        free = {n: cores_per_node for n in range(num_nodes)}
        next_node = 0
        placed: List[MemberPlacement] = []

        def take(cores: int) -> int:
            nonlocal next_node
            for _ in range(num_nodes):
                node = next_node % num_nodes
                next_node += 1
                if free[node] >= cores:
                    free[node] -= cores
                    return node
            # second pass: any node with room (round robin was too strict)
            for node in sorted(free):
                if free[node] >= cores:
                    free[node] -= cores
                    return node
            raise PlacementError(
                f"round-robin cannot fit a {cores}-core component"
            )

        for member in spec.members:
            sim_node = take(member.simulation.cores)
            ana_nodes = tuple(take(a.cores) for a in member.analyses)
            placed.append(MemberPlacement(sim_node, ana_nodes))
        return EnsemblePlacement(num_nodes, tuple(placed))


class RandomPolicy(SchedulingPolicy):
    """Uniformly random feasible assignment (seeded)."""

    name = "random"

    def __init__(self, seed: int = 0, max_attempts: int = 10_000) -> None:
        self.rng = RandomSource(seed, name="random-policy")
        self.max_attempts = require_positive_int("max_attempts", max_attempts)

    def place(
        self,
        spec: EnsembleSpec,
        num_nodes: int,
        cores_per_node: int,
    ) -> EnsemblePlacement:
        require_positive_int("num_nodes", num_nodes)
        self._check_total_capacity(spec, num_nodes, cores_per_node)
        gen = self.rng.generator
        for _ in range(self.max_attempts):
            free = {n: cores_per_node for n in range(num_nodes)}
            placed: List[MemberPlacement] = []
            ok = True
            for member in spec.members:
                assignment: List[int] = []
                for cores in self._component_cores(member):
                    options = [n for n, f in free.items() if f >= cores]
                    if not options:
                        ok = False
                        break
                    node = int(gen.choice(options))
                    free[node] -= cores
                    assignment.append(node)
                if not ok:
                    break
                placed.append(
                    MemberPlacement(assignment[0], tuple(assignment[1:]))
                )
            if ok:
                return EnsemblePlacement(num_nodes, tuple(placed))
        raise PlacementError(
            f"random policy found no feasible placement in "
            f"{self.max_attempts} attempts"
        )
