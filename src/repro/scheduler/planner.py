"""The resource-constrained planner: cores + placement in one step.

Given an ensemble whose simulations are user-fixed (the §3.4
assumption), a node budget, and a placement policy, the planner:

1. chooses the analysis core count with the §3.4 heuristic (Eq. 4
   feasibility, maximize E) evaluated in the co-location-free baseline;
2. rebuilds the ensemble spec at that core count;
3. delegates placement to the policy;
4. returns a :class:`Plan` carrying the placement, its score, and the
   provisioning decision — ready to pass to
   :func:`repro.runtime.runner.run_ensemble`.

A :class:`~repro.faults.analytic.RobustnessTerm` makes the plan
failure-aware: the final score carries the surrogate's expected
inflation penalty and the returned plan's score orders by
``objective - penalty`` — so two node budgets (or two policies) can be
compared on their robust utility without any DES trials.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.search.cache import StageCache

from repro.components.analysis import EigenAnalysisModel
from repro.core.heuristic import CoreAllocationChoice, choose_analysis_cores
from repro.core.stages import MemberStages
from repro.faults.analytic import RobustnessTerm
from repro.runtime.analytic import predict_member_stages
from repro.runtime.placement import EnsemblePlacement, MemberPlacement
from repro.runtime.spec import EnsembleSpec, MemberSpec
from repro.scheduler.context import PlanningContext, _coerce_context
from repro.scheduler.objectives import PlacementScore, score_placement
from repro.scheduler.policies import GreedyIndicatorPolicy, SchedulingPolicy
from repro.util.errors import ConfigurationError, PlacementError
from repro.util.validation import require_positive_int

DEFAULT_CORE_COUNTS = (1, 2, 4, 8, 16, 32)


@dataclasses.dataclass(frozen=True)
class Plan:
    """A complete scheduling decision."""

    spec: EnsembleSpec
    placement: EnsemblePlacement
    score: PlacementScore
    analysis_cores: int
    core_choice: CoreAllocationChoice
    policy_name: str


class ResourceConstrainedPlanner:
    """Plans an ensemble run within a node budget.

    Parameters
    ----------
    policy:
        Placement policy (defaults to the indicator-guided greedy).
    core_counts:
        Candidate analysis core counts for the §3.4 heuristic.
    robustness:
        Optional :class:`~repro.faults.analytic.RobustnessTerm`; when
        given, the plan's score includes the surrogate's expected
        inflation penalty (and orders by the penalized utility).
    cache:
        Optional :class:`~repro.search.cache.StageCache` used to score
        the final placement (shared across ``plan`` calls; a policy
        that accepts a cache benefits from warm entries too).
    context:
        Optional :class:`~repro.scheduler.context.PlanningContext`
        bundling ``robustness``/``cache`` (mixing both spellings warns
        ``DeprecationWarning``; legacy wins). Its ``cluster``/``dtl``
        fields additionally scope the final placement score to that
        platform — previously unreachable from the planner.
    """

    def __init__(
        self,
        policy: Optional[SchedulingPolicy] = None,
        core_counts: Sequence[int] = DEFAULT_CORE_COUNTS,
        robustness: Optional[RobustnessTerm] = None,
        cache: Optional["StageCache"] = None,
        context: Optional[PlanningContext] = None,
    ) -> None:
        self.policy = policy or GreedyIndicatorPolicy()
        self.core_counts = list(core_counts)
        if not self.core_counts:
            raise ConfigurationError("core_counts must be non-empty")
        self.cluster = None
        self.dtl = None
        if context is not None:
            merged = _coerce_context(
                context,
                "ResourceConstrainedPlanner",
                robustness=robustness,
                cache=cache,
            )
            robustness = merged.robustness
            cache = merged.cache
            self.cluster = merged.cluster
            self.dtl = merged.dtl
        self.robustness = robustness
        self.cache = cache
        #: probe predictions run by the most recent ``plan`` call —
        #: distinct core counts actually evaluated, after memoization
        self.probe_evaluations = 0

    def plan(
        self,
        spec: EnsembleSpec,
        num_nodes: int,
        cores_per_node: int = 32,
    ) -> Plan:
        """Produce a plan for ``spec`` over ``num_nodes`` nodes."""
        require_positive_int("num_nodes", num_nodes)
        require_positive_int("cores_per_node", cores_per_node)

        choice = self._choose_cores(spec, cores_per_node)
        sized_spec = self._respec_with_cores(spec, choice.cores)
        placement = self.policy.place(sized_spec, num_nodes, cores_per_node)
        placement = self._compact(placement)
        score = score_placement(
            sized_spec, placement, cluster=self.cluster, dtl=self.dtl,
            robustness=self.robustness, cache=self.cache,
        )
        return Plan(
            spec=sized_spec,
            placement=placement,
            score=score,
            analysis_cores=choice.cores,
            core_choice=choice,
            policy_name=self.policy.name,
        )

    # -- internals ----------------------------------------------------------
    @staticmethod
    def _compact(placement: EnsemblePlacement) -> EnsemblePlacement:
        """Release unused nodes: renumber used nodes consecutively.

        A policy given a generous budget may leave nodes idle; the
        allocation actually requested should be only what is used —
        exactly the provisioning (P) layer's preference.
        """
        used = sorted(placement.used_nodes)
        relabel = {old: new for new, old in enumerate(used)}
        members = tuple(
            MemberPlacement(
                relabel[mp.simulation_node],
                tuple(relabel[n] for n in mp.analysis_nodes),
            )
            for mp in placement.members
        )
        return EnsemblePlacement(len(used), members)

    def _choose_cores(
        self, spec: EnsembleSpec, cores_per_node: int
    ) -> CoreAllocationChoice:
        """Run the §3.4 heuristic on the first member's coupling shape."""
        member = spec.members[0]
        counts = [
            c
            for c in self.core_counts
            if member.simulation.cores + member.num_couplings * c
            <= cores_per_node * 2  # sanity bound: member fits two nodes
        ]
        if not counts:
            raise PlacementError(
                "no candidate analysis core count fits the node size"
            )

        # the heuristic, its single-count fallback, and the full sweep
        # all probe through this closure, re-requesting the same core
        # counts — memoize per plan() call so each count is predicted
        # exactly once however many paths ask for it
        probe_stages: dict = {}
        self.probe_evaluations = 0

        def evaluate(cores: int) -> MemberStages:
            cached = probe_stages.get(cores)
            if cached is not None:
                return cached
            # §3.4 baseline: co-location-free — the simulation and each
            # analysis on dedicated nodes, so the sweep measures pure
            # component scaling, not contention.
            probe_member = self._resize_member(member, cores, n_steps=1)
            probe = EnsembleSpec("probe", (probe_member,))
            k = probe_member.num_couplings
            placement = EnsemblePlacement(
                k + 1,
                (MemberPlacement(0, tuple(range(1, k + 1))),),
            )
            stages = predict_member_stages(probe, placement)[
                probe_member.name
            ]
            probe_stages[cores] = stages
            self.probe_evaluations += 1
            return stages

        choice = choose_analysis_cores(evaluate, counts)
        if choice is None:
            # no count satisfies Eq. 4: fall back to the largest count
            # (closest to feasibility) rather than failing the plan
            sweep = choose_analysis_cores(evaluate, [max(counts)])
            if sweep is None:
                from repro.core.heuristic import sweep_analysis_cores

                points = sweep_analysis_cores(evaluate, counts)
                best = min(points, key=lambda p: p.sigma)
                return CoreAllocationChoice(
                    cores=best.cores, point=best, sweep=tuple(points)
                )
            return sweep
        return choice

    @staticmethod
    def _resize_member(
        member: MemberSpec, analysis_cores: int, n_steps: Optional[int] = None
    ) -> MemberSpec:
        analyses = []
        for ana in member.analyses:
            if isinstance(ana, EigenAnalysisModel):
                analyses.append(ana.with_cores(analysis_cores))
            else:  # pragma: no cover - custom analysis models keep cores
                analyses.append(ana)
        return MemberSpec(
            name=member.name,
            simulation=member.simulation,
            analyses=tuple(analyses),
            n_steps=n_steps if n_steps is not None else member.n_steps,
        )

    def _respec_with_cores(
        self, spec: EnsembleSpec, analysis_cores: int
    ) -> EnsembleSpec:
        return EnsembleSpec(
            spec.name,
            tuple(
                self._resize_member(m, analysis_cores) for m in spec.members
            ),
        )
