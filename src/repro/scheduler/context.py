"""One bundle for the scoring/search context: :class:`PlanningContext`.

Seven PRs of growth left the planning entry points with sprawling,
repeated keyword lists — ``cluster``/``dtl``/``robustness``/``cache``
plus engine options threaded (inconsistently) through
:func:`~repro.scheduler.objectives.score_placement`,
:func:`~repro.search.engine.find_best_placement`,
:func:`~repro.scheduler.robust.rank_placements_robust`, the
:class:`~repro.scheduler.planner.ResourceConstrainedPlanner`, and the
service workers. :class:`PlanningContext` is the one frozen object
that carries all of it; the legacy kwargs keep working through
:func:`_coerce_context`, which warns ``DeprecationWarning`` when both
spellings are mixed in one call (the explicit legacy values win, so
existing call sites upgrade incrementally without behaviour changes).

The redesign is *pure plumbing*: a context-carrying call and its
legacy-kwarg equivalent produce float-identical winners and scores,
asserted by the differential oracle's exact (tolerance ``0.0``)
``context`` tier.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.dtl.base import DataTransportLayer
    from repro.faults.analytic import RobustnessTerm
    from repro.platform.cluster import Cluster
    from repro.search.cache import StageCache


@dataclasses.dataclass(frozen=True)
class PlanningContext:
    """Everything a planning call needs beyond the spec and budget.

    Parameters
    ----------
    cluster / dtl:
        Platform model and staging tier (both default to the
        Cori-like models when ``None``, exactly as the legacy kwargs
        did).
    robustness:
        Optional :class:`~repro.faults.analytic.RobustnessTerm`
        penalizing fragile placements.
    cache:
        Optional shared :class:`~repro.search.cache.StageCache`;
        callees build a compatible one when omitted.
    parallel / processes:
        Route batch scoring through a process pool.
    vectorized / chunk_size:
        Opt in to the column-kernel search path.
    """

    cluster: Optional["Cluster"] = None
    dtl: Optional["DataTransportLayer"] = None
    robustness: Optional["RobustnessTerm"] = None
    cache: Optional["StageCache"] = None
    parallel: bool = False
    processes: Optional[int] = None
    vectorized: bool = False
    chunk_size: int = 8192

    def evolve(self, **changes) -> "PlanningContext":
        """A copy with ``changes`` applied (frozen-dataclass idiom)."""
        return dataclasses.replace(self, **changes)


_FIELD_DEFAULTS = {
    field.name: field.default
    for field in dataclasses.fields(PlanningContext)
}


def _coerce_context(
    context: Optional[PlanningContext],
    caller: str,
    **legacy,
) -> PlanningContext:
    """Merge a ``context=`` argument with legacy keyword arguments.

    - context only → returned as-is;
    - legacy kwargs only (or nothing) → packed into a fresh context;
    - both → ``DeprecationWarning``; the explicitly passed legacy
      values override the context's fields, so a call site migrating
      one kwarg at a time never silently changes behaviour.

    Unknown keys raise ``TypeError`` via the dataclass constructor,
    which keeps the shim honest about what a context can carry.
    """
    supplied = {
        key: value
        for key, value in legacy.items()
        if value is not _FIELD_DEFAULTS[key] and value != _FIELD_DEFAULTS[key]
    }
    if context is None:
        return PlanningContext(**legacy)
    if supplied:
        warnings.warn(
            f"{caller}: context= was combined with legacy keyword(s) "
            f"{sorted(supplied)}; the legacy values take precedence. "
            f"Pass everything through PlanningContext instead.",
            DeprecationWarning,
            stacklevel=3,
        )
        return dataclasses.replace(context, **supplied)
    return context
