"""Indicator-guided placement scheduling (the paper's future work).

The paper closes: "Future work will consider leveraging the proposed
indicators for scheduling in situ components of a workflow ensemble
under resource constraints." This subpackage implements that program:

- :mod:`repro.scheduler.objectives` — scoring functions over candidate
  placements (the paper's F(P^{U,A,P}), predicted ensemble makespan,
  node count) evaluated through the fast analytic predictor;
- :mod:`repro.scheduler.policies` — placement policies: exhaustive
  search, the indicator-guided greedy scheduler, and baselines
  (round-robin spread, random) to compare against;
- :mod:`repro.scheduler.planner` — the resource-constrained planner:
  given an ensemble and a node budget, pick analysis core counts (via
  the §3.4 heuristic) and a placement (via a policy), returning a
  ready-to-run plan;
- :mod:`repro.scheduler.robust` — robust scoring: F(P) evaluated by
  executing candidates under a fault-injection model
  (:mod:`repro.faults`) and a recovery policy, for ranking placements
  by how well they hold up when components crash or straggle — either
  from DES trials or from the closed-form surrogate
  (:mod:`repro.faults.analytic`), which reproduces the DES ranking an
  order of magnitude faster and can ride inside the planner and the
  annealer as a :class:`~repro.faults.analytic.RobustnessTerm`.

The key empirical result (asserted in
``benchmarks/test_bench_scheduler.py``): the indicator-guided greedy
policy finds the exhaustive-search optimum on the paper's problem
sizes while evaluating an order of magnitude fewer placements, and
dominates the round-robin/random baselines on both F and makespan.
"""

from repro.scheduler.annealing import SimulatedAnnealingPolicy
from repro.scheduler.context import PlanningContext
from repro.scheduler.objectives import (
    PlacementScore,
    score_placement,
)
from repro.scheduler.policies import (
    ExhaustiveSearchPolicy,
    GreedyIndicatorPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    SchedulingPolicy,
)
from repro.scheduler.planner import Plan, ResourceConstrainedPlanner
from repro.scheduler.robust import (
    RANK_METHODS,
    RobustScore,
    crash_straggler_factory,
    rank_placements_robust,
    robust_score_placement,
    surrogate_score_placement,
)

__all__ = [
    "ExhaustiveSearchPolicy",
    "GreedyIndicatorPolicy",
    "PlacementScore",
    "Plan",
    "PlanningContext",
    "RANK_METHODS",
    "RandomPolicy",
    "ResourceConstrainedPlanner",
    "RobustScore",
    "RoundRobinPolicy",
    "SchedulingPolicy",
    "SimulatedAnnealingPolicy",
    "crash_straggler_factory",
    "rank_placements_robust",
    "robust_score_placement",
    "score_placement",
    "surrogate_score_placement",
]
