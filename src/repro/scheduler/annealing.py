"""Simulated-annealing placement search for large ensembles.

Exhaustive search grows as ``nodes^components``; the greedy policy is
fast but member-at-a-time. For large ensembles (many members, K > 1)
this module provides a classic annealer over the placement space:

- **state**: a feasible component-to-node assignment;
- **move**: relocate one uniformly chosen component to a random node
  with capacity (swap-free moves keep feasibility trivially);
- **energy**: ``-F(P^{U,A,P})`` via the analytic predictor — or, with
  a :class:`~repro.faults.analytic.RobustnessTerm`, the penalized
  ``-(F - weight * (E[inflation] - 1))`` so the annealer trades ideal
  objective against fault-domain fragility (node-level failure models
  make the penalty placement-dependent: co-location fuses domains);
- **schedule**: geometric cooling with per-temperature plateaus.

Deterministic given the seed. The tests verify it matches the
exhaustive optimum on paper-sized problems and beats greedy-breaking
adversarial starts on larger ones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.objective import objective_function
from repro.faults.analytic import RobustnessTerm
from repro.platform.cluster import Cluster
from repro.platform.specs import make_cori_like_cluster
from repro.runtime.placement import EnsemblePlacement, MemberPlacement
from repro.runtime.spec import EnsembleSpec
from repro.scheduler.objectives import score_placement
from repro.scheduler.policies import RandomPolicy, SchedulingPolicy
from repro.search.cache import FlatEvaluation, StageCache
from repro.util.rng import RandomSource
from repro.util.validation import (
    require_in_range,
    require_positive,
    require_positive_int,
)


@dataclass
class AnnealingStats:
    """Diagnostics of one annealing run."""

    evaluations: int = 0
    accepted: int = 0
    improved: int = 0


class SimulatedAnnealingPolicy(SchedulingPolicy):
    """Anneal over feasible placements, maximizing F(P^{U,A,P}).

    Parameters
    ----------
    seed:
        RNG seed (controls the start state and the move sequence).
    initial_temperature:
        Temperature relative to the |F| scale of the start state.
    cooling:
        Geometric cooling factor per plateau (0 < cooling < 1).
    plateau:
        Moves attempted per temperature.
    min_temperature_ratio:
        Stop when T falls below this fraction of the initial T.
    robustness:
        Optional :class:`~repro.faults.analytic.RobustnessTerm`; when
        given, the annealer maximizes the penalized utility instead of
        the raw objective.
    incremental:
        Use delta evaluation (default): a move changes the residents
        of exactly two nodes, so only members touching those nodes are
        re-predicted; every other member's cached stage and indicator
        terms carry over. The trajectory is bit-identical to full
        re-scoring (same floats, same RNG draws, same placements) —
        set ``False`` to force the original score-everything path.
    cache:
        Optional :class:`~repro.search.cache.StageCache` to share
        across runs; a fresh default-context cache is built per
        ``place`` call when omitted or incompatible.
    """

    name = "simulated-annealing"

    def __init__(
        self,
        seed: int = 0,
        initial_temperature: float = 1.0,
        cooling: float = 0.9,
        plateau: int = 100,
        min_temperature_ratio: float = 1e-3,
        robustness: Optional[RobustnessTerm] = None,
        incremental: bool = True,
        cache: Optional[StageCache] = None,
    ) -> None:
        self.rng = RandomSource(seed, name="annealer")
        self.initial_temperature = require_positive(
            "initial_temperature", initial_temperature
        )
        self.cooling = require_in_range(
            "cooling", cooling, 0.0, 1.0, inclusive_low=False,
            inclusive_high=False,
        )
        self.plateau = require_positive_int("plateau", plateau)
        self.min_temperature_ratio = require_positive(
            "min_temperature_ratio", min_temperature_ratio
        )
        self.robustness = robustness
        self.incremental = bool(incremental)
        self.cache = cache
        self.stats = AnnealingStats()

    # -- state helpers --------------------------------------------------------
    @staticmethod
    def _flatten(
        spec: EnsembleSpec, placement: EnsemblePlacement
    ) -> List[int]:
        nodes: List[int] = []
        for mp in placement.members:
            nodes.append(mp.simulation_node)
            nodes.extend(mp.analysis_nodes)
        return nodes

    @staticmethod
    def _unflatten(
        spec: EnsembleSpec, flat: List[int], num_nodes: int
    ) -> EnsemblePlacement:
        members: List[MemberPlacement] = []
        cursor = 0
        for member in spec.members:
            shape = 1 + member.num_couplings
            chunk = flat[cursor : cursor + shape]
            cursor += shape
            members.append(MemberPlacement(chunk[0], tuple(chunk[1:])))
        return EnsemblePlacement(num_nodes, tuple(members))

    @staticmethod
    def _demand(
        spec: EnsembleSpec, flat: List[int]
    ) -> Dict[int, int]:
        demand: Dict[int, int] = {}
        cursor = 0
        for member in spec.members:
            for cores in [member.simulation.cores] + [
                a.cores for a in member.analyses
            ]:
                node = flat[cursor]
                demand[node] = demand.get(node, 0) + cores
                cursor += 1
        return demand

    def place(
        self,
        spec: EnsembleSpec,
        num_nodes: int,
        cores_per_node: int,
    ) -> EnsemblePlacement:
        require_positive_int("num_nodes", num_nodes)
        self._check_total_capacity(spec, num_nodes, cores_per_node)
        self.stats = AnnealingStats()
        gen = self.rng.generator

        # start from a random feasible state (reusing the random policy's
        # retry logic, seeded from our stream)
        start = RandomPolicy(seed=int(gen.integers(0, 2**31))).place(
            spec, num_nodes, cores_per_node
        )
        flat = self._flatten(spec, start)
        component_cores: List[int] = []
        for member in spec.members:
            component_cores.append(member.simulation.cores)
            component_cores.extend(a.cores for a in member.analyses)

        if self.incremental:
            return self._anneal_incremental(
                spec, num_nodes, cores_per_node, gen, flat, component_cores
            )

        current = score_placement(
            spec,
            self._unflatten(spec, flat, num_nodes),
            robustness=self.robustness,
        )
        self.stats.evaluations += 1
        best_flat = list(flat)
        best = current

        temperature = self.initial_temperature * max(
            abs(current.utility), 1e-9
        )
        floor = temperature * self.min_temperature_ratio

        demand = self._demand(spec, flat)
        while temperature > floor:
            for _ in range(self.plateau):
                idx = int(gen.integers(0, len(flat)))
                old_node = flat[idx]
                cores = component_cores[idx]
                options = [
                    n
                    for n in range(num_nodes)
                    if n != old_node
                    and demand.get(n, 0) + cores <= cores_per_node
                ]
                if not options:
                    continue
                new_node = int(gen.choice(options))
                flat[idx] = new_node
                demand[old_node] -= cores
                demand[new_node] = demand.get(new_node, 0) + cores

                candidate = score_placement(
                    spec,
                    self._unflatten(spec, flat, num_nodes),
                    robustness=self.robustness,
                )
                self.stats.evaluations += 1
                delta = candidate.utility - current.utility
                if delta >= 0 or gen.random() < math.exp(delta / temperature):
                    current = candidate
                    self.stats.accepted += 1
                    if candidate.utility > best.utility:
                        best = candidate
                        best_flat = list(flat)
                        self.stats.improved += 1
                else:
                    # revert the move
                    flat[idx] = old_node
                    demand[new_node] -= cores
                    demand[old_node] += cores
            temperature *= self.cooling

        return self._unflatten(spec, best_flat, num_nodes)

    # -- incremental (delta-evaluation) annealing -----------------------------
    def _utility_of(
        self,
        spec: EnsembleSpec,
        evaluation: FlatEvaluation,
        flat: List[int],
        num_nodes: int,
        robust_cluster: Optional[Cluster],
    ) -> float:
        """The move-acceptance utility from a cached flat evaluation.

        Mirrors ``score_placement(...).utility`` exactly: same
        objective aggregation, and — with a robustness term — the same
        surrogate penalty over the same (cached, bit-identical) stage
        predictions.
        """
        objective = objective_function(evaluation.indicators)
        if self.robustness is None:
            return objective
        penalty = self.robustness.penalty(
            spec,
            self._unflatten(spec, flat, num_nodes),
            cluster=robust_cluster,
            stages=evaluation.stages_by_name(spec),
        )
        return objective - penalty

    def _anneal_incremental(
        self,
        spec: EnsembleSpec,
        num_nodes: int,
        cores_per_node: int,
        gen,
        flat: List[int],
        component_cores: List[int],
    ) -> EnsemblePlacement:
        """The same annealing schedule with changed-nodes-only rescoring.

        A move relocates one component from ``old_node`` to
        ``new_node``; only members with a component on either node need
        new signatures (and, on a cache miss, new predictions) — the
        rest of the evaluation carries over unchanged. Utilities,
        acceptance decisions, and RNG draws are bit-identical to the
        full path, which the parity tests assert move for move.
        """
        cache = self.cache
        if cache is None or not cache.matches(None, None):
            cache = StageCache()
        robust_cluster: Optional[Cluster] = None
        if self.robustness is not None:
            robust_cluster = make_cori_like_cluster(num_nodes)

        evaluation = cache.evaluate_flat(spec, flat, num_nodes)
        current_utility = self._utility_of(
            spec, evaluation, flat, num_nodes, robust_cluster
        )
        self.stats.evaluations += 1
        best_flat = list(flat)
        best_utility = current_utility

        temperature = self.initial_temperature * max(
            abs(current_utility), 1e-9
        )
        floor = temperature * self.min_temperature_ratio

        demand = self._demand(spec, flat)
        while temperature > floor:
            for _ in range(self.plateau):
                idx = int(gen.integers(0, len(flat)))
                old_node = flat[idx]
                cores = component_cores[idx]
                options = [
                    n
                    for n in range(num_nodes)
                    if n != old_node
                    and demand.get(n, 0) + cores <= cores_per_node
                ]
                if not options:
                    continue
                new_node = int(gen.choice(options))
                flat[idx] = new_node
                demand[old_node] -= cores
                demand[new_node] = demand.get(new_node, 0) + cores

                candidate_eval = cache.evaluate_flat(
                    spec,
                    flat,
                    num_nodes,
                    changed_nodes=frozenset((old_node, new_node)),
                    previous=evaluation,
                )
                candidate_utility = self._utility_of(
                    spec, candidate_eval, flat, num_nodes, robust_cluster
                )
                self.stats.evaluations += 1
                delta = candidate_utility - current_utility
                if delta >= 0 or gen.random() < math.exp(delta / temperature):
                    evaluation = candidate_eval
                    current_utility = candidate_utility
                    self.stats.accepted += 1
                    if candidate_utility > best_utility:
                        best_utility = candidate_utility
                        best_flat = list(flat)
                        self.stats.improved += 1
                else:
                    # revert the move
                    flat[idx] = old_node
                    demand[new_node] -= cores
                    demand[old_node] += cores
            temperature *= self.cooling

        return self._unflatten(spec, best_flat, num_nodes)
