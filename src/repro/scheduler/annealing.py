"""Simulated-annealing placement search for large ensembles.

Exhaustive search grows as ``nodes^components``; the greedy policy is
fast but member-at-a-time. For large ensembles (many members, K > 1)
this module provides a classic annealer over the placement space:

- **state**: a feasible component-to-node assignment;
- **move**: relocate one uniformly chosen component to a random node
  with capacity (swap-free moves keep feasibility trivially);
- **energy**: ``-F(P^{U,A,P})`` via the analytic predictor — or, with
  a :class:`~repro.faults.analytic.RobustnessTerm`, the penalized
  ``-(F - weight * (E[inflation] - 1))`` so the annealer trades ideal
  objective against fault-domain fragility (node-level failure models
  make the penalty placement-dependent: co-location fuses domains);
- **schedule**: geometric cooling with per-temperature plateaus.

Deterministic given the seed. The tests verify it matches the
exhaustive optimum on paper-sized problems and beats greedy-breaking
adversarial starts on larger ones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.faults.analytic import RobustnessTerm
from repro.runtime.placement import EnsemblePlacement, MemberPlacement
from repro.runtime.spec import EnsembleSpec
from repro.scheduler.objectives import score_placement
from repro.scheduler.policies import RandomPolicy, SchedulingPolicy
from repro.util.rng import RandomSource
from repro.util.validation import (
    require_in_range,
    require_positive,
    require_positive_int,
)


@dataclass
class AnnealingStats:
    """Diagnostics of one annealing run."""

    evaluations: int = 0
    accepted: int = 0
    improved: int = 0


class SimulatedAnnealingPolicy(SchedulingPolicy):
    """Anneal over feasible placements, maximizing F(P^{U,A,P}).

    Parameters
    ----------
    seed:
        RNG seed (controls the start state and the move sequence).
    initial_temperature:
        Temperature relative to the |F| scale of the start state.
    cooling:
        Geometric cooling factor per plateau (0 < cooling < 1).
    plateau:
        Moves attempted per temperature.
    min_temperature_ratio:
        Stop when T falls below this fraction of the initial T.
    robustness:
        Optional :class:`~repro.faults.analytic.RobustnessTerm`; when
        given, the annealer maximizes the penalized utility instead of
        the raw objective.
    """

    name = "simulated-annealing"

    def __init__(
        self,
        seed: int = 0,
        initial_temperature: float = 1.0,
        cooling: float = 0.9,
        plateau: int = 100,
        min_temperature_ratio: float = 1e-3,
        robustness: Optional[RobustnessTerm] = None,
    ) -> None:
        self.rng = RandomSource(seed, name="annealer")
        self.initial_temperature = require_positive(
            "initial_temperature", initial_temperature
        )
        self.cooling = require_in_range(
            "cooling", cooling, 0.0, 1.0, inclusive_low=False,
            inclusive_high=False,
        )
        self.plateau = require_positive_int("plateau", plateau)
        self.min_temperature_ratio = require_positive(
            "min_temperature_ratio", min_temperature_ratio
        )
        self.robustness = robustness
        self.stats = AnnealingStats()

    # -- state helpers --------------------------------------------------------
    @staticmethod
    def _flatten(
        spec: EnsembleSpec, placement: EnsemblePlacement
    ) -> List[int]:
        nodes: List[int] = []
        for mp in placement.members:
            nodes.append(mp.simulation_node)
            nodes.extend(mp.analysis_nodes)
        return nodes

    @staticmethod
    def _unflatten(
        spec: EnsembleSpec, flat: List[int], num_nodes: int
    ) -> EnsemblePlacement:
        members: List[MemberPlacement] = []
        cursor = 0
        for member in spec.members:
            shape = 1 + member.num_couplings
            chunk = flat[cursor : cursor + shape]
            cursor += shape
            members.append(MemberPlacement(chunk[0], tuple(chunk[1:])))
        return EnsemblePlacement(num_nodes, tuple(members))

    @staticmethod
    def _demand(
        spec: EnsembleSpec, flat: List[int]
    ) -> Dict[int, int]:
        demand: Dict[int, int] = {}
        cursor = 0
        for member in spec.members:
            for cores in [member.simulation.cores] + [
                a.cores for a in member.analyses
            ]:
                node = flat[cursor]
                demand[node] = demand.get(node, 0) + cores
                cursor += 1
        return demand

    def place(
        self,
        spec: EnsembleSpec,
        num_nodes: int,
        cores_per_node: int,
    ) -> EnsemblePlacement:
        require_positive_int("num_nodes", num_nodes)
        self._check_total_capacity(spec, num_nodes, cores_per_node)
        self.stats = AnnealingStats()
        gen = self.rng.generator

        # start from a random feasible state (reusing the random policy's
        # retry logic, seeded from our stream)
        start = RandomPolicy(seed=int(gen.integers(0, 2**31))).place(
            spec, num_nodes, cores_per_node
        )
        flat = self._flatten(spec, start)
        component_cores: List[int] = []
        for member in spec.members:
            component_cores.append(member.simulation.cores)
            component_cores.extend(a.cores for a in member.analyses)

        current = score_placement(
            spec,
            self._unflatten(spec, flat, num_nodes),
            robustness=self.robustness,
        )
        self.stats.evaluations += 1
        best_flat = list(flat)
        best = current

        temperature = self.initial_temperature * max(
            abs(current.utility), 1e-9
        )
        floor = temperature * self.min_temperature_ratio

        demand = self._demand(spec, flat)
        while temperature > floor:
            for _ in range(self.plateau):
                idx = int(gen.integers(0, len(flat)))
                old_node = flat[idx]
                cores = component_cores[idx]
                options = [
                    n
                    for n in range(num_nodes)
                    if n != old_node
                    and demand.get(n, 0) + cores <= cores_per_node
                ]
                if not options:
                    continue
                new_node = int(gen.choice(options))
                flat[idx] = new_node
                demand[old_node] -= cores
                demand[new_node] = demand.get(new_node, 0) + cores

                candidate = score_placement(
                    spec,
                    self._unflatten(spec, flat, num_nodes),
                    robustness=self.robustness,
                )
                self.stats.evaluations += 1
                delta = candidate.utility - current.utility
                if delta >= 0 or gen.random() < math.exp(delta / temperature):
                    current = candidate
                    self.stats.accepted += 1
                    if candidate.utility > best.utility:
                        best = candidate
                        best_flat = list(flat)
                        self.stats.improved += 1
                else:
                    # revert the move
                    flat[idx] = old_node
                    demand[new_node] -= cores
                    demand[old_node] += cores
            temperature *= self.cooling

        return self._unflatten(spec, best_flat, num_nodes)
