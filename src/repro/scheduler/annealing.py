"""Simulated-annealing placement search for large ensembles.

Exhaustive search grows as ``nodes^components``; the greedy policy is
fast but member-at-a-time. For large ensembles (many members, K > 1)
this module provides a classic annealer over the placement space:

- **state**: a feasible component-to-node assignment;
- **move**: relocate one uniformly chosen component to a random node
  with capacity (swap-free moves keep feasibility trivially);
- **energy**: ``-F(P^{U,A,P})`` via the analytic predictor — or, with
  a :class:`~repro.faults.analytic.RobustnessTerm`, the penalized
  ``-(F - weight * (E[inflation] - 1))`` so the annealer trades ideal
  objective against fault-domain fragility (node-level failure models
  make the penalty placement-dependent: co-location fuses domains);
- **schedule**: geometric cooling with per-temperature plateaus.

Deterministic given the seed. The tests verify it matches the
exhaustive optimum on paper-sized problems and beats greedy-breaking
adversarial starts on larger ones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.objective import objective_function
from repro.faults.analytic import RobustnessTerm
from repro.platform.cluster import Cluster
from repro.platform.specs import make_cori_like_cluster
from repro.runtime.placement import EnsemblePlacement, MemberPlacement
from repro.runtime.spec import EnsembleSpec
from repro.scheduler.objectives import score_placement
from repro.scheduler.policies import RandomPolicy, SchedulingPolicy
from repro.search.cache import FlatEvaluation, StageCache
from repro.util.errors import ValidationError
from repro.util.rng import RandomSource
from repro.util.validation import (
    require_in_range,
    require_positive,
    require_positive_int,
)


@dataclass
class AnnealingStats:
    """Diagnostics of one annealing run."""

    evaluations: int = 0
    accepted: int = 0
    improved: int = 0


class SimulatedAnnealingPolicy(SchedulingPolicy):
    """Anneal over feasible placements, maximizing F(P^{U,A,P}).

    Parameters
    ----------
    seed:
        RNG seed (controls the start state and the move sequence).
    initial_temperature:
        Temperature relative to the |F| scale of the start state.
    cooling:
        Geometric cooling factor per plateau (0 < cooling < 1).
    plateau:
        Moves attempted per temperature.
    min_temperature_ratio:
        Stop when T falls below this fraction of the initial T.
    robustness:
        Optional :class:`~repro.faults.analytic.RobustnessTerm`; when
        given, the annealer maximizes the penalized utility instead of
        the raw objective.
    incremental:
        Use delta evaluation (default): a move changes the residents
        of exactly two nodes, so only members touching those nodes are
        re-predicted; every other member's cached stage and indicator
        terms carry over. The trajectory is bit-identical to full
        re-scoring (same floats, same RNG draws, same placements) —
        set ``False`` to force the original score-everything path.
    cache:
        Optional :class:`~repro.search.cache.StageCache` to share
        across runs; a fresh default-context cache is built per
        ``place`` call when omitted or incompatible.
    robust_rank_top:
        When > 0, keep the ``robust_rank_top`` best *distinct*
        accepted states (the elite pool) and, after the anneal, re-rank
        them with DES-under-failures via
        :func:`~repro.scheduler.robust.rank_placements_robust` — the
        returned placement is the robust winner, not necessarily the
        analytic one. The annealing trajectory itself is untouched
        (elite bookkeeping consumes no RNG draws), so runs with and
        without refinement explore identical move sequences. The
        ranking is exposed on ``last_robust_ranking``.
    robust_model_factory / robust_policy:
        Failure model factory and recovery policy for the refinement
        pass; both required when ``robust_rank_top > 0``.
    robust_trials / robust_base_seed:
        Replicas per elite candidate and their base seed (common
        random numbers pair the draws across candidates).
    robust_engine:
        ``"batched"`` (default) replays fault replicas against one
        captured baseline per candidate; ``"serial"`` re-simulates.
    """

    name = "simulated-annealing"

    def __init__(
        self,
        seed: int = 0,
        initial_temperature: float = 1.0,
        cooling: float = 0.9,
        plateau: int = 100,
        min_temperature_ratio: float = 1e-3,
        robustness: Optional[RobustnessTerm] = None,
        incremental: bool = True,
        cache: Optional[StageCache] = None,
        robust_rank_top: int = 0,
        robust_model_factory=None,
        robust_policy=None,
        robust_trials: int = 4,
        robust_base_seed: int = 0,
        robust_engine: str = "batched",
    ) -> None:
        self.rng = RandomSource(seed, name="annealer")
        self.initial_temperature = require_positive(
            "initial_temperature", initial_temperature
        )
        self.cooling = require_in_range(
            "cooling", cooling, 0.0, 1.0, inclusive_low=False,
            inclusive_high=False,
        )
        self.plateau = require_positive_int("plateau", plateau)
        self.min_temperature_ratio = require_positive(
            "min_temperature_ratio", min_temperature_ratio
        )
        self.robustness = robustness
        self.incremental = bool(incremental)
        self.cache = cache
        if robust_rank_top:
            require_positive_int("robust_rank_top", robust_rank_top)
            if robust_model_factory is None or robust_policy is None:
                raise ValidationError(
                    "robust_rank_top > 0 requires robust_model_factory "
                    "and robust_policy"
                )
            from repro.scheduler.robust import RANK_ENGINES

            if robust_engine not in RANK_ENGINES:
                valid = ", ".join(repr(e) for e in RANK_ENGINES)
                raise ValidationError(
                    f"unknown robust_engine {robust_engine!r}; "
                    f"valid engines: {valid}"
                )
        self.robust_rank_top = int(robust_rank_top)
        self.robust_model_factory = robust_model_factory
        self.robust_policy = robust_policy
        self.robust_trials = require_positive_int(
            "robust_trials", robust_trials
        )
        self.robust_base_seed = robust_base_seed
        self.robust_engine = robust_engine
        #: RobustScore list from the last refinement pass (empty when
        #: refinement is off or ``place`` has not run yet).
        self.last_robust_ranking: List = []
        self.stats = AnnealingStats()
        self._elite: Dict[Tuple[int, ...], float] = {}

    # -- state helpers --------------------------------------------------------
    @staticmethod
    def _flatten(
        spec: EnsembleSpec, placement: EnsemblePlacement
    ) -> List[int]:
        nodes: List[int] = []
        for mp in placement.members:
            nodes.append(mp.simulation_node)
            nodes.extend(mp.analysis_nodes)
        return nodes

    @staticmethod
    def _unflatten(
        spec: EnsembleSpec, flat: List[int], num_nodes: int
    ) -> EnsemblePlacement:
        members: List[MemberPlacement] = []
        cursor = 0
        for member in spec.members:
            shape = 1 + member.num_couplings
            chunk = flat[cursor : cursor + shape]
            cursor += shape
            members.append(MemberPlacement(chunk[0], tuple(chunk[1:])))
        return EnsemblePlacement(num_nodes, tuple(members))

    @staticmethod
    def _demand(
        spec: EnsembleSpec, flat: List[int]
    ) -> Dict[int, int]:
        demand: Dict[int, int] = {}
        cursor = 0
        for member in spec.members:
            for cores in [member.simulation.cores] + [
                a.cores for a in member.analyses
            ]:
                node = flat[cursor]
                demand[node] = demand.get(node, 0) + cores
                cursor += 1
        return demand

    # -- elite pool -----------------------------------------------------------
    def _note_elite(self, utility: float, flat: List[int]) -> None:
        """Record an accepted state in the elite pool.

        Pure bookkeeping — no RNG draws — so enabling refinement never
        perturbs the annealing trajectory. Distinct states are keyed by
        their flat assignment; re-visits keep the max utility.
        """
        if not self.robust_rank_top:
            return
        key = tuple(flat)
        prev = self._elite.get(key)
        if prev is None or utility > prev:
            self._elite[key] = utility

    def _robust_refine(
        self,
        spec: EnsembleSpec,
        num_nodes: int,
        best_flat: List[int],
    ) -> EnsemblePlacement:
        """Re-rank the elite pool under injected failures; best wins.

        The analytic winner is always in the candidate set, so
        refinement can only replace it with a state that scores at
        least as well under the failure model.
        """
        best_placement = self._unflatten(spec, best_flat, num_nodes)
        if not self.robust_rank_top:
            self.last_robust_ranking = []
            return best_placement
        # deferred: scheduler.robust pulls in the executor stack, which
        # this module does not need on the pure-analytic path.
        from repro.scheduler.robust import rank_placements_robust

        pool = sorted(
            self._elite.items(), key=lambda item: item[1], reverse=True
        )[: self.robust_rank_top]
        candidates = {
            f"elite-{rank}": self._unflatten(spec, list(key), num_nodes)
            for rank, (key, _) in enumerate(pool)
        }
        best_key = tuple(best_flat)
        if best_key not in self._elite or all(
            key != best_key for key, _ in pool
        ):
            candidates["elite-best"] = best_placement
        self.last_robust_ranking = rank_placements_robust(
            spec,
            candidates,
            self.robust_model_factory,
            self.robust_policy,
            trials=self.robust_trials,
            base_seed=self.robust_base_seed,
            method="des",
            engine=self.robust_engine,
        )
        return self.last_robust_ranking[0].placement

    def place(
        self,
        spec: EnsembleSpec,
        num_nodes: int,
        cores_per_node: int,
        initial_placement: Optional[EnsemblePlacement] = None,
    ) -> EnsemblePlacement:
        """Anneal from a random feasible state, or warm-start.

        ``initial_placement`` seeds the anneal from a known-good state
        instead of a random one — the mid-run re-planner warm-starts
        from the ensemble's *current* placement so the search explores
        the neighbourhood of what is already running. Omitting it
        preserves the seeded random start bit for bit (the warm start
        skips the start-state RNG draw entirely, so the move sequence
        itself is still the seed's).
        """
        require_positive_int("num_nodes", num_nodes)
        self._check_total_capacity(spec, num_nodes, cores_per_node)
        self.stats = AnnealingStats()
        self._elite = {}
        gen = self.rng.generator

        if initial_placement is not None:
            if initial_placement.num_nodes != num_nodes:
                raise ValidationError(
                    f"initial_placement spans "
                    f"{initial_placement.num_nodes} nodes, expected "
                    f"{num_nodes}"
                )
            initial_placement.validate_against(spec, cores_per_node)
            start = initial_placement
        else:
            # start from a random feasible state (reusing the random
            # policy's retry logic, seeded from our stream)
            start = RandomPolicy(seed=int(gen.integers(0, 2**31))).place(
                spec, num_nodes, cores_per_node
            )
        flat = self._flatten(spec, start)
        component_cores: List[int] = []
        for member in spec.members:
            component_cores.append(member.simulation.cores)
            component_cores.extend(a.cores for a in member.analyses)

        if self.incremental:
            return self._anneal_incremental(
                spec, num_nodes, cores_per_node, gen, flat, component_cores
            )

        current = score_placement(
            spec,
            self._unflatten(spec, flat, num_nodes),
            robustness=self.robustness,
        )
        self.stats.evaluations += 1
        best_flat = list(flat)
        best = current
        self._note_elite(current.utility, flat)

        temperature = self.initial_temperature * max(
            abs(current.utility), 1e-9
        )
        floor = temperature * self.min_temperature_ratio

        demand = self._demand(spec, flat)
        while temperature > floor:
            for _ in range(self.plateau):
                idx = int(gen.integers(0, len(flat)))
                old_node = flat[idx]
                cores = component_cores[idx]
                options = [
                    n
                    for n in range(num_nodes)
                    if n != old_node
                    and demand.get(n, 0) + cores <= cores_per_node
                ]
                if not options:
                    continue
                new_node = int(gen.choice(options))
                flat[idx] = new_node
                demand[old_node] -= cores
                demand[new_node] = demand.get(new_node, 0) + cores

                candidate = score_placement(
                    spec,
                    self._unflatten(spec, flat, num_nodes),
                    robustness=self.robustness,
                )
                self.stats.evaluations += 1
                delta = candidate.utility - current.utility
                if delta >= 0 or gen.random() < math.exp(delta / temperature):
                    current = candidate
                    self.stats.accepted += 1
                    self._note_elite(candidate.utility, flat)
                    if candidate.utility > best.utility:
                        best = candidate
                        best_flat = list(flat)
                        self.stats.improved += 1
                else:
                    # revert the move
                    flat[idx] = old_node
                    demand[new_node] -= cores
                    demand[old_node] += cores
            temperature *= self.cooling

        return self._robust_refine(spec, num_nodes, best_flat)

    # -- incremental (delta-evaluation) annealing -----------------------------
    def _utility_of(
        self,
        spec: EnsembleSpec,
        evaluation: FlatEvaluation,
        flat: List[int],
        num_nodes: int,
        robust_cluster: Optional[Cluster],
    ) -> float:
        """The move-acceptance utility from a cached flat evaluation.

        Mirrors ``score_placement(...).utility`` exactly: same
        objective aggregation, and — with a robustness term — the same
        surrogate penalty over the same (cached, bit-identical) stage
        predictions.
        """
        objective = objective_function(evaluation.indicators)
        if self.robustness is None:
            return objective
        penalty = self.robustness.penalty(
            spec,
            self._unflatten(spec, flat, num_nodes),
            cluster=robust_cluster,
            stages=evaluation.stages_by_name(spec),
        )
        return objective - penalty

    def _anneal_incremental(
        self,
        spec: EnsembleSpec,
        num_nodes: int,
        cores_per_node: int,
        gen,
        flat: List[int],
        component_cores: List[int],
    ) -> EnsemblePlacement:
        """The same annealing schedule with changed-nodes-only rescoring.

        A move relocates one component from ``old_node`` to
        ``new_node``; only members with a component on either node need
        new signatures (and, on a cache miss, new predictions) — the
        rest of the evaluation carries over unchanged. Utilities,
        acceptance decisions, and RNG draws are bit-identical to the
        full path, which the parity tests assert move for move.
        """
        cache = self.cache
        if cache is None or not cache.matches(None, None):
            cache = StageCache()
        robust_cluster: Optional[Cluster] = None
        if self.robustness is not None:
            robust_cluster = make_cori_like_cluster(num_nodes)

        evaluation = cache.evaluate_flat(spec, flat, num_nodes)
        current_utility = self._utility_of(
            spec, evaluation, flat, num_nodes, robust_cluster
        )
        self.stats.evaluations += 1
        best_flat = list(flat)
        best_utility = current_utility
        self._note_elite(current_utility, flat)

        temperature = self.initial_temperature * max(
            abs(current_utility), 1e-9
        )
        floor = temperature * self.min_temperature_ratio

        demand = self._demand(spec, flat)
        while temperature > floor:
            for _ in range(self.plateau):
                idx = int(gen.integers(0, len(flat)))
                old_node = flat[idx]
                cores = component_cores[idx]
                options = [
                    n
                    for n in range(num_nodes)
                    if n != old_node
                    and demand.get(n, 0) + cores <= cores_per_node
                ]
                if not options:
                    continue
                new_node = int(gen.choice(options))
                flat[idx] = new_node
                demand[old_node] -= cores
                demand[new_node] = demand.get(new_node, 0) + cores

                candidate_eval = cache.evaluate_flat(
                    spec,
                    flat,
                    num_nodes,
                    changed_nodes=frozenset((old_node, new_node)),
                    previous=evaluation,
                )
                candidate_utility = self._utility_of(
                    spec, candidate_eval, flat, num_nodes, robust_cluster
                )
                self.stats.evaluations += 1
                delta = candidate_utility - current_utility
                if delta >= 0 or gen.random() < math.exp(delta / temperature):
                    evaluation = candidate_eval
                    current_utility = candidate_utility
                    self.stats.accepted += 1
                    self._note_elite(candidate_utility, flat)
                    if candidate_utility > best_utility:
                        best_utility = candidate_utility
                        best_flat = list(flat)
                        self.stats.improved += 1
                else:
                    # revert the move
                    flat[idx] = old_node
                    demand[new_node] -= cores
                    demand[old_node] += cores
            temperature *= self.cooling

        return self._robust_refine(spec, num_nodes, best_flat)
