"""Robust placement scoring: F(P) evaluated under a failure model.

The analytic scorer (:mod:`repro.scheduler.objectives`) ranks
placements by the ideal, failure-free F(P^{U,A,P}). This module ranks
them by *robust* F(P): the indicator objective measured from
discrete-event executions with fault injection enabled, averaged over
independent fault-schedule draws. A placement that looks optimal in
steady state can lose its edge once crashes and stragglers stretch its
stages — co-location, for instance, couples a member's fate to fewer
nodes but concentrates the blast radius of a straggling simulation.

Because robust scores come from full DES runs they cost milliseconds,
not microseconds — use them to re-rank a shortlist (e.g. the paper's
C1/C2 candidates or a policy's top choices), not to drive inner-loop
search. For inner-loop robustness there are two cheaper routes:

- :func:`surrogate_score_placement` (or ``method="surrogate"`` on
  :func:`rank_placements_robust`) prices the same failure regime with
  the closed-form surrogate in :mod:`repro.faults.analytic` — the
  tests assert it reproduces the DES ranking of the paper's C1/C2
  placements at a >= 10x speedup;
- a :class:`~repro.faults.analytic.RobustnessTerm` handed to
  :func:`~repro.scheduler.objectives.score_placement`, the planner, or
  the annealer folds the surrogate penalty into the search objective
  itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.search.cache import StageCache

import numpy as np

from repro.dtl.base import DataTransportLayer
from repro.faults.analytic import surrogate_resilience
from repro.faults.models import FailureModel, FaultKind, RandomFailureModel
from repro.faults.recovery import RecoveryPolicy
from repro.monitoring.resilience import compute_resilience
from repro.platform.cluster import Cluster
from repro.platform.specs import make_cori_like_cluster
from repro.runtime.analytic import predict_member_stages
from repro.runtime.executor import EnsembleExecutor
from repro.runtime.placement import EnsemblePlacement
from repro.runtime.spec import EnsembleSpec
from repro.scheduler.context import PlanningContext, _coerce_context
from repro.scheduler.objectives import FINAL_STAGE_ORDER, score_placement
from repro.util.errors import ValidationError
from repro.util.rng import derive_replica_seed
from repro.util.validation import require_positive_int

#: builds a fresh failure model for one trial's seed.
ModelFactory = Callable[[int], FailureModel]

#: valid ``method`` values for :func:`rank_placements_robust`.
RANK_METHODS: Tuple[str, ...] = ("des", "surrogate")

#: valid ``engine`` values for the DES method of
#: :func:`rank_placements_robust`.
RANK_ENGINES: Tuple[str, ...] = ("serial", "batched")


def crash_straggler_factory(
    rate: float,
    kinds: Tuple[FaultKind, ...] = (FaultKind.CRASH, FaultKind.STRAGGLER),
) -> ModelFactory:
    """The default model factory: crashes + stragglers at one rate.

    Parameters
    ----------
    rate:
        Per-site per-step fault probability (>= 0).
    kinds:
        Fault kinds drawn at each faulted site.

    Returns
    -------
    ModelFactory
        ``seed -> RandomFailureModel`` for independent trial draws.

    Examples
    --------
    >>> factory = crash_straggler_factory(0.05)
    >>> factory(3).rate
    0.05
    """
    return lambda seed: RandomFailureModel(rate=rate, kinds=kinds, seed=seed)


@dataclass(frozen=True)
class RobustScore:
    """Quality of one placement when failures are part of the contract.

    Ordering matches :class:`~repro.scheduler.objectives
    .PlacementScore`: robust objective first (higher better), then
    fewer nodes, then lower mean inflation. Surrogate-derived scores
    carry ``trials=0`` (no DES executions were run).

    Examples
    --------
    >>> from repro.runtime.placement import (EnsemblePlacement,
    ...                                      MemberPlacement)
    >>> pl = EnsemblePlacement(1, (MemberPlacement(0, (0,)),))
    >>> a = RobustScore("a", pl, 0.5, 0.6, 1.1, 0.2, 1, 3)
    >>> b = RobustScore("b", pl, 0.4, 0.6, 1.3, 0.2, 1, 3)
    >>> max(a, b).name
    'a'
    """

    name: str
    placement: EnsemblePlacement
    objective: float  # mean F(P^{U,A,P}) under failures
    ideal_objective: float  # failure-free DES F(P^{U,A,P})
    mean_inflation: float  # mean makespan inflation factor
    mean_goodput: float  # mean steps per virtual second
    num_nodes: int
    trials: int

    @property
    def degradation(self) -> float:
        """How much of the ideal objective failures eroded (>= 0)."""
        return self.ideal_objective - self.objective

    def _key(self) -> Tuple[float, int, float]:
        return (self.objective, -self.num_nodes, -self.mean_inflation)

    def __lt__(self, other: "RobustScore") -> bool:
        return self._key() < other._key()

    def __gt__(self, other: "RobustScore") -> bool:
        return self._key() > other._key()


def robust_score_placement(
    spec: EnsembleSpec,
    placement: EnsemblePlacement,
    model_factory: ModelFactory,
    policy: RecoveryPolicy,
    trials: int = 3,
    base_seed: int = 0,
    timing_noise: float = 0.0,
    cluster: Optional[Cluster] = None,
    dtl: Optional[DataTransportLayer] = None,
    name: str = "",
    seed_label: str = "",
) -> RobustScore:
    """Score one placement by executing it under injected failures.

    Runs one failure-free DES execution (the ideal reference), then
    ``trials`` injected executions whose fault schedules come from
    ``model_factory(derive_replica_seed(base_seed, t, seed_label))``
    — with the default empty label that is literally
    ``base_seed + t``; the robust objective is the mean F(P^{U,A,P})
    over those trials.

    Parameters
    ----------
    spec / placement:
        The ensemble and the candidate placement.
    model_factory:
        ``seed -> FailureModel`` building one independent fault draw
        per trial (see :func:`crash_straggler_factory`).
    policy:
        Recovery policy applied to every injected crash.
    trials:
        Number of injected DES runs to average over (>= 1).
    base_seed / timing_noise / cluster / dtl:
        Forwarded to the executor.
    name:
        Label for the returned score (defaults to the spec name).
    seed_label:
        Forwarded to :func:`~repro.util.rng.derive_replica_seed`; a
        non-empty label (e.g. the candidate name) decorrelates this
        placement's fault draws from other candidates'.

    Returns
    -------
    RobustScore
        Mean robust objective, inflation, and goodput over the trials.

    Raises
    ------
    ValidationError
        If ``trials`` is not a positive integer.
    """
    require_positive_int("trials", trials)

    def executor(model: Optional[FailureModel]) -> EnsembleExecutor:
        return EnsembleExecutor(
            spec=spec,
            placement=placement,
            cluster=cluster,
            dtl=dtl,
            seed=base_seed,
            timing_noise=timing_noise,
            failure_model=model,
            recovery=policy,
        )

    baseline = executor(None).run()
    ideal = baseline.objective(FINAL_STAGE_ORDER)
    baseline_makespan = baseline.ensemble_makespan

    objectives: List[float] = []
    inflations: List[float] = []
    goodputs: List[float] = []
    for t in range(trials):
        seed = derive_replica_seed(base_seed, t, seed_label)
        result = executor(model_factory(seed)).run()
        objectives.append(result.objective(FINAL_STAGE_ORDER))
        metrics = compute_resilience(result, baseline_makespan)
        inflations.append(metrics.inflation)
        goodputs.append(metrics.goodput)

    return RobustScore(
        name=name or spec.name,
        placement=placement,
        objective=float(np.mean(objectives)),
        ideal_objective=ideal,
        mean_inflation=float(np.mean(inflations)),
        mean_goodput=float(np.mean(goodputs)),
        num_nodes=placement.num_nodes,
        trials=trials,
    )


def surrogate_score_placement(
    spec: EnsembleSpec,
    placement: EnsemblePlacement,
    model: FailureModel,
    policy: RecoveryPolicy,
    cluster: Optional[Cluster] = None,
    dtl: Optional[DataTransportLayer] = None,
    name: str = "",
    cache: Optional["StageCache"] = None,
) -> RobustScore:
    """Score one placement with the analytic surrogate — no DES runs.

    The robust objective is the analytic F(P^{U,A,P}) minus the
    surrogate's expected excess inflation ``E[inflation] - 1`` — the
    same penalty form a unit-weight
    :class:`~repro.faults.analytic.RobustnessTerm` applies inside the
    planner. Inflation comes straight from the surrogate; goodput is
    the nominal step count over the expected makespan. Costs
    microseconds per candidate where a DES trial set costs
    milliseconds, which is the >= 10x speedup the tests assert.

    Parameters
    ----------
    spec / placement:
        The ensemble and the candidate placement.
    model:
        Failure model with an analytic hazard profile (scheduled
        models raise).
    policy:
        Recovery policy priced by the surrogate.
    cluster / dtl:
        Platform overrides, as for the analytic predictor.
    name:
        Label for the returned score (defaults to the spec name).
    cache:
        Optional :class:`~repro.search.cache.StageCache`; when its
        context matches, stage predictions are memoized across
        candidates (bit-identical floats either way).

    Returns
    -------
    RobustScore
        Surrogate-derived score with ``trials=0``.

    Raises
    ------
    ValidationError
        If the model has no analytic hazard profile.
    """
    if cluster is None:
        cluster = make_cori_like_cluster(placement.num_nodes)
    if cache is not None and cache.matches(cluster, dtl):
        stages = cache.predict(spec, placement)
    else:
        stages = predict_member_stages(
            spec, placement, cluster=cluster, dtl=dtl
        )
    ideal = score_placement(
        spec, placement, cluster=cluster, dtl=dtl, stages=stages
    )
    report = surrogate_resilience(
        spec, placement, model, policy, cluster=cluster, dtl=dtl,
        stages=stages,
    )
    total_steps = sum(m.n_steps for m in spec.members)
    return RobustScore(
        name=name or spec.name,
        placement=placement,
        objective=ideal.objective - (report.expected_inflation - 1.0),
        ideal_objective=ideal.objective,
        mean_inflation=report.expected_inflation,
        mean_goodput=total_steps / report.expected_makespan,
        num_nodes=placement.num_nodes,
        trials=0,
    )


def _surrogate_rank_worker(payload: Tuple) -> RobustScore:
    """Pool worker: surrogate-score one named candidate."""
    spec, name, placement, model, policy, cluster, dtl = payload
    return surrogate_score_placement(
        spec, placement, model, policy, cluster=cluster, dtl=dtl, name=name
    )


def _des_rank_worker(payload: Tuple) -> RobustScore:
    """Pool worker: DES-score one named candidate."""
    (
        spec, name, placement, model_factory, policy, trials, base_seed,
        timing_noise, seed_label, cluster, dtl,
    ) = payload
    return robust_score_placement(
        spec,
        placement,
        model_factory,
        policy,
        trials=trials,
        base_seed=base_seed,
        timing_noise=timing_noise,
        cluster=cluster,
        dtl=dtl,
        name=name,
        seed_label=seed_label,
    )


@dataclass(frozen=True)
class ParallelMapOutcome:
    """What :func:`_parallel_map` produced — or why it could not.

    ``results`` is None exactly when the pool was unusable, in which
    case ``fallback_reason`` says why (surfaced through the batched
    engine's counters and the service's ``/stats``).
    """

    results: Optional[List]
    fallback_reason: Optional[str] = None


def _parallel_map(worker, payloads: List[Tuple]) -> ParallelMapOutcome:
    """Order-preserving pool map with an explicit fallback reason.

    Both scoring paths are pure functions of their payloads, so pool
    results are identical to serial ones. Only *environmental*
    failures fall back to serial — pool setup errors (single core,
    sandboxed semaphores) and unpicklable payloads (lambda model
    factories). Exceptions raised by the worker itself propagate: a
    bug in a scoring path must not masquerade as "parallelism
    unavailable".
    """
    import multiprocessing
    import pickle

    if len(payloads) < 2:
        return ParallelMapOutcome(None, "fewer than 2 payloads")
    try:
        cpus = multiprocessing.cpu_count()
    except NotImplementedError:  # pragma: no cover - exotic platforms
        return ParallelMapOutcome(None, "cpu count unavailable")
    if cpus < 2:
        return ParallelMapOutcome(None, "single-core host")
    try:
        pool = multiprocessing.Pool(
            processes=min(cpus, len(payloads))
        )
    except (OSError, PermissionError, ValueError) as exc:
        return ParallelMapOutcome(None, f"pool setup failed: {exc}")
    try:
        with pool:
            return ParallelMapOutcome(pool.map(worker, payloads))
    except (pickle.PicklingError, AttributeError) as exc:
        return ParallelMapOutcome(None, f"payload does not pickle: {exc}")
    except TypeError as exc:
        # multiprocessing wraps some pickling failures in TypeError;
        # anything else is a real worker bug and must surface.
        if "pickle" in str(exc):
            return ParallelMapOutcome(
                None, f"payload does not pickle: {exc}"
            )
        raise


def rank_placements_robust(
    spec: EnsembleSpec,
    candidates: Dict[str, EnsemblePlacement],
    model_factory: ModelFactory,
    policy: RecoveryPolicy,
    trials: int = 3,
    base_seed: int = 0,
    timing_noise: float = 0.0,
    method: str = "des",
    cache: Optional["StageCache"] = None,
    parallel: bool = False,
    engine: str = "serial",
    crn: bool = True,
    context: Optional[PlanningContext] = None,
) -> List[RobustScore]:
    """Score every candidate placement; best (highest robust F) first.

    Parameters
    ----------
    spec / candidates:
        The ensemble and the named candidate placements to rank.
    model_factory:
        ``seed -> FailureModel``. The DES method draws ``trials``
        independent models; the surrogate method prices the single
        representative model ``model_factory(base_seed)`` (its hazard
        profile is seed-independent for the rate-based models).
    policy:
        Recovery policy applied to crashes.
    trials / base_seed / timing_noise:
        DES-method controls (ignored by the surrogate method except
        for ``base_seed``).
    method:
        ``"des"`` executes injected trials per candidate;
        ``"surrogate"`` prices each candidate in closed form —
        same ranking on the paper's C1/C2 candidates, >= 10x faster.
    cache:
        Optional :class:`~repro.search.cache.StageCache` for the
        surrogate method — stage predictions shared across candidates
        with matching local patterns (a default-context cache is built
        when omitted). Ignored by the DES method.
    parallel:
        Opt in to scoring candidates across a multiprocessing pool.
        Results are identical to serial (every candidate's seeds are
        fixed by its payload); falls back to serial when the pool is
        unavailable or inputs do not pickle (e.g. lambda factories),
        recording the reason on the batched engine's counters.
    engine:
        DES-method execution strategy. ``"serial"`` re-simulates every
        fault replica; ``"batched"`` delegates to
        :func:`repro.faults.batched.rank_placements_batched` — one
        fault-free DES per candidate plus delta replay of the fault
        schedules, bit-identical scores for exactly-replayable
        recovery policies at >= 10x the speed (``BENCH_robust.json``).
        Ignored by the surrogate method.
    crn:
        Use common random numbers: every candidate's replica ``t``
        draws the same fault schedule (seeds ``base_seed + t``), so
        candidate comparisons are paired. ``False`` decorrelates
        candidates by hashing their names into the replica seeds.
        The default matches the historical serial behaviour exactly.
    context:
        Optional :class:`~repro.scheduler.context.PlanningContext`.
        Its ``cache`` and ``parallel`` fields replace the legacy
        keywords (mixing both warns ``DeprecationWarning``; legacy
        wins), and its ``cluster``/``dtl`` — previously not reachable
        from this entry point at all — are threaded into every
        scoring call (DES, batched, and surrogate alike).

    Returns
    -------
    List[RobustScore]
        Candidates sorted best-first by robust objective.

    Raises
    ------
    ValidationError
        On an unknown ``method`` or ``engine``.
    """
    cluster: Optional[Cluster] = None
    dtl: Optional[DataTransportLayer] = None
    if context is not None:
        merged = _coerce_context(
            context,
            "rank_placements_robust",
            cache=cache,
            parallel=parallel,
        )
        cache = merged.cache
        parallel = merged.parallel
        cluster = merged.cluster
        dtl = merged.dtl
    if method not in RANK_METHODS:
        valid = ", ".join(repr(m) for m in RANK_METHODS)
        raise ValidationError(
            f"unknown ranking method {method!r}; valid methods: {valid}"
        )
    if engine not in RANK_ENGINES:
        valid = ", ".join(repr(e) for e in RANK_ENGINES)
        raise ValidationError(
            f"unknown ranking engine {engine!r}; valid engines: {valid}"
        )
    if method == "surrogate":
        model = model_factory(base_seed)
        if parallel:
            pooled = _parallel_map(
                _surrogate_rank_worker,
                [
                    (spec, name, placement, model, policy, cluster, dtl)
                    for name, placement in candidates.items()
                ],
            )
            if pooled.results is not None:
                return sorted(pooled.results, reverse=True)
            from repro.faults.batched import _note_fallback

            _note_fallback(pooled.fallback_reason)
        if cache is None:
            from repro.search.cache import StageCache

            cache = StageCache()
        scores = [
            surrogate_score_placement(
                spec, placement, model, policy, cluster=cluster, dtl=dtl,
                name=name, cache=cache,
            )
            for name, placement in candidates.items()
        ]
        return sorted(scores, reverse=True)
    if engine == "batched":
        from repro.faults.batched import rank_placements_batched

        return rank_placements_batched(
            spec,
            candidates,
            model_factory,
            policy,
            trials=trials,
            base_seed=base_seed,
            timing_noise=timing_noise,
            crn=crn,
            parallel=parallel,
            cluster=cluster,
            dtl=dtl,
        )
    if parallel:
        pooled = _parallel_map(
            _des_rank_worker,
            [
                (
                    spec, name, placement, model_factory, policy, trials,
                    base_seed, timing_noise, "" if crn else name,
                    cluster, dtl,
                )
                for name, placement in candidates.items()
            ],
        )
        if pooled.results is not None:
            return sorted(pooled.results, reverse=True)
        from repro.faults.batched import _note_fallback

        _note_fallback(pooled.fallback_reason)
    scores = [
        robust_score_placement(
            spec,
            placement,
            model_factory,
            policy,
            trials=trials,
            base_seed=base_seed,
            timing_noise=timing_noise,
            cluster=cluster,
            dtl=dtl,
            name=name,
            seed_label="" if crn else name,
        )
        for name, placement in candidates.items()
    ]
    return sorted(scores, reverse=True)
