"""Robust placement scoring: F(P) evaluated under a failure model.

The analytic scorer (:mod:`repro.scheduler.objectives`) ranks
placements by the ideal, failure-free F(P^{U,A,P}). This module ranks
them by *robust* F(P): the indicator objective measured from
discrete-event executions with fault injection enabled, averaged over
independent fault-schedule draws. A placement that looks optimal in
steady state can lose its edge once crashes and stragglers stretch its
stages — co-location, for instance, couples a member's fate to fewer
nodes but concentrates the blast radius of a straggling simulation.

Because robust scores come from full DES runs they cost milliseconds,
not microseconds — use them to re-rank a shortlist (e.g. the paper's
C1/C2 candidates or a policy's top choices), not to drive inner-loop
search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.dtl.base import DataTransportLayer
from repro.faults.models import FailureModel, FaultKind, RandomFailureModel
from repro.faults.recovery import RecoveryPolicy
from repro.monitoring.resilience import compute_resilience
from repro.platform.cluster import Cluster
from repro.runtime.executor import EnsembleExecutor
from repro.runtime.placement import EnsemblePlacement
from repro.runtime.spec import EnsembleSpec
from repro.scheduler.objectives import FINAL_STAGE_ORDER
from repro.util.validation import require_positive_int

#: builds a fresh failure model for one trial's seed.
ModelFactory = Callable[[int], FailureModel]


def crash_straggler_factory(
    rate: float,
    kinds: Tuple[FaultKind, ...] = (FaultKind.CRASH, FaultKind.STRAGGLER),
) -> ModelFactory:
    """The default model factory: crashes + stragglers at one rate."""
    return lambda seed: RandomFailureModel(rate=rate, kinds=kinds, seed=seed)


@dataclass(frozen=True)
class RobustScore:
    """Quality of one placement when failures are part of the contract.

    Ordering matches :class:`~repro.scheduler.objectives
    .PlacementScore`: robust objective first (higher better), then
    fewer nodes, then lower mean inflation.
    """

    name: str
    placement: EnsemblePlacement
    objective: float  # mean F(P^{U,A,P}) under failures
    ideal_objective: float  # failure-free DES F(P^{U,A,P})
    mean_inflation: float  # mean makespan inflation factor
    mean_goodput: float  # mean steps per virtual second
    num_nodes: int
    trials: int

    @property
    def degradation(self) -> float:
        """How much of the ideal objective failures eroded (>= 0)."""
        return self.ideal_objective - self.objective

    def _key(self) -> Tuple[float, int, float]:
        return (self.objective, -self.num_nodes, -self.mean_inflation)

    def __lt__(self, other: "RobustScore") -> bool:
        return self._key() < other._key()

    def __gt__(self, other: "RobustScore") -> bool:
        return self._key() > other._key()


def robust_score_placement(
    spec: EnsembleSpec,
    placement: EnsemblePlacement,
    model_factory: ModelFactory,
    policy: RecoveryPolicy,
    trials: int = 3,
    base_seed: int = 0,
    timing_noise: float = 0.0,
    cluster: Optional[Cluster] = None,
    dtl: Optional[DataTransportLayer] = None,
    name: str = "",
) -> RobustScore:
    """Score one placement by executing it under injected failures.

    Runs one failure-free DES execution (the ideal reference), then
    ``trials`` injected executions whose fault schedules come from
    ``model_factory(base_seed + t)``; the robust objective is the mean
    F(P^{U,A,P}) over those trials.
    """
    require_positive_int("trials", trials)

    def executor(model: Optional[FailureModel]) -> EnsembleExecutor:
        return EnsembleExecutor(
            spec=spec,
            placement=placement,
            cluster=cluster,
            dtl=dtl,
            seed=base_seed,
            timing_noise=timing_noise,
            failure_model=model,
            recovery=policy,
        )

    baseline = executor(None).run()
    ideal = baseline.objective(FINAL_STAGE_ORDER)
    baseline_makespan = baseline.ensemble_makespan

    objectives: List[float] = []
    inflations: List[float] = []
    goodputs: List[float] = []
    for t in range(trials):
        result = executor(model_factory(base_seed + t)).run()
        objectives.append(result.objective(FINAL_STAGE_ORDER))
        metrics = compute_resilience(result, baseline_makespan)
        inflations.append(metrics.inflation)
        goodputs.append(metrics.goodput)

    return RobustScore(
        name=name or spec.name,
        placement=placement,
        objective=float(np.mean(objectives)),
        ideal_objective=ideal,
        mean_inflation=float(np.mean(inflations)),
        mean_goodput=float(np.mean(goodputs)),
        num_nodes=placement.num_nodes,
        trials=trials,
    )


def rank_placements_robust(
    spec: EnsembleSpec,
    candidates: Dict[str, EnsemblePlacement],
    model_factory: ModelFactory,
    policy: RecoveryPolicy,
    trials: int = 3,
    base_seed: int = 0,
    timing_noise: float = 0.0,
) -> List[RobustScore]:
    """Score every candidate placement; best (highest robust F) first."""
    scores = [
        robust_score_placement(
            spec,
            placement,
            model_factory,
            policy,
            trials=trials,
            base_seed=base_seed,
            timing_noise=timing_noise,
            name=name,
        )
        for name, placement in candidates.items()
    ]
    return sorted(scores, reverse=True)
