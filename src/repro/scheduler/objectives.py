"""Scoring candidate placements.

A placement's quality is summarized by a :class:`PlacementScore`: the
paper's objective F over the final-stage indicators (primary), plus the
predicted ensemble makespan and node count as diagnostics. Scores are
computed through :func:`repro.runtime.analytic.predict_member_stages`,
so evaluating a candidate costs microseconds — cheap enough for search.

When a :class:`~repro.faults.analytic.RobustnessTerm` is supplied, the
analytic robustness surrogate prices the placement's expected failure
cost and the score's search key becomes
``utility = F(P) - weight * (E[inflation] - 1)`` — still closed-form,
so robustness rides inside the search loop instead of re-ranking a
shortlist afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.search.cache import StageCache

from repro.core.indicators import (
    FINAL_STAGE_ORDER,
    IndicatorStage,
    MemberMeasurement,
    apply_stages,
)
from repro.scheduler.context import PlanningContext, _coerce_context
from repro.core.insitu import member_makespan
from repro.core.objective import objective_function
from repro.core.stages import MemberStages
from repro.dtl.base import DataTransportLayer
from repro.faults.analytic import RobustnessTerm
from repro.platform.cluster import Cluster
from repro.platform.specs import make_cori_like_cluster
from repro.runtime.analytic import predict_member_stages
from repro.runtime.placement import EnsemblePlacement
from repro.runtime.spec import EnsembleSpec

# FINAL_STAGE_ORDER lives in repro.core.indicators (so the search
# engine's cache can use it without importing the scheduler); it stays
# re-exported here for existing callers.
__all__ = [
    "FINAL_STAGE_ORDER",
    "PlacementScore",
    "score_placement",
]


@dataclass(frozen=True, eq=False)
class PlacementScore:
    """Quality summary of one candidate placement.

    Ordering: scores compare by :attr:`utility` (the objective minus
    the robustness penalty; higher better), then by fewer nodes, then
    by lower makespan — so ``max(scores)`` is the scheduler's
    preference. Without a robustness term the penalty is 0 and the
    ordering is the classic failure-free one.

    Equality agrees with the ordering (both compare :meth:`_key`), so
    the comparison set is totally ordered: ``a <= b and b <= a``
    implies ``a == b``, as :func:`functools.total_ordering` would
    require. Two placements that tie on (utility, nodes, makespan)
    compare equal even if the placements themselves differ.
    """

    placement: EnsemblePlacement
    objective: float  # F(P^{U,A,P}), higher is better
    ensemble_makespan: float
    num_nodes: int
    member_indicators: Tuple[float, ...]
    #: weight * (E[inflation] - 1) from the robustness surrogate
    #: (0 when scored without a robustness term).
    robust_penalty: float = 0.0

    @property
    def utility(self) -> float:
        """The search target: objective minus the robustness penalty."""
        return self.objective - self.robust_penalty

    def _key(self) -> Tuple[float, int, float]:
        return (self.utility, -self.num_nodes, -self.ensemble_makespan)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PlacementScore):
            return NotImplemented
        return self._key() == other._key()

    def __ne__(self, other: object) -> bool:
        if not isinstance(other, PlacementScore):
            return NotImplemented
        return self._key() != other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __lt__(self, other: "PlacementScore") -> bool:
        return self._key() < other._key()

    def __le__(self, other: "PlacementScore") -> bool:
        return self._key() <= other._key()

    def __gt__(self, other: "PlacementScore") -> bool:
        return self._key() > other._key()

    def __ge__(self, other: "PlacementScore") -> bool:
        return self._key() >= other._key()


def score_placement(
    spec: EnsembleSpec,
    placement: EnsemblePlacement,
    cluster: Optional[Cluster] = None,
    dtl: Optional[DataTransportLayer] = None,
    robustness: Optional[RobustnessTerm] = None,
    stages: Optional[Dict[str, MemberStages]] = None,
    cache: Optional["StageCache"] = None,
    context: Optional[PlanningContext] = None,
) -> PlacementScore:
    """Score one placement via the analytic predictor.

    The scoring context can be passed either through the legacy
    ``cluster``/``dtl``/``robustness``/``cache`` keywords or bundled
    in a single :class:`~repro.scheduler.context.PlanningContext` as
    ``context=`` — the two spellings are float-identical (asserted by
    the differential oracle's exact ``context`` tier). Mixing both
    warns ``DeprecationWarning`` and lets the legacy values win.

    With a ``robustness`` term the score additionally carries
    ``robust_penalty = weight * (E[inflation] - 1)`` from the analytic
    surrogate, and the score's ordering key becomes
    ``objective - robust_penalty`` — both terms are closed-form, so
    the combined evaluation still costs microseconds. Callers that
    already hold the :func:`~repro.runtime.analytic
    .predict_member_stages` result for this exact (spec, placement,
    cluster, dtl) can pass it as ``stages`` to skip re-predicting.

    A :class:`~repro.search.cache.StageCache` passed as ``cache``
    memoizes stage prediction and indicator terms across calls —
    members whose local co-location pattern repeats between candidates
    are never re-predicted. The cached path produces bit-identical
    scores; a cache whose platform context does not match
    ``(cluster, dtl)`` is ignored.
    """
    if context is not None:
        merged = _coerce_context(
            context,
            "score_placement",
            cluster=cluster,
            dtl=dtl,
            robustness=robustness,
            cache=cache,
        )
        cluster = merged.cluster
        dtl = merged.dtl
        robustness = merged.robustness
        cache = merged.cache
    if cache is not None and stages is None and cache.matches(cluster, dtl):
        evaluation = cache.member_terms(spec, placement)
        penalty = 0.0
        if robustness is not None:
            if cluster is None:
                cluster = make_cori_like_cluster(placement.num_nodes)
            penalty = robustness.penalty(
                spec,
                placement,
                cluster=cluster,
                dtl=dtl,
                stages=evaluation.stages_by_name(spec),
            )
        return PlacementScore(
            placement=placement,
            objective=objective_function(evaluation.indicators),
            ensemble_makespan=evaluation.worst_makespan,
            num_nodes=placement.num_nodes,
            member_indicators=tuple(evaluation.indicators),
            robust_penalty=penalty,
        )
    if cluster is None:
        cluster = make_cori_like_cluster(placement.num_nodes)
    if stages is None:
        stages = predict_member_stages(
            spec, placement, cluster=cluster, dtl=dtl
        )

    indicators = []
    worst_makespan = 0.0
    for member_spec, mp in zip(spec.members, placement.members):
        member_stages = stages[member_spec.name]
        measurement = MemberMeasurement(
            name=member_spec.name,
            stages=member_stages,
            total_cores=member_spec.total_cores,
            placement=mp.to_placement_sets(),
        )
        indicators.append(
            apply_stages(measurement, FINAL_STAGE_ORDER, placement.num_nodes)
        )
        worst_makespan = max(
            worst_makespan,
            member_makespan(member_stages, member_spec.n_steps),
        )
    penalty = 0.0
    if robustness is not None:
        # reuse this call's stage prediction — the surrogate needs the
        # same (spec, placement, cluster, dtl) stages
        penalty = robustness.penalty(
            spec, placement, cluster=cluster, dtl=dtl, stages=stages
        )
    return PlacementScore(
        placement=placement,
        objective=objective_function(indicators),
        ensemble_makespan=worst_makespan,
        num_nodes=placement.num_nodes,
        member_indicators=tuple(indicators),
        robust_penalty=penalty,
    )
