"""Scoring candidate placements.

A placement's quality is summarized by a :class:`PlacementScore`: the
paper's objective F over the final-stage indicators (primary), plus the
predicted ensemble makespan and node count as diagnostics. Scores are
computed through :func:`repro.runtime.analytic.predict_member_stages`,
so evaluating a candidate costs microseconds — cheap enough for search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.indicators import (
    IndicatorStage,
    MemberMeasurement,
    apply_stages,
)
from repro.core.insitu import member_makespan
from repro.core.objective import objective_function
from repro.dtl.base import DataTransportLayer
from repro.platform.cluster import Cluster
from repro.platform.specs import make_cori_like_cluster
from repro.runtime.analytic import predict_member_stages
from repro.runtime.placement import EnsemblePlacement
from repro.runtime.spec import EnsembleSpec

FINAL_STAGE_ORDER: Tuple[IndicatorStage, ...] = (
    IndicatorStage.USAGE,
    IndicatorStage.ALLOCATION,
    IndicatorStage.PROVISIONING,
)


@dataclass(frozen=True)
class PlacementScore:
    """Quality summary of one candidate placement.

    Ordering: scores compare by ``objective`` (higher better), then by
    fewer nodes, then by lower makespan — so ``max(scores)`` is the
    scheduler's preference.
    """

    placement: EnsemblePlacement
    objective: float  # F(P^{U,A,P}), higher is better
    ensemble_makespan: float
    num_nodes: int
    member_indicators: Tuple[float, ...]

    def _key(self) -> Tuple[float, int, float]:
        return (self.objective, -self.num_nodes, -self.ensemble_makespan)

    def __lt__(self, other: "PlacementScore") -> bool:
        return self._key() < other._key()

    def __le__(self, other: "PlacementScore") -> bool:
        return self._key() <= other._key()

    def __gt__(self, other: "PlacementScore") -> bool:
        return self._key() > other._key()

    def __ge__(self, other: "PlacementScore") -> bool:
        return self._key() >= other._key()


def score_placement(
    spec: EnsembleSpec,
    placement: EnsemblePlacement,
    cluster: Optional[Cluster] = None,
    dtl: Optional[DataTransportLayer] = None,
) -> PlacementScore:
    """Score one placement via the analytic predictor."""
    if cluster is None:
        cluster = make_cori_like_cluster(placement.num_nodes)
    stages = predict_member_stages(spec, placement, cluster=cluster, dtl=dtl)

    indicators = []
    worst_makespan = 0.0
    for member_spec, mp in zip(spec.members, placement.members):
        member_stages = stages[member_spec.name]
        measurement = MemberMeasurement(
            name=member_spec.name,
            stages=member_stages,
            total_cores=member_spec.total_cores,
            placement=mp.to_placement_sets(),
        )
        indicators.append(
            apply_stages(measurement, FINAL_STAGE_ORDER, placement.num_nodes)
        )
        worst_makespan = max(
            worst_makespan,
            member_makespan(member_stages, member_spec.n_steps),
        )
    return PlacementScore(
        placement=placement,
        objective=objective_function(indicators),
        ensemble_makespan=worst_makespan,
        num_nodes=placement.num_nodes,
        member_indicators=tuple(indicators),
    )
