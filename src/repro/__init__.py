"""repro: reproduction of *Assessing Resource Provisioning and
Allocation of Ensembles of In Situ Workflows* (Do, Pottier, Ferreira da
Silva, Caíno-Lores, Taufer, Deelman — ICPP Workshops 2021).

The library has three layers:

1. **Substrates** — everything the paper's evaluation ran on, rebuilt
   as simulators or miniature real implementations:
   :mod:`repro.des` (discrete-event engine), :mod:`repro.platform`
   (Cori-like nodes, caches, dragonfly network, contention model),
   :mod:`repro.dtl` (DIMES-like in-memory staging, burst buffer,
   parallel FS, chunk serialization), :mod:`repro.components`
   (MD-simulation and analysis cost models plus a real mini-MD engine
   and real eigenvalue analysis kernels), :mod:`repro.runtime`
   (synchronous coupling protocol, executor), and
   :mod:`repro.monitoring` (stage traces, synthetic counters, Table-1
   metrics).

2. **The paper's contribution** — :mod:`repro.core`: the in situ
   execution model (Eqs. 1-2), computational efficiency (Eq. 3), the
   multi-stage performance indicators (Eqs. 5-8), the ensemble
   objective (Eq. 9), and the §3.4 provisioning heuristic.

3. **Evaluation** — :mod:`repro.configs` (Tables 2 and 4) and
   :mod:`repro.experiments` (one module per figure plus headline and
   ablations).

Quick start::

    from repro import run_configuration, table2_config, IndicatorStage

    result = run_configuration(table2_config("C1.5"))
    print(result.ensemble_makespan)
    print(result.objective([IndicatorStage.USAGE,
                            IndicatorStage.ALLOCATION,
                            IndicatorStage.PROVISIONING]))
"""

from repro.configs.base import Configuration, build_spec
from repro.configs.table2 import get_config as table2_config
from repro.configs.table4 import get_config as table4_config
from repro.core import (
    AnalysisStages,
    CouplingRegime,
    IndicatorStage,
    MemberMeasurement,
    MemberStages,
    PlacementSets,
    SimulationStages,
    apply_stages,
    choose_analysis_cores,
    computational_efficiency,
    member_makespan,
    non_overlapped_segment,
    objective_function,
    placement_indicator,
    rank_by_objective,
)
from repro.experiments.base import run_configuration, run_configuration_trials
from repro.runtime import (
    EnsemblePlacement,
    EnsembleSpec,
    ExecutionResult,
    MemberPlacement,
    MemberSpec,
    predict_member_stages,
    run_ensemble,
)
from repro.runtime.spec import default_member

__version__ = "1.0.0"

__all__ = [
    "AnalysisStages",
    "Configuration",
    "CouplingRegime",
    "EnsemblePlacement",
    "EnsembleSpec",
    "ExecutionResult",
    "IndicatorStage",
    "MemberMeasurement",
    "MemberPlacement",
    "MemberSpec",
    "MemberStages",
    "PlacementSets",
    "SimulationStages",
    "__version__",
    "apply_stages",
    "build_spec",
    "choose_analysis_cores",
    "computational_efficiency",
    "default_member",
    "member_makespan",
    "non_overlapped_segment",
    "objective_function",
    "placement_indicator",
    "predict_member_stages",
    "rank_by_objective",
    "run_configuration",
    "run_configuration_trials",
    "run_ensemble",
    "table2_config",
    "table4_config",
]
