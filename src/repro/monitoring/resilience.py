"""Resilience metrics: what failures cost an ensemble execution.

Distills an injected run (its :class:`~repro.monitoring.tracer
.StageTracer` plus :class:`~repro.faults.injector.FaultLog`) against a
failure-free baseline into a :class:`ResilienceMetrics` bundle:

- **goodput** — in situ steps completed per virtual second (the
  ensemble's useful forward progress rate);
- **makespan inflation** — faulted / baseline ensemble makespan;
- **effective efficiency** — the fraction of occupied component-time
  spent on *useful* work: busy stage time minus the work the fault log
  says was lost or redone, normalized by makespan x component count
  (the under-failures analogue of the paper's Eq. 3 efficiency E);
- **recovery-time distribution** — per-fault time from detection to
  resumed useful work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence, Tuple

import numpy as np

from repro.monitoring.tracer import Stage, StageTracer
from repro.util.errors import ValidationError
from repro.util.validation import require_positive

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.injector import FaultLog
    from repro.runtime.results import ExecutionResult

#: stages that constitute useful work (idle stages are overhead).
USEFUL_STAGES = (
    Stage.SIM_COMPUTE,
    Stage.SIM_WRITE,
    Stage.ANA_READ,
    Stage.ANA_COMPUTE,
)


@dataclass(frozen=True)
class ResilienceMetrics:
    """How one (possibly injected) run fared against its baseline."""

    makespan: float
    baseline_makespan: float
    steps_completed: int
    goodput: float  # completed steps per virtual second
    effective_efficiency: float  # useful busy fraction in [0, 1]
    num_faults: int
    num_crashes: int
    lost_work: float  # virtual seconds lost or redone
    recovery_times: Tuple[float, ...]
    #: components a degrade policy retired during the run.
    dropped_components: Tuple[str, ...] = ()

    @property
    def inflation(self) -> float:
        """Makespan inflation factor (1.0 = no slowdown)."""
        return self.makespan / self.baseline_makespan

    @property
    def mean_recovery_time(self) -> float:
        if not self.recovery_times:
            return 0.0
        return float(np.mean(self.recovery_times))

    @property
    def max_recovery_time(self) -> float:
        if not self.recovery_times:
            return 0.0
        return float(max(self.recovery_times))

    def recovery_percentile(self, q: float) -> float:
        """The ``q``-th percentile of the recovery-time distribution."""
        if not 0 <= q <= 100:
            raise ValidationError(f"percentile must lie in [0, 100], got {q}")
        if not self.recovery_times:
            return 0.0
        return float(np.percentile(self.recovery_times, q))

    def to_text(self) -> str:
        """Render as an aligned block (what the CLI prints)."""
        lines = [
            f"makespan             {self.makespan:10.2f} s  "
            f"(baseline {self.baseline_makespan:.2f} s, "
            f"inflation x{self.inflation:.3f})",
            f"goodput              {self.goodput:10.4f} steps/s  "
            f"({self.steps_completed} steps completed)",
            f"effective efficiency {self.effective_efficiency:10.4f}",
            f"faults               {self.num_faults:10d}  "
            f"({self.num_crashes} crashes, {self.lost_work:.2f} s lost)",
        ]
        if self.dropped_components:
            lines.append(
                f"dropped components   "
                f"{', '.join(self.dropped_components)}"
            )
        if self.recovery_times:
            lines.append(
                f"recovery time        {self.mean_recovery_time:10.2f} s mean, "
                f"{self.recovery_percentile(50):.2f} s median, "
                f"{self.max_recovery_time:.2f} s max"
            )
        return "\n".join(lines)


def busy_time(tracer: StageTracer) -> float:
    """Total component-seconds spent in non-idle stages."""
    return sum(
        r.duration for r in tracer.records if r.stage in USEFUL_STAGES
    )


def steps_completed(tracer: StageTracer) -> int:
    """In situ steps completed across all simulations in the trace."""
    return sum(
        1 for r in tracer.records if r.stage is Stage.SIM_COMPUTE
    )


def compute_resilience(
    result: "ExecutionResult",
    baseline_makespan: float,
    fault_log: Optional["FaultLog"] = None,
) -> ResilienceMetrics:
    """Resilience metrics of ``result`` against a failure-free baseline.

    ``fault_log`` defaults to ``result.fault_log``; pass it explicitly
    when analyzing a trace whose log was captured separately.
    """
    require_positive("baseline_makespan", baseline_makespan)
    log = fault_log if fault_log is not None else result.fault_log
    tracer = result.tracer
    makespan = result.ensemble_makespan
    if makespan <= 0:
        raise ValidationError("execution result has a non-positive makespan")

    busy = busy_time(tracer)
    lost = log.lost_work_total if log is not None else 0.0
    useful = max(busy - lost, 0.0)
    n_components = len(tracer.components)
    steps = steps_completed(tracer)

    from repro.faults.models import FaultKind  # local: avoid hard dep

    crashes = len(log.of_kind(FaultKind.CRASH)) if log is not None else 0
    return ResilienceMetrics(
        makespan=makespan,
        baseline_makespan=baseline_makespan,
        steps_completed=steps,
        goodput=steps / makespan,
        effective_efficiency=useful / (makespan * n_components),
        num_faults=len(log) if log is not None else 0,
        num_crashes=crashes,
        lost_work=lost,
        recovery_times=tuple(log.recovery_times) if log is not None else (),
        dropped_components=tuple(log.dropped_components)
        if log is not None
        else (),
    )


def surrogate_agreement(
    predicted_inflation: float, observed_inflations: Sequence[float]
) -> float:
    """Relative error of a surrogate prediction against DES trials.

    ``|predicted - mean(observed)| / mean(observed)`` — the quantity
    the surrogate-validation experiment
    (:func:`repro.experiments.resilience.run_surrogate_validation`)
    tabulates and the docs' validation table reports.

    Examples
    --------
    >>> round(surrogate_agreement(1.10, [1.0, 1.1, 1.2]), 3)
    0.0
    """
    if not observed_inflations:
        raise ValidationError("observed_inflations must be non-empty")
    mean_obs = float(np.mean(list(observed_inflations)))
    if mean_obs <= 0:
        raise ValidationError(
            f"observed inflation mean must be > 0, got {mean_obs!r}"
        )
    return abs(predicted_inflation - mean_obs) / mean_obs
