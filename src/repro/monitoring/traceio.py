"""Trace serialization: export/import stage traces as JSON.

Two purposes:

1. **Persistence** — executor traces can be written to disk and
   reloaded later for offline analysis.
2. **External data** — the indicator pipeline (:mod:`repro.core`) only
   needs steady-state stage times; :func:`member_stages_from_trace`
   turns any trace in this format — including one recorded on a real
   system by TAU-style instrumentation — into
   :class:`~repro.core.stages.MemberStages`, making the paper's
   indicators applicable beyond the simulator.

Format: a JSON object ``{"version": 1, "records": [...]}`` where each
record is ``{"component", "stage", "step", "start", "end"}`` with
``stage`` being one of the §3.1 stage codes (S, I_S, W, R, A, I_A).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence, Union

from repro.core.stages import (
    AnalysisStages,
    MemberStages,
    SimulationStages,
    estimate_steady_state,
)
from repro.monitoring.tracer import Stage, StageTracer
from repro.util.errors import ValidationError

FORMAT_VERSION = 1

_STAGE_BY_CODE = {stage.value: stage for stage in Stage}


def tracer_to_dict(tracer: StageTracer) -> dict:
    """Serialize a tracer to a JSON-ready dict."""
    return {
        "version": FORMAT_VERSION,
        "records": [
            {
                "component": r.component,
                "stage": r.stage.value,
                "step": r.step,
                "start": r.start,
                "end": r.end,
            }
            for r in tracer.records
        ],
    }


def tracer_from_dict(payload: dict) -> StageTracer:
    """Rebuild a tracer from :func:`tracer_to_dict` output."""
    if not isinstance(payload, dict) or "records" not in payload:
        raise ValidationError("trace payload must be a dict with 'records'")
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise ValidationError(
            f"unsupported trace format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    tracer = StageTracer()
    for i, rec in enumerate(payload["records"]):
        try:
            stage = _STAGE_BY_CODE[rec["stage"]]
            tracer.record(
                rec["component"],
                stage,
                int(rec["step"]),
                float(rec["start"]),
                float(rec["end"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"malformed trace record #{i}: {exc}") from exc
    return tracer


def save_trace(tracer: StageTracer, path: Union[str, Path]) -> None:
    """Write a tracer to a JSON file."""
    Path(path).write_text(json.dumps(tracer_to_dict(tracer)))


def load_trace(path: Union[str, Path]) -> StageTracer:
    """Read a tracer from a JSON file."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ValidationError(f"trace file is not valid JSON: {exc}") from exc
    return tracer_from_dict(payload)


def member_stages_from_trace(
    tracer: StageTracer,
    simulation: str,
    analyses: Sequence[str],
    warmup_fraction: float = 0.2,
) -> MemberStages:
    """Estimate a member's steady-state stages from any trace.

    This is the bridge from raw measurements to the paper's math: feed
    the result to :func:`repro.core.efficiency.computational_efficiency`
    and the indicator pipeline.
    """
    if not analyses:
        raise ValidationError("at least one analysis component required")
    sim = SimulationStages(
        compute=estimate_steady_state(
            tracer.durations(simulation, Stage.SIM_COMPUTE), warmup_fraction
        ),
        write=estimate_steady_state(
            tracer.durations(simulation, Stage.SIM_WRITE), warmup_fraction
        ),
    )
    ana_stages = tuple(
        AnalysisStages(
            read=estimate_steady_state(
                tracer.durations(name, Stage.ANA_READ), warmup_fraction
            ),
            analyze=estimate_steady_state(
                tracer.durations(name, Stage.ANA_COMPUTE), warmup_fraction
            ),
        )
        for name in analyses
    )
    return MemberStages(simulation=sim, analyses=ana_stages)
