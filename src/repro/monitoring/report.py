"""Human-readable reports over execution results.

Two renderers:

- :func:`gantt` — an ASCII timeline of every component's stages over a
  window of the run, the visual equivalent of the paper's Figure 6
  (compute / IO / idle per in situ step);
- :func:`summary_report` — the full Table-1 metric set plus per-member
  efficiency and indicators, as one formatted block.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.indicators import IndicatorStage
from repro.monitoring.tracer import Stage, StageRecord, StageTracer
from repro.runtime.results import ExecutionResult
from repro.util.errors import ValidationError
from repro.util.units import format_time
from repro.util.validation import require_positive_int

#: one glyph per stage kind, matching the paper's S/W/R/A/I notation.
STAGE_GLYPHS: Dict[Stage, str] = {
    Stage.SIM_COMPUTE: "S",
    Stage.SIM_IDLE: ".",
    Stage.SIM_WRITE: "W",
    Stage.ANA_READ: "R",
    Stage.ANA_COMPUTE: "A",
    Stage.ANA_IDLE: ".",
}


def gantt(
    tracer: StageTracer,
    components: Optional[Sequence[str]] = None,
    width: int = 80,
    until: Optional[float] = None,
) -> str:
    """Render an ASCII Gantt chart of the traced stages.

    Each row is a component; each column a time bucket labeled with the
    glyph of the stage occupying most of that bucket (``.`` = idle,
    space = not yet started / finished).
    """
    require_positive_int("width", width)
    names = list(components) if components is not None else tracer.components
    if not names:
        raise ValidationError("no components to render")
    spans = [tracer.component_span(name) for name in names]
    t_end = until if until is not None else max(end for _, end in spans)
    t_start = 0.0
    if t_end <= t_start:
        raise ValidationError("empty time window")
    bucket = (t_end - t_start) / width

    label_w = max(len(n) for n in names) + 1
    lines = [
        f"{'':{label_w}}0{' ' * (width - len(format_time(t_end)) - 1)}"
        f"{format_time(t_end)}"
    ]
    for name in names:
        records = tracer.of_component(name)
        row = []
        for i in range(width):
            lo = t_start + i * bucket
            hi = lo + bucket
            best: Optional[StageRecord] = None
            best_overlap = 0.0
            for rec in records:
                overlap = min(rec.end, hi) - max(rec.start, lo)
                if overlap > best_overlap:
                    best_overlap = overlap
                    best = rec
            row.append(STAGE_GLYPHS[best.stage] if best else " ")
        lines.append(f"{name:{label_w}}{''.join(row)}")
    lines.append(
        f"{'':{label_w}}S=sim compute  W=write  R=read  A=analyze  .=idle"
    )
    return "\n".join(lines)


def summary_report(
    result: ExecutionResult,
    indicator_order: Sequence[IndicatorStage] = (
        IndicatorStage.USAGE,
        IndicatorStage.ALLOCATION,
        IndicatorStage.PROVISIONING,
    ),
) -> str:
    """Format an execution result as a full text report."""
    lines: List[str] = [
        f"=== {result.ensemble_name}: {len(result.members)} members on "
        f"{result.total_nodes} nodes ===",
        f"ensemble makespan: {format_time(result.ensemble_makespan)}",
        "",
        "member                makespan        E      P(final)",
    ]
    indicators = result.indicator_values(indicator_order)
    for member in result.members:
        lines.append(
            f"  {member.name:18s} {format_time(member.makespan):>10}  "
            f"{member.efficiency:6.3f}  {indicators[member.name]:.6f}"
        )
    label = ",".join(s.value for s in indicator_order)
    lines.append(f"F(P^{{{label}}}) = {result.objective(indicator_order):.6f}")
    lines.append("")
    lines.append(
        "component             exec time   LLC miss   mem-int     IPC"
    )
    for name, cm in result.component_metrics.items():
        lines.append(
            f"  {name:18s} {format_time(cm.execution_time):>10}  "
            f"{cm.llc_miss_ratio:9.3f}  {cm.memory_intensity:.2e}  "
            f"{cm.ipc:6.3f}"
        )
    return "\n".join(lines)
