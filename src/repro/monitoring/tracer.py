"""Stage-level execution tracing.

The executor records one :class:`StageRecord` per fine-grained stage
per in situ step — the raw material for steady-state estimation
(:func:`repro.core.stages.estimate_steady_state`), for the Table-1
metrics, and for the protocol-ordering assertions in the test suite.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.util.errors import ValidationError


class Stage(enum.Enum):
    """The paper's six fine-grained stages (§3.1)."""

    SIM_COMPUTE = "S"
    SIM_IDLE = "I_S"
    SIM_WRITE = "W"
    ANA_READ = "R"
    ANA_COMPUTE = "A"
    ANA_IDLE = "I_A"


#: stages belonging to the simulation side, in intra-step order.
SIMULATION_STAGES: Tuple[Stage, ...] = (
    Stage.SIM_COMPUTE,
    Stage.SIM_IDLE,
    Stage.SIM_WRITE,
)
#: stages belonging to the analysis side, in intra-step order.
ANALYSIS_STAGES: Tuple[Stage, ...] = (
    Stage.ANA_READ,
    Stage.ANA_COMPUTE,
    Stage.ANA_IDLE,
)


@dataclass(frozen=True)
class StageRecord:
    """One stage execution: who, what, when."""

    component: str
    stage: Stage
    step: int
    start: float
    end: float

    def __post_init__(self) -> None:
        if not self.component:
            raise ValidationError("component must be non-empty")
        if self.step < 0:
            raise ValidationError(f"step must be >= 0, got {self.step}")
        if self.end < self.start:
            raise ValidationError(
                f"stage ends ({self.end}) before it starts ({self.start})"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start


class StageTracer:
    """Collects stage records during a run and serves queries over them."""

    def __init__(self) -> None:
        self._records: List[StageRecord] = []
        self._by_component: Dict[str, List[StageRecord]] = {}

    def record(
        self, component: str, stage: Stage, step: int, start: float, end: float
    ) -> StageRecord:
        """Append one stage record."""
        rec = StageRecord(component, stage, step, start, end)
        self._records.append(rec)
        self._by_component.setdefault(component, []).append(rec)
        return rec

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> List[StageRecord]:
        """All records in insertion order."""
        return list(self._records)

    @property
    def components(self) -> List[str]:
        return list(self._by_component)

    def of_component(self, component: str) -> List[StageRecord]:
        """All records of one component (insertion order)."""
        if component not in self._by_component:
            raise ValidationError(f"no records for component {component!r}")
        return list(self._by_component[component])

    def durations(self, component: str, stage: Stage) -> List[float]:
        """Per-step durations of one component's stage, ordered by step."""
        recs = [r for r in self.of_component(component) if r.stage == stage]
        recs.sort(key=lambda r: r.step)
        return [r.duration for r in recs]

    def stage_end(self, component: str, stage: Stage, step: int) -> Optional[float]:
        """End time of a specific stage instance (None if absent)."""
        for r in self._by_component.get(component, ()):
            if r.stage == stage and r.step == step:
                return r.end
        return None

    def component_span(self, component: str) -> Tuple[float, float]:
        """(first start, last end) over all of a component's records."""
        recs = self.of_component(component)
        return min(r.start for r in recs), max(r.end for r in recs)

    def num_steps(self, component: str) -> int:
        """Number of distinct steps a component recorded."""
        return len({r.step for r in self.of_component(component)})
