"""Synthetic hardware counters.

The paper reads LLC misses, LLC references, instructions, and cycles
from TAU/PAPI. Here the counters are synthesized from first principles
so they are *consistent with the timing model*: the same contention
assessment that dilates a component's compute stages also sets its
miss ratio and CPI, so Table-1 metrics and makespans move together the
way they do on real hardware.

Derivations per in situ step (compute stages only — I/O and idle
stages retire negligible instructions by comparison):

- ``instructions = solo_compute_time * cores * freq / solo_cpi``
  (what the kernel retires per step, a placement-invariant quantity);
- ``cycles = instructions * cpi_assessed`` (per core);
- ``llc_references = instructions * llc_refs_per_instr``;
- ``llc_misses = llc_references * miss_ratio_assessed``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.components.base import ComponentModel
from repro.platform.contention import ContentionAssessment
from repro.util.errors import ValidationError
from repro.util.rng import RandomSource
from repro.util.validation import require_non_negative, require_positive_int


@dataclass(frozen=True)
class HardwareCounters:
    """Aggregate counters over a whole run (all in situ steps)."""

    instructions: float
    cycles: float
    llc_references: float
    llc_misses: float

    def __post_init__(self) -> None:
        require_non_negative("instructions", self.instructions)
        require_non_negative("cycles", self.cycles)
        require_non_negative("llc_references", self.llc_references)
        require_non_negative("llc_misses", self.llc_misses)
        if self.llc_misses > self.llc_references:
            raise ValidationError(
                "llc_misses cannot exceed llc_references "
                f"({self.llc_misses} > {self.llc_references})"
            )

    @property
    def llc_miss_ratio(self) -> float:
        """Table 1: LLC misses / LLC references."""
        if self.llc_references == 0:
            return 0.0
        return self.llc_misses / self.llc_references

    @property
    def memory_intensity(self) -> float:
        """Table 1: LLC misses / instructions."""
        if self.instructions == 0:
            return 0.0
        return self.llc_misses / self.instructions

    @property
    def ipc(self) -> float:
        """Table 1: instructions / cycles."""
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles


def synthesize_counters(
    model: ComponentModel,
    assessment: ContentionAssessment,
    core_freq_hz: float,
    n_steps: int,
    rng: Optional[RandomSource] = None,
    noise: float = 0.0,
) -> HardwareCounters:
    """Counters for a component over ``n_steps`` in situ steps.

    ``noise`` adds multiplicative jitter (relative half-width) to the
    per-run totals, emulating run-to-run counter variation; 0 is exact.
    """
    require_positive_int("n_steps", n_steps)
    require_non_negative("noise", noise)
    profile = model.profile
    instr_per_step = (
        model.solo_compute_time() * model.cores * core_freq_hz / profile.solo_cpi()
    )
    instructions = instr_per_step * n_steps
    cycles = instructions * assessment.cpi
    references = instructions * profile.llc_refs_per_instr
    misses = references * assessment.llc_miss_ratio
    if noise > 0:
        rng = rng or RandomSource(0, name="counters")
        instructions = rng.uniform_jitter(instructions, noise)
        cycles = rng.uniform_jitter(cycles, noise)
        references = rng.uniform_jitter(references, noise)
        misses = min(rng.uniform_jitter(misses, noise), references)
    return HardwareCounters(
        instructions=instructions,
        cycles=cycles,
        llc_references=references,
        llc_misses=misses,
    )
