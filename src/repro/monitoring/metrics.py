"""The paper's Table 1 metric set at three granularities.

- **Ensemble component**: execution time, LLC miss ratio, memory
  intensity, instructions per cycle.
- **Ensemble member**: makespan — "timespan between simulation start
  time and the latest analysis end time".
- **Workflow ensemble**: makespan — maximum member makespan (all
  members start simultaneously).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

from repro.monitoring.counters import HardwareCounters
from repro.monitoring.tracer import StageTracer
from repro.util.errors import ValidationError
from repro.util.validation import require_non_negative


@dataclass(frozen=True)
class ComponentMetrics:
    """Table 1, component level."""

    component: str
    execution_time: float
    llc_miss_ratio: float
    memory_intensity: float
    ipc: float

    def __post_init__(self) -> None:
        require_non_negative("execution_time", self.execution_time)
        require_non_negative("llc_miss_ratio", self.llc_miss_ratio)
        require_non_negative("memory_intensity", self.memory_intensity)
        require_non_negative("ipc", self.ipc)


@dataclass(frozen=True)
class MemberMetrics:
    """Table 1, member level."""

    member: str
    makespan: float

    def __post_init__(self) -> None:
        require_non_negative("makespan", self.makespan)


@dataclass(frozen=True)
class EnsembleMetrics:
    """Table 1, workflow ensemble level."""

    makespan: float
    member_makespans: Dict[str, float]


def component_metrics(
    component: str,
    tracer: StageTracer,
    counters: HardwareCounters,
) -> ComponentMetrics:
    """Component-level metrics from its trace span and counters."""
    start, end = tracer.component_span(component)
    return ComponentMetrics(
        component=component,
        execution_time=end - start,
        llc_miss_ratio=counters.llc_miss_ratio,
        memory_intensity=counters.memory_intensity,
        ipc=counters.ipc,
    )


def member_makespan_from_trace(
    member: str,
    simulation: str,
    analyses: Sequence[str],
    tracer: StageTracer,
) -> MemberMetrics:
    """Member makespan: simulation start to latest analysis end."""
    if not analyses:
        raise ValidationError("a member needs at least one analysis")
    sim_start, _ = tracer.component_span(simulation)
    latest_end = max(tracer.component_span(a)[1] for a in analyses)
    return MemberMetrics(member=member, makespan=latest_end - sim_start)


def ensemble_makespan(member_metrics: Mapping[str, MemberMetrics]) -> EnsembleMetrics:
    """Ensemble makespan: the maximum member makespan."""
    if not member_metrics:
        raise ValidationError("at least one member required")
    spans = {name: m.makespan for name, m in member_metrics.items()}
    return EnsembleMetrics(makespan=max(spans.values()), member_makespans=spans)
