"""Monitoring: stage traces, synthetic hardware counters, Table-1 metrics.

Stands in for the paper's TAU-based measurement stack. The executor
emits a :class:`~repro.monitoring.tracer.StageTracer` timeline of every
fine-grained stage; :mod:`repro.monitoring.counters` synthesizes
hardware counters (instructions, cycles, LLC references/misses) from
each component's workload profile and its contention assessment; and
:mod:`repro.monitoring.metrics` computes the paper's Table 1 metric set
at all three granularities (ensemble component, ensemble member,
workflow ensemble). :mod:`repro.monitoring.resilience` extends the set
beyond the paper's ideal steady state: goodput, makespan inflation,
effective efficiency, and recovery-time distributions of runs executed
under fault injection (:mod:`repro.faults`).
"""

from repro.monitoring.counters import HardwareCounters, synthesize_counters
from repro.monitoring.metrics import (
    ComponentMetrics,
    EnsembleMetrics,
    MemberMetrics,
    component_metrics,
    ensemble_makespan,
)
from repro.monitoring.report import gantt, summary_report
from repro.monitoring.resilience import (
    ResilienceMetrics,
    busy_time,
    compute_resilience,
    steps_completed,
    surrogate_agreement,
)
from repro.monitoring.tracer import Stage, StageRecord, StageTracer
from repro.monitoring.traceio import (
    load_trace,
    member_stages_from_trace,
    save_trace,
)

__all__ = [
    "ComponentMetrics",
    "EnsembleMetrics",
    "HardwareCounters",
    "MemberMetrics",
    "ResilienceMetrics",
    "Stage",
    "StageRecord",
    "StageTracer",
    "busy_time",
    "component_metrics",
    "compute_resilience",
    "ensemble_makespan",
    "gantt",
    "load_trace",
    "member_stages_from_trace",
    "save_trace",
    "steps_completed",
    "summary_report",
    "surrogate_agreement",
    "synthesize_counters",
]
