"""Analytic model of the in situ analysis component.

The paper's analysis "computes the largest eigenvalue of bipartite
matrices as a collective variable of the frames" (Johnston et al.
2017). Per frame it builds a bipartite distance/contact matrix between
two atom groups and extracts the dominant eigenvalue — dense linear
algebra streaming over matrices much larger than cache, hence the
data-intensive profile.

The default calibration places the solo 8-core analysis step at ~82% of
the simulation step (about 12.9 s vs 14.7 s), reproducing the operating
point chosen in the paper's §3.4: at 1-4 cores the analysis is slower
than the simulation (Idle Simulation regime); from 8 cores on the
member sits in the Idle Analyzer regime, and 8 cores maximizes the
computational efficiency E.
"""

from __future__ import annotations

from typing import Optional

from repro.components.base import (
    ComponentKind,
    ComponentModel,
    ComponentSpec,
    amdahl_time,
)
from repro.components.profiles import analysis_profile
from repro.components.simulation import BYTES_PER_ATOM_FRAME
from repro.platform.contention import WorkloadProfile
from repro.util.validation import (
    require_in_range,
    require_positive,
    require_positive_int,
)


class EigenAnalysisModel(ComponentModel):
    """Cost model of one largest-eigenvalue analysis kernel.

    Parameters
    ----------
    name:
        Component name (unique within the workflow ensemble).
    cores:
        Physical cores allocated (8 in the paper's experiments).
    natoms:
        Atoms per frame received from the coupled simulation.
    single_core_time:
        Wall time of one analysis step on one core. The default (61 s)
        yields ~13 s at 8 cores with the default serial fraction.
    serial_fraction:
        Amdahl serial fraction (reduction and power-iteration sync).
    """

    def __init__(
        self,
        name: str,
        cores: int = 8,
        natoms: int = 250_000,
        single_core_time: float = 61.0,
        serial_fraction: float = 0.10,
        profile: Optional[WorkloadProfile] = None,
    ) -> None:
        spec = ComponentSpec(name=name, kind=ComponentKind.ANALYSIS, cores=cores)
        super().__init__(spec, profile or analysis_profile(name))
        self.natoms = require_positive_int("natoms", natoms)
        self.single_core_time = require_positive(
            "single_core_time", single_core_time
        )
        self.serial_fraction = require_in_range(
            "serial_fraction", serial_fraction, 0.0, 1.0
        )

    def solo_compute_time(self) -> float:
        """Duration of the A stage at the allocated core count."""
        return amdahl_time(self.single_core_time, self.serial_fraction, self.cores)

    def payload_bytes(self) -> int:
        """The frame this analysis reads each in situ step."""
        return self.natoms * BYTES_PER_ATOM_FRAME

    def with_cores(self, cores: int) -> "EigenAnalysisModel":
        """Clone at a different core count (used by the §3.4 sweep)."""
        return EigenAnalysisModel(
            name=self.name,
            cores=cores,
            natoms=self.natoms,
            single_core_time=self.single_core_time,
            serial_fraction=self.serial_fraction,
            profile=self.profile,
        )
