"""Ensemble components: simulations and analyses.

Two parallel implementations of the paper's application live here:

- **Analytic cost models** (:mod:`repro.components.simulation`,
  :mod:`repro.components.analysis`) — Amdahl-scaled stage-time models
  with micro-architectural :class:`~repro.platform.WorkloadProfile`\\ s,
  calibrated so that the default member (GROMACS-like simulation of a
  250k-atom GltPh-like system at stride 800 on 16 cores, coupled with a
  largest-eigenvalue analysis on 8 cores) reproduces the regime of the
  paper's experiments. These drive the discrete-event executor.

- **Real miniature kernels** (:mod:`repro.components.md`,
  :mod:`repro.components.kernels`) — an actual Lennard-Jones molecular
  dynamics engine (cell lists, velocity Verlet, thermostat) and the
  actual analysis computation the paper uses (bipartite contact matrix
  between atom groups, largest eigenvalue as a collective variable).
  The in-process examples run real frames through the real DTL.
"""

from repro.components.base import ComponentKind, ComponentModel, ComponentSpec
from repro.components.analysis import EigenAnalysisModel
from repro.components.calibration import (
    AnalysisSample,
    FitReport,
    SimulationSample,
    fit_analysis_model,
    fit_simulation_model,
)
from repro.components.profiles import (
    analysis_profile,
    simulation_profile,
)
from repro.components.simulation import MDSimulationModel

__all__ = [
    "AnalysisSample",
    "ComponentKind",
    "ComponentModel",
    "ComponentSpec",
    "EigenAnalysisModel",
    "FitReport",
    "MDSimulationModel",
    "SimulationSample",
    "analysis_profile",
    "fit_analysis_model",
    "fit_simulation_model",
    "simulation_profile",
]
