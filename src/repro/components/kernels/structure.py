"""Classic structural MD analyses: RMSD, radius of gyration, RDF.

The paper's members may couple "identical or distinct algorithms" to a
simulation. Besides the spectral collective variable
(:mod:`repro.components.kernels.cv`), these are the standard in situ
structural analyses — each a genuine implementation usable on the
mini-MD engine's frames, and each a distinct workload shape for
heterogeneous-member experiments.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.util.errors import ValidationError
from repro.util.validation import require_positive, require_positive_int


def _check_positions(name: str, positions: np.ndarray) -> np.ndarray:
    arr = np.asarray(positions, dtype=float)
    if arr.ndim != 2 or arr.shape[1] != 3:
        raise ValidationError(f"{name} must be (N, 3), got {arr.shape}")
    if arr.shape[0] == 0:
        raise ValidationError(f"{name} must be non-empty")
    return arr


def rmsd(
    positions: np.ndarray,
    reference: np.ndarray,
    superpose: bool = True,
) -> float:
    """Root-mean-square deviation from a reference frame.

    With ``superpose`` (default) the optimal rigid-body alignment is
    removed first via the Kabsch algorithm (translation + rotation), so
    the value reflects internal deformation only — the conventional
    definition for conformational-change tracking.
    """
    pos = _check_positions("positions", positions)
    ref = _check_positions("reference", reference)
    if pos.shape != ref.shape:
        raise ValidationError(
            f"positions {pos.shape} and reference {ref.shape} must match"
        )
    if superpose:
        pos = pos - pos.mean(axis=0)
        ref = ref - ref.mean(axis=0)
        # Kabsch: rotation minimizing |pos @ R - ref|
        h = pos.T @ ref
        u, _s, vt = np.linalg.svd(h)
        d = np.sign(np.linalg.det(u @ vt))
        rot = u @ np.diag([1.0, 1.0, d]) @ vt
        pos = pos @ rot
    diff = pos - ref
    return float(np.sqrt(np.mean(np.einsum("ij,ij->i", diff, diff))))


def radius_of_gyration(positions: np.ndarray) -> float:
    """Radius of gyration: sqrt(mean |r_i - r_cm|^2) (unit masses)."""
    pos = _check_positions("positions", positions)
    centered = pos - pos.mean(axis=0)
    return float(np.sqrt(np.mean(np.einsum("ij,ij->i", centered, centered))))


def radial_distribution(
    positions: np.ndarray,
    box_length: float,
    num_bins: int = 50,
    r_max: Optional[float] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Radial distribution function g(r) of a periodic system.

    Returns ``(bin_centers, g)``. Normalized against the ideal-gas
    expectation at the system's density, so a well-mixed LJ liquid
    tends to 1 at large r and shows the familiar first-shell peak near
    ``r = 2^(1/6)`` sigma (asserted in the tests).
    """
    pos = _check_positions("positions", positions)
    require_positive("box_length", box_length)
    require_positive_int("num_bins", num_bins)
    n = pos.shape[0]
    if n < 2:
        raise ValidationError("RDF requires at least two particles")
    if r_max is None:
        r_max = box_length / 2.0
    if not 0 < r_max <= box_length / 2.0 + 1e-12:
        raise ValidationError(
            f"r_max must be in (0, box_length/2], got {r_max!r}"
        )

    iu, ju = np.triu_indices(n, k=1)
    diff = pos[iu] - pos[ju]
    diff -= box_length * np.round(diff / box_length)
    r = np.sqrt(np.einsum("ij,ij->i", diff, diff))

    counts, edges = np.histogram(r, bins=num_bins, range=(0.0, r_max))
    centers = 0.5 * (edges[:-1] + edges[1:])
    shell_volumes = (4.0 / 3.0) * np.pi * (edges[1:] ** 3 - edges[:-1] ** 3)
    density = n / box_length**3
    # pair counts expected for an ideal gas: N/2 * rho * V_shell
    expected = 0.5 * n * density * shell_volumes
    with np.errstate(invalid="ignore", divide="ignore"):
        g = np.where(expected > 0, counts / expected, 0.0)
    return centers, g


class StructureAnalyzer:
    """Stateful per-frame structural analysis (RMSD vs first frame).

    The first analyzed frame becomes the RMSD reference; every call
    returns ``(rmsd, radius_of_gyration)`` and appends to history.
    """

    def __init__(self, superpose: bool = True) -> None:
        self.superpose = superpose
        self.reference: Optional[np.ndarray] = None
        self.rmsd_history: list = []
        self.rg_history: list = []

    def analyze(self, positions: np.ndarray) -> Tuple[float, float]:
        pos = _check_positions("positions", positions)
        if self.reference is None:
            self.reference = pos.copy()
        value = rmsd(pos, self.reference, superpose=self.superpose)
        rg = radius_of_gyration(pos)
        self.rmsd_history.append(value)
        self.rg_history.append(rg)
        return value, rg
