"""Real analysis kernels: the paper's collective-variable computation.

The paper's analysis "computes the largest eigenvalue of bipartite
matrices [Johnston et al. 2017] as a collective variable of the
frames". These modules implement that computation for real: a bipartite
distance/contact matrix between two atom groups of a frame
(:mod:`repro.components.kernels.bipartite`), its dominant spectral
value via power iteration (:mod:`repro.components.kernels.eigen`), and
the end-to-end collective-variable pipeline
(:mod:`repro.components.kernels.cv`).
"""

from repro.components.kernels.bipartite import (
    bipartite_contact_matrix,
    bipartite_distance_matrix,
    split_groups,
)
from repro.components.kernels.cv import CollectiveVariableAnalyzer, CVResult
from repro.components.kernels.eigen import (
    largest_eigenvalue_symmetric,
    largest_singular_value,
)
from repro.components.kernels.structure import (
    StructureAnalyzer,
    radial_distribution,
    radius_of_gyration,
    rmsd,
)

__all__ = [
    "CVResult",
    "CollectiveVariableAnalyzer",
    "StructureAnalyzer",
    "bipartite_contact_matrix",
    "bipartite_distance_matrix",
    "largest_eigenvalue_symmetric",
    "largest_singular_value",
    "radial_distribution",
    "radius_of_gyration",
    "rmsd",
    "split_groups",
]
