"""The end-to-end collective-variable analysis.

:class:`CollectiveVariableAnalyzer` is the real analysis component of
the in-process pipeline: frame in, collective variable out. It chains
group split -> bipartite contact matrix -> largest singular value, the
computation the paper's in situ analysis performs on each staged frame.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.components.kernels.bipartite import (
    bipartite_contact_matrix,
    split_groups,
)
from repro.components.kernels.eigen import largest_singular_value
from repro.util.errors import ValidationError
from repro.util.validation import require_positive


@dataclass(frozen=True)
class CVResult:
    """Collective variable extracted from one frame."""

    frame_index: int
    value: float
    matrix_shape: tuple


class CollectiveVariableAnalyzer:
    """Computes the spectral collective variable of successive frames.

    Parameters
    ----------
    group_fraction:
        Fraction of atoms assigned to the first group.
    contact_radius, steepness:
        Contact-map parameters (reduced units).
    periodic:
        Whether distances use the frame's periodic box.
    """

    def __init__(
        self,
        group_fraction: float = 0.5,
        contact_radius: float = 1.5,
        steepness: float = 4.0,
        periodic: bool = True,
    ) -> None:
        if not 0.0 < group_fraction < 1.0:
            raise ValidationError(
                f"group_fraction must be in (0, 1), got {group_fraction!r}"
            )
        require_positive("contact_radius", contact_radius)
        require_positive("steepness", steepness)
        self.group_fraction = group_fraction
        self.contact_radius = contact_radius
        self.steepness = steepness
        self.periodic = periodic
        self.history: List[CVResult] = []

    def analyze(
        self,
        positions: np.ndarray,
        box_length: Optional[float] = None,
        frame_index: Optional[int] = None,
    ) -> CVResult:
        """Extract the collective variable from one frame.

        ``box_length`` is required when ``periodic`` is True.
        """
        if self.periodic and box_length is None:
            raise ValidationError("periodic analysis requires box_length")
        group_a, group_b = split_groups(
            np.asarray(positions, dtype=float), self.group_fraction
        )
        matrix = bipartite_contact_matrix(
            group_a,
            group_b,
            box_length=box_length if self.periodic else None,
            contact_radius=self.contact_radius,
            steepness=self.steepness,
        )
        value = largest_singular_value(matrix)
        result = CVResult(
            frame_index=len(self.history) if frame_index is None else frame_index,
            value=value,
            matrix_shape=matrix.shape,
        )
        self.history.append(result)
        return result

    @property
    def trajectory(self) -> np.ndarray:
        """Collective-variable values of all analyzed frames, in order."""
        return np.asarray([r.value for r in self.history], dtype=float)
