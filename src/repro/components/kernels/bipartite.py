"""Bipartite matrices between two atom groups of a frame.

Following Johnston et al. (2017), a frame's atoms are split into two
groups (e.g. transport domain vs scaffold of the GltPh transporter) and
the pairwise structure between the groups is summarized as a bipartite
matrix: either raw Euclidean distances or a smooth contact map. The
dominant spectral value of this matrix tracks large-scale relative
motion between the groups — a cheap, in situ-computable collective
variable.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.util.errors import ValidationError
from repro.util.validation import require_positive


def split_groups(
    positions: np.ndarray, fraction: float = 0.5
) -> Tuple[np.ndarray, np.ndarray]:
    """Split a frame's atoms into two groups by index.

    Real use cases select by residue; index split is the deterministic
    stand-in when no topology exists.
    """
    positions = np.asarray(positions, dtype=float)
    if positions.ndim != 2 or positions.shape[1] != 3:
        raise ValidationError(f"positions must be (N, 3), got {positions.shape}")
    if not 0.0 < fraction < 1.0:
        raise ValidationError(f"fraction must be in (0, 1), got {fraction!r}")
    k = int(round(positions.shape[0] * fraction))
    k = min(max(k, 1), positions.shape[0] - 1)
    return positions[:k], positions[k:]


def bipartite_distance_matrix(
    group_a: np.ndarray,
    group_b: np.ndarray,
    box_length: float | None = None,
) -> np.ndarray:
    """``(|A|, |B|)`` Euclidean distances, optionally minimum-image.

    Computed via the expansion ``|a-b|^2 = |a|^2 + |b|^2 - 2 a.b`` in
    the open-boundary case (one GEMM instead of a (A,B,3) temporary);
    the periodic case needs the displacement tensor anyway.
    """
    a = np.asarray(group_a, dtype=float)
    b = np.asarray(group_b, dtype=float)
    for name, g in (("group_a", a), ("group_b", b)):
        if g.ndim != 2 or g.shape[1] != 3:
            raise ValidationError(f"{name} must be (N, 3), got {g.shape}")
        if g.shape[0] == 0:
            raise ValidationError(f"{name} must be non-empty")
    if box_length is None:
        a2 = np.einsum("ij,ij->i", a, a)
        b2 = np.einsum("ij,ij->i", b, b)
        d2 = a2[:, None] + b2[None, :] - 2.0 * (a @ b.T)
        np.maximum(d2, 0.0, out=d2)  # clamp negative rounding residue
        return np.sqrt(d2)
    require_positive("box_length", box_length)
    diff = a[:, None, :] - b[None, :, :]
    diff -= box_length * np.round(diff / box_length)
    return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))


def bipartite_contact_matrix(
    group_a: np.ndarray,
    group_b: np.ndarray,
    box_length: float | None = None,
    contact_radius: float = 1.5,
    steepness: float = 4.0,
) -> np.ndarray:
    """Smooth contact map: ``sigmoid(steepness * (radius - d))``.

    Values near 1 for pairs well inside ``contact_radius``, near 0 far
    outside; differentiable, so the spectral CV varies smoothly along a
    trajectory.
    """
    require_positive("contact_radius", contact_radius)
    require_positive("steepness", steepness)
    d = bipartite_distance_matrix(group_a, group_b, box_length)
    return 1.0 / (1.0 + np.exp(-steepness * (contact_radius - d)))
