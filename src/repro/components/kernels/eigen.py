"""Dominant spectral values via power iteration.

The collective variable is the largest eigenvalue (equivalently, for a
general rectangular bipartite matrix, the largest singular value). Both
are computed here with from-scratch power iteration — matvec-only, the
method an in situ kernel would actually use to avoid materializing a
factorization — with convergence checks against scipy in the tests.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.util.errors import ValidationError
from repro.util.rng import RandomSource
from repro.util.validation import require_positive, require_positive_int


def largest_eigenvalue_symmetric(
    matrix: np.ndarray,
    tol: float = 1e-10,
    max_iterations: int = 5000,
    rng: Optional[RandomSource] = None,
) -> Tuple[float, np.ndarray]:
    """Largest-magnitude eigenvalue of a symmetric matrix.

    Returns ``(eigenvalue, eigenvector)``. Power iteration converges at
    rate ``|λ2/λ1|``; ties in magnitude (λ1 = -λ2) stall, which the
    iteration cap converts into a :class:`ValidationError`.
    """
    m = np.asarray(matrix, dtype=float)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        raise ValidationError(f"matrix must be square, got {m.shape}")
    if not np.allclose(m, m.T, atol=1e-8):
        raise ValidationError("matrix must be symmetric")
    require_positive("tol", tol)
    require_positive_int("max_iterations", max_iterations)
    rng = rng or RandomSource(0, name="power-iteration")

    v = rng.generator.normal(size=m.shape[0])
    v /= np.linalg.norm(v)
    lam = 0.0
    for _ in range(max_iterations):
        w = m @ v
        norm = np.linalg.norm(w)
        if norm == 0.0:
            return 0.0, v  # matrix annihilated v: zero spectrum direction
        v_next = w / norm
        lam_next = float(v_next @ m @ v_next)
        if abs(lam_next - lam) <= tol * max(1.0, abs(lam_next)):
            return lam_next, v_next
        v, lam = v_next, lam_next
    raise ValidationError(
        f"power iteration did not converge in {max_iterations} iterations "
        "(degenerate leading eigenvalues?)"
    )


def largest_singular_value(
    matrix: np.ndarray,
    tol: float = 1e-10,
    max_iterations: int = 5000,
    rng: Optional[RandomSource] = None,
) -> float:
    """Largest singular value of a rectangular matrix.

    Power iteration on the Gram operator ``A^T A`` using only matvecs
    (never forming ``A^T A`` explicitly), so memory stays
    ``O(rows + cols)`` beyond the input.
    """
    a = np.asarray(matrix, dtype=float)
    if a.ndim != 2:
        raise ValidationError(f"matrix must be 2-D, got {a.shape}")
    if a.size == 0:
        raise ValidationError("matrix must be non-empty")
    require_positive("tol", tol)
    require_positive_int("max_iterations", max_iterations)
    rng = rng or RandomSource(0, name="power-iteration")

    v = rng.generator.normal(size=a.shape[1])
    v /= np.linalg.norm(v)
    sigma2 = 0.0
    for _ in range(max_iterations):
        w = a.T @ (a @ v)
        norm = np.linalg.norm(w)
        if norm == 0.0:
            return 0.0
        v_next = w / norm
        sigma2_next = float(v_next @ (a.T @ (a @ v_next)))
        if abs(sigma2_next - sigma2) <= tol * max(1.0, abs(sigma2_next)):
            return float(np.sqrt(max(sigma2_next, 0.0)))
        v, sigma2 = v_next, sigma2_next
    raise ValidationError(
        f"power iteration did not converge in {max_iterations} iterations"
    )
