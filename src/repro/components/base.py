"""Component base types.

A *component* is one executable of an ensemble member: the simulation
or one of its analyses. A :class:`ComponentModel` provides what the
executor needs to simulate it: solo stage durations (Amdahl-scaled by
core count), the staged payload size, and the micro-architectural
:class:`~repro.platform.contention.WorkloadProfile` that the platform's
contention model dilates under co-location.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass

from repro.platform.contention import WorkloadProfile
from repro.util.errors import ValidationError
from repro.util.validation import require_in_range, require_positive


class ComponentKind(enum.Enum):
    """Role of a component within its ensemble member."""

    SIMULATION = "simulation"
    ANALYSIS = "analysis"


@dataclass(frozen=True)
class ComponentSpec:
    """Identity and resource demand of one component."""

    name: str
    kind: ComponentKind
    cores: int

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("component name must be non-empty")
        if not isinstance(self.kind, ComponentKind):
            raise ValidationError(f"kind must be ComponentKind, got {self.kind!r}")
        if isinstance(self.cores, bool) or not isinstance(self.cores, int):
            raise ValidationError(f"cores must be an int, got {self.cores!r}")
        if self.cores <= 0:
            raise ValidationError(f"cores must be > 0, got {self.cores}")


def amdahl_time(single_core_time: float, serial_fraction: float, cores: int) -> float:
    """Strong-scaling wall time under Amdahl's law.

    ``t(c) = t(1) * (f + (1 - f) / c)`` where ``f`` is the serial
    fraction. The universal first-order model for fixed-size MD and
    analysis kernels; adequate here because the paper varies cores over
    one node (1..32), well inside the regime where Amdahl dominates.
    """
    require_positive("single_core_time", single_core_time)
    require_in_range("serial_fraction", serial_fraction, 0.0, 1.0)
    if isinstance(cores, bool) or not isinstance(cores, int) or cores <= 0:
        raise ValidationError(f"cores must be a positive int, got {cores!r}")
    return single_core_time * (serial_fraction + (1.0 - serial_fraction) / cores)


class ComponentModel(abc.ABC):
    """What the executor needs to know about one component."""

    def __init__(self, spec: ComponentSpec, profile: WorkloadProfile) -> None:
        if spec.name != profile.name:
            raise ValidationError(
                f"spec name {spec.name!r} != profile name {profile.name!r}"
            )
        self.spec = spec
        self.profile = profile

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def cores(self) -> int:
        return self.spec.cores

    @abc.abstractmethod
    def solo_compute_time(self) -> float:
        """Duration of the compute stage (S or A) per in situ step,
        running alone (no co-location contention), in seconds."""

    @abc.abstractmethod
    def payload_bytes(self) -> int:
        """Bytes staged (written for a simulation, read for an analysis)
        per in situ step."""
