"""Paper-calibrated workload profiles.

These micro-architectural profiles encode the paper's observation that
"simulations are normally compute-intensive while analyses are
data-intensive" (§1) and drive the contention model toward the
orderings of its Figure 3:

- The **simulation** (GROMACS-like MD) is cache-blocked: low LLC
  reference rate, low solo miss ratio, but a *convex* contention
  response (exponent 2) — it shrugs off losing half its cache to a
  sibling simulation, yet collapses to a high miss ratio when an
  aggressive streaming analysis evicts nearly all of it. Its low
  reference rate keeps the induced *time* dilation small even when the
  miss ratio spikes, which is why co-locating a simulation with its
  analysis raises miss ratios far more than it raises makespan.

- The **analysis** (eigenvalue over frames) streams large matrices:
  high reference rate, high solo miss ratio, linear degradation. Two
  co-located analyses halve each other's cache and dilate markedly —
  the C1.1/C1.4 penalty of the paper.
"""

from __future__ import annotations

from repro.platform.contention import WorkloadProfile
from repro.util.units import MIB
from repro.util.validation import require_positive


def simulation_profile(
    name: str,
    natoms: int = 250_000,
    working_set_per_atom: float = 180.0,
) -> WorkloadProfile:
    """Profile of a cache-blocked MD simulation.

    ``working_set_per_atom`` approximates the hot bytes per atom
    (positions, velocities, forces, neighbor lists); 250k atoms gives a
    ~43 MiB working set, just above one Cori socket LLC, matching the
    moderate solo miss ratio.
    """
    require_positive("natoms", natoms)
    return WorkloadProfile(
        name=name,
        working_set_bytes=natoms * working_set_per_atom,
        llc_refs_per_instr=0.00025,
        solo_llc_miss_ratio=0.06,
        max_llc_miss_ratio=0.60,
        contention_exponent=2.0,
        base_cpi=0.50,
        miss_penalty_cycles=150.0,
    )


def analysis_profile(
    name: str,
    matrix_bytes: float = 100 * MIB,
) -> WorkloadProfile:
    """Profile of a data-intensive streaming analysis kernel.

    ``matrix_bytes`` is the resident footprint of the bipartite
    matrices and frame buffers the kernel sweeps each step.
    """
    require_positive("matrix_bytes", matrix_bytes)
    return WorkloadProfile(
        name=name,
        working_set_bytes=matrix_bytes,
        llc_refs_per_instr=0.02,
        solo_llc_miss_ratio=0.25,
        max_llc_miss_ratio=0.75,
        contention_exponent=1.0,
        base_cpi=0.70,
        miss_penalty_cycles=150.0,
    )
