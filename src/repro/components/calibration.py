"""Fitting cost models to measured timings.

The analytic component models are Amdahl-shaped::

    t(cores) = T1 * (f + (1 - f) / cores)

which is *linear* in the basis ``(1, 1/cores)``: with ``A = T1*f`` and
``B = T1*(1-f)``, ``t = A + B/cores``. Calibration is therefore a
plain least-squares fit, after which ``T1 = A + B`` and
``f = A / (A + B)``. For the simulation model the single-core time is
further normalized by ``stride * natoms`` so one fit covers samples at
different strides and system sizes.

Use case: measure a handful of (cores, wall time) points of your real
simulation and analysis, fit, and the whole indicator/scheduling stack
operates on *your* machine's behaviour::

    samples = [SimulationSample(cores=8, stride=800, natoms=250_000,
                                seconds=28.1), ...]
    model = fit_simulation_model("gmx", samples)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.components.analysis import EigenAnalysisModel
from repro.components.simulation import MDSimulationModel
from repro.util.errors import ValidationError
from repro.util.validation import require_positive, require_positive_int


@dataclass(frozen=True)
class SimulationSample:
    """One measured simulation timing: an in situ step's S stage."""

    cores: int
    stride: int
    natoms: int
    seconds: float

    def __post_init__(self) -> None:
        require_positive_int("cores", self.cores)
        require_positive_int("stride", self.stride)
        require_positive_int("natoms", self.natoms)
        require_positive("seconds", self.seconds)


@dataclass(frozen=True)
class AnalysisSample:
    """One measured analysis timing: an in situ step's A stage."""

    cores: int
    seconds: float

    def __post_init__(self) -> None:
        require_positive_int("cores", self.cores)
        require_positive("seconds", self.seconds)


@dataclass(frozen=True)
class FitReport:
    """Outcome of a calibration fit."""

    single_core_time: float  # T1 (per atom-step for simulations)
    serial_fraction: float  # f
    rmse: float  # root-mean-square residual in seconds
    num_samples: int


def _fit_amdahl(
    cores: Sequence[int], times: Sequence[float]
) -> Tuple[float, float, float]:
    """Least-squares fit of ``t = A + B/cores``; returns (T1, f, rmse)."""
    cores_arr = np.asarray(list(cores), dtype=float)
    times_arr = np.asarray(list(times), dtype=float)
    if cores_arr.size < 2:
        raise ValidationError("calibration requires at least two samples")
    if len(set(cores_arr.tolist())) < 2:
        raise ValidationError(
            "calibration requires samples at two or more distinct core "
            "counts (the fit is over scaling behaviour)"
        )
    design = np.column_stack([np.ones_like(cores_arr), 1.0 / cores_arr])
    coeffs, *_ = np.linalg.lstsq(design, times_arr, rcond=None)
    a, b = float(coeffs[0]), float(coeffs[1])
    t1 = a + b
    if t1 <= 0:
        raise ValidationError(
            "fit produced a non-positive single-core time; samples are "
            "inconsistent with Amdahl scaling"
        )
    f = a / t1
    if not -0.05 <= f <= 1.05:
        raise ValidationError(
            f"fit produced serial fraction {f:.3f} outside [0, 1]; "
            "samples are inconsistent with Amdahl scaling"
        )
    f = min(max(f, 0.0), 1.0)
    residuals = design @ coeffs - times_arr
    rmse = float(np.sqrt(np.mean(residuals**2)))
    return t1, f, rmse


def fit_simulation_model(
    name: str,
    samples: Sequence[SimulationSample],
    max_relative_rmse: float = 0.25,
) -> Tuple[MDSimulationModel, FitReport]:
    """Fit an :class:`MDSimulationModel` to measured step times.

    Samples may mix strides and system sizes; times are normalized to
    per-atom-per-MD-step before fitting. The returned model is built at
    the *last* sample's cores/stride/natoms (override as needed).

    Raises :class:`ValidationError` when the fit's relative RMSE
    exceeds ``max_relative_rmse`` — a sign the measurements do not
    follow Amdahl scaling (e.g. they straddle a NUMA cliff).
    """
    samples = list(samples)
    if not samples:
        raise ValidationError("no samples provided")
    normalized = [
        s.seconds / (s.stride * s.natoms) for s in samples
    ]
    t1, f, rmse = _fit_amdahl([s.cores for s in samples], normalized)
    mean_t = float(np.mean(normalized))
    if rmse > max_relative_rmse * mean_t:
        raise ValidationError(
            f"poor calibration fit: rmse {rmse:.3g} vs mean {mean_t:.3g} "
            "(measurements deviate from Amdahl scaling)"
        )
    last = samples[-1]
    model = MDSimulationModel(
        name,
        cores=last.cores,
        natoms=last.natoms,
        stride=last.stride,
        seconds_per_atom_step=t1,
        serial_fraction=f,
    )
    report = FitReport(
        single_core_time=t1,
        serial_fraction=f,
        rmse=rmse,
        num_samples=len(samples),
    )
    return model, report


def fit_analysis_model(
    name: str,
    samples: Sequence[AnalysisSample],
    natoms: int = 250_000,
    max_relative_rmse: float = 0.25,
) -> Tuple[EigenAnalysisModel, FitReport]:
    """Fit an :class:`EigenAnalysisModel` to measured step times."""
    samples = list(samples)
    if not samples:
        raise ValidationError("no samples provided")
    t1, f, rmse = _fit_amdahl(
        [s.cores for s in samples], [s.seconds for s in samples]
    )
    mean_t = float(np.mean([s.seconds for s in samples]))
    if rmse > max_relative_rmse * mean_t:
        raise ValidationError(
            f"poor calibration fit: rmse {rmse:.3g} vs mean {mean_t:.3g} "
            "(measurements deviate from Amdahl scaling)"
        )
    last = samples[-1]
    model = EigenAnalysisModel(
        name,
        cores=last.cores,
        natoms=natoms,
        single_core_time=t1,
        serial_fraction=f,
    )
    report = FitReport(
        single_core_time=t1,
        serial_fraction=f,
        rmse=rmse,
        num_samples=len(samples),
    )
    return model, report
