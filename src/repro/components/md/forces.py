"""Lennard-Jones forces with minimum-image periodic boundaries.

Two evaluation paths share one pair kernel:

- :func:`_forces_allpairs` — fully vectorized O(N^2); fastest below a
  few hundred particles.
- :func:`_forces_celllist` — linked-cell O(N) evaluation used
  automatically for larger systems; bins particles into cells of edge
  >= cutoff so only the 27-cell neighborhood is searched.

The potential is the truncated-and-shifted 12-6 LJ:
``u(r) = 4 (r^-12 - r^-6) - u_cut`` for ``r < r_cut`` with
``u_cut = 4 (r_cut^-12 - r_cut^-6)``, the standard choice that keeps
the potential continuous at the cutoff so NVE runs conserve energy to
O(dt^2) (property-tested). Forces are unaffected by the shift.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.util.errors import ValidationError
from repro.util.validation import require_positive

#: below this many particles the O(N^2) path beats cell-list overheads.
_ALLPAIRS_THRESHOLD = 400


def lennard_jones_forces(
    positions: np.ndarray,
    box_length: float,
    cutoff: float = 2.5,
) -> Tuple[np.ndarray, float]:
    """Forces and potential energy of a periodic LJ system.

    Parameters
    ----------
    positions:
        ``(N, 3)`` particle coordinates (any image; wrapped internally).
    box_length:
        Cubic box edge; must be at least ``2 * cutoff`` so the minimum
        image convention is valid.
    cutoff:
        Interaction cutoff radius in sigma.

    Returns
    -------
    (forces, potential):
        ``(N, 3)`` force array and total potential energy.
    """
    positions = np.asarray(positions, dtype=float)
    if positions.ndim != 2 or positions.shape[1] != 3:
        raise ValidationError(f"positions must be (N, 3), got {positions.shape}")
    require_positive("box_length", box_length)
    require_positive("cutoff", cutoff)
    if box_length < 2 * cutoff:
        raise ValidationError(
            f"box_length ({box_length:.3f}) must be >= 2*cutoff "
            f"({2 * cutoff:.3f}) for minimum-image validity"
        )
    n = positions.shape[0]
    if n < 2:
        return np.zeros_like(positions), 0.0
    if n <= _ALLPAIRS_THRESHOLD:
        return _forces_allpairs(positions, box_length, cutoff)
    return _forces_celllist(positions, box_length, cutoff)


def _cutoff_shift(cutoff: float) -> float:
    """u(r_cut) of the unshifted potential, subtracted from every pair."""
    inv6 = cutoff**-6
    return 4.0 * (inv6**2 - inv6)


def _pair_kernel(
    rij: np.ndarray, r2: np.ndarray, shift: float
) -> Tuple[np.ndarray, np.ndarray]:
    """LJ force vectors and pair energies from displacement vectors.

    ``rij``: (P, 3) minimum-image displacements, ``r2``: (P,) squared
    distances (all within cutoff, none zero); ``shift`` is the
    truncation shift ``u(r_cut)``.
    """
    inv_r2 = 1.0 / r2
    inv_r6 = inv_r2**3
    inv_r12 = inv_r6**2
    energies = 4.0 * (inv_r12 - inv_r6) - shift
    # f = -dU/dr * rhat = 24 (2 r^-12 - r^-6) / r^2 * rij
    magnitude = 24.0 * (2.0 * inv_r12 - inv_r6) * inv_r2
    return magnitude[:, None] * rij, energies


def _forces_allpairs(
    positions: np.ndarray, box_length: float, cutoff: float
) -> Tuple[np.ndarray, float]:
    n = positions.shape[0]
    iu, ju = np.triu_indices(n, k=1)
    rij = positions[iu] - positions[ju]
    rij -= box_length * np.round(rij / box_length)
    r2 = np.einsum("ij,ij->i", rij, rij)
    mask = r2 < cutoff**2
    iu, ju, rij, r2 = iu[mask], ju[mask], rij[mask], r2[mask]
    if r2.size and r2.min() < 1e-12:
        raise ValidationError("overlapping particles (r ~ 0): bad configuration")
    fvec, energies = _pair_kernel(rij, r2, _cutoff_shift(cutoff))
    forces = np.zeros_like(positions)
    np.add.at(forces, iu, fvec)
    np.add.at(forces, ju, -fvec)
    return forces, float(energies.sum())


def _forces_celllist(
    positions: np.ndarray, box_length: float, cutoff: float
) -> Tuple[np.ndarray, float]:
    n = positions.shape[0]
    wrapped = positions % box_length
    ncells = max(int(box_length / cutoff), 3)
    cell_edge = box_length / ncells
    coords = np.floor(wrapped / cell_edge).astype(int)
    coords = np.clip(coords, 0, ncells - 1)
    flat = (coords[:, 0] * ncells + coords[:, 1]) * ncells + coords[:, 2]

    order = np.argsort(flat, kind="stable")
    sorted_flat = flat[order]
    # start index of each cell in the sorted particle order
    starts = np.searchsorted(sorted_flat, np.arange(ncells**3))
    ends = np.searchsorted(sorted_flat, np.arange(ncells**3), side="right")

    forces = np.zeros_like(positions)
    potential = 0.0
    cutoff2 = cutoff**2
    shift = _cutoff_shift(cutoff)

    # half the 27-neighborhood (including self-cell) to visit each pair once
    neighbor_offsets = []
    for dx in (-1, 0, 1):
        for dy in (-1, 0, 1):
            for dz in (-1, 0, 1):
                if (dx, dy, dz) > (0, 0, 0) or (dx, dy, dz) == (0, 0, 0):
                    neighbor_offsets.append((dx, dy, dz))

    cell_xyz = np.unravel_index(np.arange(ncells**3), (ncells, ncells, ncells))
    cell_xyz = np.stack(cell_xyz, axis=1)

    for c in range(ncells**3):
        i_lo, i_hi = starts[c], ends[c]
        if i_lo == i_hi:
            continue
        idx_i = order[i_lo:i_hi]
        pos_i = wrapped[idx_i]
        for off in neighbor_offsets:
            nxyz = (cell_xyz[c] + off) % ncells
            nc = (nxyz[0] * ncells + nxyz[1]) * ncells + nxyz[2]
            j_lo, j_hi = starts[nc], ends[nc]
            if j_lo == j_hi:
                continue
            idx_j = order[j_lo:j_hi]
            if nc == c:
                # intra-cell: upper-triangle pairs only
                if len(idx_i) < 2:
                    continue
                a, b = np.triu_indices(len(idx_i), k=1)
                pi, pj = idx_i[a], idx_i[b]
            else:
                # Half-offset enumeration visits each unordered cell
                # pair exactly once (ncells >= 3 keeps +1/-1 distinct
                # under wrap), so no nc-vs-c ordering check is needed.
                pi = np.repeat(idx_i, len(idx_j))
                pj = np.tile(idx_j, len(idx_i))
            rij = wrapped[pi] - wrapped[pj]
            rij -= box_length * np.round(rij / box_length)
            r2 = np.einsum("ij,ij->i", rij, rij)
            mask = r2 < cutoff2
            if not mask.any():
                continue
            pi, pj, rij, r2 = pi[mask], pj[mask], rij[mask], r2[mask]
            if r2.min() < 1e-12:
                raise ValidationError(
                    "overlapping particles (r ~ 0): bad configuration"
                )
            fvec, energies = _pair_kernel(rij, r2, shift)
            np.add.at(forces, pi, fvec)
            np.add.at(forces, pj, -fvec)
            potential += float(energies.sum())
    return forces, potential
