"""High-level MD engine: run, stride, emit frames.

:class:`MDEngine` wraps system construction, equilibration and
production, yielding an :class:`MDFrame` of single-precision positions
every ``stride`` steps — mirroring how the paper's GROMACS setup writes
a frame for in situ analysis every 800 steps. Frames are exactly the
payloads staged through the DTL in the in-process examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.components.md.integrator import StepReport, VelocityVerletIntegrator
from repro.components.md.system import ParticleSystem, build_system
from repro.util.rng import RandomSource
from repro.util.validation import require_positive, require_positive_int


@dataclass(frozen=True)
class MDFrame:
    """One emitted frame: positions snapshot plus step observables."""

    index: int
    md_step: int
    positions: np.ndarray  # (N, 3) float32
    box_length: float
    temperature: float
    potential: float
    kinetic: float

    @property
    def natoms(self) -> int:
        return self.positions.shape[0]

    @property
    def nbytes(self) -> int:
        return int(self.positions.nbytes)


class MDEngine:
    """Strided frame producer over a Lennard-Jones system.

    Parameters
    ----------
    natoms:
        Requested particle count (rounded up to a full FCC lattice).
    stride:
        MD steps between emitted frames (one frame per in situ step).
    density, temperature, dt, cutoff:
        Physical parameters in reduced LJ units.
    seed:
        Seed for initial velocities; identical seeds give identical
        trajectories.
    """

    def __init__(
        self,
        natoms: int = 108,
        stride: int = 20,
        density: float = 0.8,
        temperature: float = 1.0,
        dt: float = 0.005,
        cutoff: float = 2.5,
        seed: Optional[int] = 0,
    ) -> None:
        require_positive_int("natoms", natoms)
        require_positive_int("stride", stride)
        require_positive("density", density)
        require_positive("temperature", temperature)
        self.stride = stride
        self.system: ParticleSystem = build_system(
            natoms,
            density=density,
            temperature=temperature,
            rng=RandomSource(seed, name="md-engine"),
        )
        self.integrator = VelocityVerletIntegrator(
            self.system,
            dt=dt,
            cutoff=cutoff,
            target_temperature=temperature,
        )
        self._frame_index = 0

    @property
    def natoms(self) -> int:
        return self.system.natoms

    def equilibrate(self, nsteps: int = 200) -> StepReport:
        """Run thermostatted steps without emitting frames."""
        return self.integrator.run(nsteps)

    def _snapshot(self, report: StepReport) -> MDFrame:
        frame = MDFrame(
            index=self._frame_index,
            md_step=self.integrator.step_count,
            positions=self.system.positions.astype(np.float32),
            box_length=self.system.box_length,
            temperature=report.temperature,
            potential=report.potential,
            kinetic=report.kinetic,
        )
        self._frame_index += 1
        return frame

    def frames(self, num_frames: int) -> Iterator[MDFrame]:
        """Yield ``num_frames`` frames, each ``stride`` MD steps apart."""
        require_positive_int("num_frames", num_frames)
        for _ in range(num_frames):
            report = self.integrator.run(self.stride)
            yield self._snapshot(report)
