"""Velocity-Verlet integration with an optional thermostat.

The standard symplectic scheme::

    v(t + dt/2) = v(t) + f(t)/2m * dt
    x(t + dt)   = x(t) + v(t + dt/2) * dt
    v(t + dt)   = v(t + dt/2) + f(t + dt)/2m * dt

NVE runs conserve total energy to O(dt^2); the property-based tests
assert exactly that. An optional Berendsen-style velocity rescale every
``thermostat_interval`` steps turns runs into approximate NVT for
equilibration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.components.md.forces import lennard_jones_forces
from repro.components.md.system import ParticleSystem
from repro.util.validation import require_positive, require_positive_int


@dataclass
class StepReport:
    """Per-step observables returned by the integrator."""

    step: int
    kinetic: float
    potential: float
    temperature: float

    @property
    def total_energy(self) -> float:
        return self.kinetic + self.potential


class VelocityVerletIntegrator:
    """Integrates a :class:`ParticleSystem` in place.

    Parameters
    ----------
    system:
        The particle system to advance (mutated in place).
    dt:
        Time step in reduced units (0.005 is conservative for LJ).
    cutoff:
        LJ interaction cutoff.
    target_temperature:
        If set, velocities are rescaled toward this temperature every
        ``thermostat_interval`` steps (approximate NVT); if ``None``
        the run is NVE.
    """

    def __init__(
        self,
        system: ParticleSystem,
        dt: float = 0.005,
        cutoff: float = 2.5,
        target_temperature: Optional[float] = None,
        thermostat_interval: int = 10,
    ) -> None:
        require_positive("dt", dt)
        require_positive("cutoff", cutoff)
        if target_temperature is not None:
            require_positive("target_temperature", target_temperature)
        require_positive_int("thermostat_interval", thermostat_interval)
        self.system = system
        self.dt = dt
        self.cutoff = cutoff
        self.target_temperature = target_temperature
        self.thermostat_interval = thermostat_interval
        self.step_count = 0
        self._forces, self._potential = lennard_jones_forces(
            system.positions, system.box_length, cutoff
        )

    @property
    def potential_energy(self) -> float:
        """Potential energy at the current state."""
        return self._potential

    def step(self) -> StepReport:
        """Advance one time step; returns observables at the new state."""
        sys_ = self.system
        dt = self.dt
        sys_.velocities += 0.5 * dt * self._forces
        sys_.positions += dt * sys_.velocities
        sys_.wrap()
        self._forces, self._potential = lennard_jones_forces(
            sys_.positions, sys_.box_length, self.cutoff
        )
        sys_.velocities += 0.5 * dt * self._forces
        self.step_count += 1

        if (
            self.target_temperature is not None
            and self.step_count % self.thermostat_interval == 0
        ):
            current = sys_.temperature()
            if current > 0:
                sys_.velocities *= np.sqrt(self.target_temperature / current)

        return StepReport(
            step=self.step_count,
            kinetic=sys_.kinetic_energy(),
            potential=self._potential,
            temperature=sys_.temperature(),
        )

    def run(self, nsteps: int) -> StepReport:
        """Advance ``nsteps`` steps; returns the final report."""
        require_positive_int("nsteps", nsteps)
        report = None
        for _ in range(nsteps):
            report = self.step()
        assert report is not None
        return report
