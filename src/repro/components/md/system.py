"""Particle system construction for the mini-MD engine.

Everything is in reduced Lennard-Jones units (sigma = epsilon = mass =
k_B = 1). Particles start on an FCC lattice — the densest simple
packing, guaranteeing no overlapping pairs at liquid densities — with
Maxwell-Boltzmann velocities at the requested temperature and zero net
momentum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.util.errors import ValidationError
from repro.util.rng import RandomSource
from repro.util.validation import require_positive, require_positive_int


@dataclass
class ParticleSystem:
    """State of an N-particle periodic system.

    Attributes
    ----------
    positions, velocities:
        ``(N, 3)`` float64 arrays.
    box_length:
        Edge of the cubic periodic box.
    """

    positions: np.ndarray
    velocities: np.ndarray
    box_length: float

    def __post_init__(self) -> None:
        self.positions = np.asarray(self.positions, dtype=float)
        self.velocities = np.asarray(self.velocities, dtype=float)
        if self.positions.ndim != 2 or self.positions.shape[1] != 3:
            raise ValidationError(
                f"positions must be (N, 3), got {self.positions.shape}"
            )
        if self.velocities.shape != self.positions.shape:
            raise ValidationError(
                f"velocities shape {self.velocities.shape} != "
                f"positions shape {self.positions.shape}"
            )
        require_positive("box_length", self.box_length)

    @property
    def natoms(self) -> int:
        return self.positions.shape[0]

    @property
    def density(self) -> float:
        """Number density N / V."""
        return self.natoms / self.box_length**3

    def kinetic_energy(self) -> float:
        """Total kinetic energy (unit masses): 0.5 * sum(v^2)."""
        return 0.5 * float(np.sum(self.velocities**2))

    def temperature(self) -> float:
        """Instantaneous temperature from equipartition: 2K / (3N - 3).

        Three degrees of freedom are removed for the zeroed center-of-
        mass momentum.
        """
        dof = 3 * self.natoms - 3
        return 2.0 * self.kinetic_energy() / dof

    def momentum(self) -> np.ndarray:
        """Total momentum vector (should stay ~0 under NVE)."""
        return self.velocities.sum(axis=0)

    def wrap(self) -> None:
        """Wrap positions into the primary periodic image [0, L)."""
        self.positions %= self.box_length


def fcc_lattice(cells_per_edge: int, box_length: float) -> np.ndarray:
    """FCC lattice of ``4 * cells_per_edge**3`` sites in a cubic box."""
    require_positive_int("cells_per_edge", cells_per_edge)
    require_positive("box_length", box_length)
    a = box_length / cells_per_edge
    basis = np.array(
        [[0.0, 0.0, 0.0], [0.5, 0.5, 0.0], [0.5, 0.0, 0.5], [0.0, 0.5, 0.5]]
    )
    cells = np.arange(cells_per_edge)
    offsets = (
        np.stack(np.meshgrid(cells, cells, cells, indexing="ij"), axis=-1)
        .reshape(-1, 3)
        .astype(float)
    )
    sites = (offsets[:, None, :] + basis[None, :, :]).reshape(-1, 3)
    return sites * a


def build_system(
    natoms: int,
    density: float = 0.8,
    temperature: float = 1.0,
    rng: Optional[RandomSource] = None,
) -> ParticleSystem:
    """Construct an equilibrat-able LJ system of at least ``natoms``.

    The FCC cell count is rounded up so the actual particle count is
    the smallest ``4k^3 >= natoms``; check ``system.natoms``.
    """
    require_positive_int("natoms", natoms)
    require_positive("density", density)
    require_positive("temperature", temperature)
    rng = rng or RandomSource(0, name="md")

    cells = 1
    while 4 * cells**3 < natoms:
        cells += 1
    n_actual = 4 * cells**3
    box_length = (n_actual / density) ** (1.0 / 3.0)
    positions = fcc_lattice(cells, box_length)

    velocities = rng.generator.normal(
        scale=np.sqrt(temperature), size=(n_actual, 3)
    )
    velocities -= velocities.mean(axis=0)  # zero net momentum
    # Rescale to hit the target temperature exactly.
    system = ParticleSystem(positions, velocities, box_length)
    current = system.temperature()
    system.velocities *= np.sqrt(temperature / current)
    return system
