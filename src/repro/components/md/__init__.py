"""A real miniature molecular dynamics engine.

A Lennard-Jones fluid in reduced units with periodic boundaries, cell
lists, velocity-Verlet integration and a velocity-rescaling thermostat.
This is a genuine MD code (forces, energies, and integration are all
computed for real) standing in for GROMACS in the in-process examples:
it produces real frames that flow through the real DTL into the real
analysis kernels, exercising the entire runtime code path end to end.

It is deliberately small-N — the point is fidelity of the *coupling*,
not nanoseconds/day.
"""

from repro.components.md.engine import MDEngine, MDFrame
from repro.components.md.forces import lennard_jones_forces
from repro.components.md.integrator import VelocityVerletIntegrator
from repro.components.md.system import ParticleSystem

__all__ = [
    "MDEngine",
    "MDFrame",
    "ParticleSystem",
    "VelocityVerletIntegrator",
    "lennard_jones_forces",
]
