"""Analytic model of the MD simulation component.

Calibrated against the paper's setup: GROMACS simulating the GltPh
transporter system (~250k atoms all-atom with solvent) at a 2 fs time
step, writing a frame every ``stride`` MD steps. On 16 Cori Haswell
cores such a system sustains roughly 10 ns/day, i.e. ~17 ms per MD
step, so one in situ step (stride 800) computes for ~14 s. The model's
default ``seconds_per_atom_step`` reproduces that operating point; the
paper's orderings depend only on ratios, not on the absolute scale.
"""

from __future__ import annotations

from typing import Optional

from repro.components.base import (
    ComponentKind,
    ComponentModel,
    ComponentSpec,
    amdahl_time,
)
from repro.components.profiles import simulation_profile
from repro.platform.contention import WorkloadProfile
from repro.util.validation import (
    require_in_range,
    require_positive,
    require_positive_int,
)

#: bytes per atom staged per frame: x/y/z single-precision positions.
BYTES_PER_ATOM_FRAME = 3 * 4


class MDSimulationModel(ComponentModel):
    """Cost model of one MD simulation coupled into an ensemble member.

    Parameters
    ----------
    name:
        Component name (unique within the workflow ensemble).
    cores:
        Physical cores allocated (16 in the paper's experiments).
    natoms:
        Atoms in the molecular system (drives compute and frame size).
    stride:
        MD steps between staged frames (800 in the paper): one in situ
        step covers ``stride`` MD integration steps.
    seconds_per_atom_step:
        Single-core compute cost per atom per MD step. The default
        (7.0e-7) yields ~14 s per in situ step at the paper's settings.
    serial_fraction:
        Amdahl serial fraction of the MD step (communication,
        constraints, PME serial phases).
    """

    def __init__(
        self,
        name: str,
        cores: int = 16,
        natoms: int = 250_000,
        stride: int = 800,
        seconds_per_atom_step: float = 7.0e-7,
        serial_fraction: float = 0.05,
        profile: Optional[WorkloadProfile] = None,
    ) -> None:
        spec = ComponentSpec(name=name, kind=ComponentKind.SIMULATION, cores=cores)
        super().__init__(spec, profile or simulation_profile(name, natoms=natoms))
        self.natoms = require_positive_int("natoms", natoms)
        self.stride = require_positive_int("stride", stride)
        self.seconds_per_atom_step = require_positive(
            "seconds_per_atom_step", seconds_per_atom_step
        )
        self.serial_fraction = require_in_range(
            "serial_fraction", serial_fraction, 0.0, 1.0
        )

    def solo_compute_time(self) -> float:
        """Duration of the S stage: ``stride`` MD steps at ``cores``."""
        single_core_step = self.natoms * self.seconds_per_atom_step
        return self.stride * amdahl_time(
            single_core_step, self.serial_fraction, self.cores
        )

    def payload_bytes(self) -> int:
        """One frame of single-precision atomic positions."""
        return self.natoms * BYTES_PER_ATOM_FRAME
