"""Rolling telemetry over observed stage durations.

The executor's ``_stage`` choke point hands every scheduled stage
instance — the same ``(member, component, stage, step, duration)``
tuples the :class:`~repro.runtime.executor.TimelineRecorder` captures —
to a :class:`TelemetryFeed`. The feed compares each *observed* duration
against the *modeled* effective duration the platform predicted for
that component's stage, and folds the ratio into a rolling per-node
window.

Only compute stages (S, A) feed the windows: io stages are priced by
the DTL model, whose bandwidth drift is out of scope for this loop, and
mixing their (always ≈ 1) ratios in would dilute the detector's
signal. The feed never reads the DES clock and never schedules events,
so an instrumented run's trace is byte-identical to a bare one.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Tuple

from repro.util.validation import require_positive_int

#: stages whose observed/modeled ratios feed the per-node windows.
TELEMETRY_STAGES: Tuple[str, ...] = ("S", "A")


@dataclass(frozen=True)
class StageObservation:
    """One stage instance's observed-vs-modeled comparison."""

    member: str
    component: str
    stage: str
    step: int
    node: int
    observed: float
    modeled: float

    @property
    def ratio(self) -> float:
        """Observed over modeled duration (1.0 when modeled is zero)."""
        if self.modeled <= 0.0:
            return 1.0
        return self.observed / self.modeled


class TelemetryFeed:
    """Rolling per-node observed/modeled stage-time ratios.

    Parameters
    ----------
    window:
        Number of most-recent compute-stage observations kept per
        node; :meth:`node_ratio` is their mean.
    """

    def __init__(self, window: int = 8) -> None:
        require_positive_int("window", window)
        self.window = window
        self.observations = 0
        self._windows: Dict[int, Deque[float]] = {}

    def observe(self, observation: StageObservation) -> None:
        """Fold one stage observation into its node's window."""
        self.observations += 1
        if observation.stage not in TELEMETRY_STAGES:
            return
        window = self._windows.get(observation.node)
        if window is None:
            window = deque(maxlen=self.window)
            self._windows[observation.node] = window
        window.append(observation.ratio)

    def node_ratio(self, node: int) -> float:
        """Windowed mean observed/modeled ratio for ``node``.

        1.0 for nodes with no observations yet — "no news" must read
        as "on model", never as drift.
        """
        window = self._windows.get(node)
        if not window:
            return 1.0
        return sum(window) / len(window)

    def samples(self, node: int) -> int:
        """Observations currently in ``node``'s window."""
        window = self._windows.get(node)
        return len(window) if window else 0

    def slowdown_factors(self, num_nodes: int) -> Dict[int, float]:
        """Calibrated per-node slowdown map for the re-planner.

        Node → windowed mean ratio, clamped below at 1.0: a node that
        happens to run *faster* than modeled must not be rewarded with
        sub-nominal calibrated costs (that would just be jitter).
        """
        return {
            node: max(1.0, self.node_ratio(node))
            for node in range(num_nodes)
        }

    def reset_node(self, node: int) -> None:
        """Drop a node's window (after a migration changed its load)."""
        self._windows.pop(node, None)

    def reset(self) -> None:
        """Drop every window (a global re-placement happened)."""
        self._windows.clear()
