"""Online rescheduling under performance drift.

Closes the measure → detect → re-plan → migrate loop over the DES
executor: a :class:`~repro.reschedule.telemetry.TelemetryFeed` streams
observed stage durations out of the ``_stage`` choke point, a
:class:`~repro.reschedule.detector.DriftDetector` runs a windowed
ratio test (hysteresis + minimum dwell) against the platform model's
predictions, a :class:`~repro.reschedule.replanner.Replanner`
warm-starts the annealer from the current placement under calibrated
per-node costs and gates every candidate on an explicit DTL
state-transfer price, and the
:class:`~repro.reschedule.controller.RescheduleController` executes
accepted migrations at step boundaries. Drift itself is injectable
(:mod:`repro.reschedule.drift`): seeded multiplicative step/ramp
schedules styled after :mod:`repro.faults`. A run with the controller
attached and zero drift is byte-identical to a bare run.
"""

from repro.reschedule.controller import (
    RescheduleController,
    ScriptedMigration,
    reschedule_counters,
    reset_reschedule_counters,
)
from repro.reschedule.detector import DriftAlert, DriftDetector
from repro.reschedule.drift import (
    DriftEvent,
    DriftKind,
    DriftModel,
    DriftSchedule,
    RandomDriftModel,
    StaticDriftModel,
    coerce_drift,
)
from repro.reschedule.migration import (
    ComponentMove,
    MemberBinding,
    MigrationCostModel,
    MigrationPlan,
    MigrationRecord,
)
from repro.reschedule.replanner import (
    ReplanDecision,
    Replanner,
    calibrated_remaining_makespan,
)
from repro.reschedule.telemetry import StageObservation, TelemetryFeed

__all__ = [
    "ComponentMove",
    "DriftAlert",
    "DriftDetector",
    "DriftEvent",
    "DriftKind",
    "DriftModel",
    "DriftSchedule",
    "MemberBinding",
    "MigrationCostModel",
    "MigrationPlan",
    "MigrationRecord",
    "RandomDriftModel",
    "ReplanDecision",
    "Replanner",
    "RescheduleController",
    "ScriptedMigration",
    "StageObservation",
    "StaticDriftModel",
    "TelemetryFeed",
    "calibrated_remaining_makespan",
    "coerce_drift",
    "reschedule_counters",
    "reset_reschedule_counters",
]
