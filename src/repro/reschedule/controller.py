"""The online rescheduling loop: measure → detect → re-plan → migrate.

:class:`RescheduleController` is the object the executor carries
through a run. It sits on two hooks:

- ``observe`` — called from the executor's ``_stage`` choke point for
  every scheduled stage instance (the same tuples the
  :class:`~repro.runtime.executor.TimelineRecorder` sees). The
  controller folds the observed/modeled ratio into its
  :class:`~repro.reschedule.telemetry.TelemetryFeed` and
  :class:`~repro.reschedule.detector.DriftDetector`; when the detector
  fires, the :class:`~repro.reschedule.replanner.Replanner` runs
  *synchronously* (in zero DES time) and, past the migration-cost
  gate, a pending re-placement is staged;
- ``begin_step`` — called by each simulation process at the top of
  every step. A member with a staged re-placement adopts it here — at
  a step boundary, never mid-stage: its
  :class:`~repro.reschedule.migration.MemberBinding` is swapped to the
  new effective stages and the member pauses for its share of the
  state-transfer delay (the DTL put/get price of its moved
  components), charged in DES time.

Neither hook touches the DES :class:`~repro.des.engine.Environment` or
draws from the executor's RNG streams, so a run with the controller
attached and *no drift* is byte-identical to a bare run — the detector
cannot fire on exact 1.0 ratios, so no binding is ever swapped.

:class:`ScriptedMigration` bypasses detection and the gate entirely:
it forces a migration to a given placement at a given step, which is
how the invariant tests drive *exact-mode* (noise-free, drift-free)
runs through real migrations.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.reschedule.detector import DriftDetector
from repro.reschedule.migration import (
    ComponentMove,
    MemberBinding,
    MigrationRecord,
    bindings_for,
)
from repro.reschedule.replanner import Replanner, ReplanDecision
from repro.reschedule.telemetry import (
    TELEMETRY_STAGES,
    StageObservation,
    TelemetryFeed,
)
from repro.runtime.effective import compute_effective_stages
from repro.util.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dtl.base import DataTransportLayer
    from repro.platform.cluster import Cluster
    from repro.runtime.effective import EffectiveMember
    from repro.runtime.placement import EnsemblePlacement
    from repro.runtime.spec import EnsembleSpec

# module counters: cumulative across runs, surfaced by GET /stats and
# the benchmarks (mirrors repro.faults.batched.engine_counters).
_COUNTER_LOCK = threading.Lock()
_COUNTERS: Dict[str, int] = {
    "runs": 0,
    "replans_triggered": 0,
    "replans_accepted": 0,
    "migrations": 0,
    "components_moved": 0,
}


def reschedule_counters() -> Dict[str, int]:
    """Cumulative controller counters (process-wide)."""
    with _COUNTER_LOCK:
        return dict(_COUNTERS)


def reset_reschedule_counters() -> None:
    """Zero the cumulative counters (benchmarks isolate measurements)."""
    with _COUNTER_LOCK:
        for key in _COUNTERS:
            _COUNTERS[key] = 0


def _bump(key: str, amount: int = 1) -> None:
    with _COUNTER_LOCK:
        _COUNTERS[key] += amount


@dataclass(frozen=True)
class ScriptedMigration:
    """Force a migration to ``placement`` when any member begins ``step``."""

    step: int
    placement: "EnsemblePlacement"

    def __post_init__(self) -> None:
        if self.step < 1:
            raise ValidationError(
                f"scripted migrations adopt at a step boundary and need "
                f"step >= 1, got {self.step}"
            )


class _PendingSwap:
    """One member's staged re-placement awaiting its step boundary."""

    __slots__ = ("member", "delay", "moves")

    def __init__(
        self,
        member: "EffectiveMember",
        delay: float,
        moves: Tuple[ComponentMove, ...],
    ) -> None:
        self.member = member
        self.delay = delay
        self.moves = moves


class RescheduleController:
    """Close the loop: telemetry in, migrations out.

    Construct with policy knobs only; the executor binds the run
    geometry via :meth:`bind_run` before the DES starts.

    Parameters
    ----------
    window / threshold / hysteresis / min_dwell:
        Detector configuration (see :class:`DriftDetector`); ``window``
        also sizes the telemetry feed's rolling per-node windows.
    min_gain:
        Net DES-seconds a candidate must save, after paying its
        migration bill, to be adopted.
    max_migrations:
        Migration waves allowed per run (thrash guard).
    use_annealer / annealer_seed / annealer_plateau:
        Warm-started annealing inside the re-planner.
    scripted:
        Forced migrations (tests/benchmarks); detection is disabled
        when any are given.
    """

    def __init__(
        self,
        window: int = 4,
        threshold: float = 1.25,
        hysteresis: float = 0.5,
        min_dwell: int = 4,
        min_gain: float = 0.0,
        max_migrations: int = 4,
        use_annealer: bool = True,
        annealer_seed: int = 0,
        annealer_plateau: int = 30,
        scripted: Sequence[ScriptedMigration] = (),
    ) -> None:
        self.window = window
        self.threshold = threshold
        self.hysteresis = hysteresis
        self.min_dwell = min_dwell
        self.min_gain = min_gain
        self.max_migrations = max_migrations
        self.use_annealer = use_annealer
        self.annealer_seed = annealer_seed
        self.annealer_plateau = annealer_plateau
        self.scripted = tuple(
            sorted(scripted, key=lambda event: event.step)
        )
        # per-run state (populated by bind_run)
        self.bindings: Dict[str, MemberBinding] = {}
        self.telemetry = TelemetryFeed(window=window)
        self.detector = DriftDetector(
            window=window,
            threshold=threshold,
            hysteresis=hysteresis,
            min_dwell=min_dwell,
        )
        self.migration_log: List[MigrationRecord] = []
        self.replans_triggered = 0
        self.replans_accepted = 0
        self.replans_rejected = 0
        self.migrations_executed = 0
        self.components_moved = 0
        self.last_decision: Optional[ReplanDecision] = None
        self._spec: Optional["EnsembleSpec"] = None
        self._cluster: Optional["Cluster"] = None
        self._dtl: Optional["DataTransportLayer"] = None
        self._replanner: Optional[Replanner] = None
        self._current_placement: Optional["EnsemblePlacement"] = None
        self._component_info: Dict[str, Tuple[str, Optional[int]]] = {}
        self._n_steps: Dict[str, int] = {}
        self._current_step: Dict[str, int] = {}
        self._pending: Dict[str, _PendingSwap] = {}
        self._last_moves: Dict[str, Tuple[int, Tuple[ComponentMove, ...], float]] = {}
        self._scripted_cursor = 0
        self._cooldown_until = 0

    # -- run binding ----------------------------------------------------------
    def bind_run(
        self,
        spec: "EnsembleSpec",
        placement: "EnsemblePlacement",
        cluster: "Cluster",
        dtl: "DataTransportLayer",
        effective: Sequence["EffectiveMember"],
    ) -> None:
        """Attach one run's geometry; called by the executor pre-DES."""
        self._spec = spec
        self._cluster = cluster
        self._dtl = dtl
        self._current_placement = placement
        self._replanner = Replanner(
            spec,
            cluster,
            dtl,
            cores_per_node=cluster.node_spec.cores,
            use_annealer=self.use_annealer,
            annealer_seed=self.annealer_seed,
            annealer_plateau=self.annealer_plateau,
            min_gain=self.min_gain,
        )
        self.bindings = bindings_for(effective)
        self._component_info = {}
        self._n_steps = {}
        self._current_step = {}
        for member in spec.members:
            self._n_steps[member.name] = member.n_steps
            self._current_step[member.name] = 0
            self._component_info[member.simulation.name] = (member.name, None)
            for j, ana in enumerate(member.analyses):
                self._component_info[ana.name] = (member.name, j)
        self._pending = {}
        self._last_moves = {}
        self._scripted_cursor = 0
        self._cooldown_until = 0
        self.migration_log = []
        self.last_decision = None
        _bump("runs")

    @property
    def placement(self) -> Optional["EnsemblePlacement"]:
        """The placement the ensemble is (or will be) running under."""
        return self._current_placement

    # -- the _stage hook ------------------------------------------------------
    def observe(
        self,
        member_name: str,
        component: str,
        stage: str,
        step: int,
        duration: float,
        step_time: float,
    ) -> None:
        """Telemetry + detection; runs the re-planner on an alert.

        Reads only the arguments — never the DES clock, never the
        executor's RNG — so observing is trace-invisible.
        """
        info = self._component_info.get(component)
        if info is None:  # pragma: no cover - defensive
            return
        owner, index = info
        bound = self.bindings[owner].member
        model = (
            bound.simulation if index is None else bound.analyses[index]
        )
        modeled = (
            model.compute_time if stage in ("S", "A") else model.io_time
        )
        observation = StageObservation(
            member=member_name,
            component=component,
            stage=stage,
            step=step,
            node=model.node,
            observed=duration,
            modeled=modeled,
        )
        self.telemetry.observe(observation)
        if self.scripted or stage not in TELEMETRY_STAGES:
            return
        if self._pending or self.migrations_executed >= self.max_migrations:
            return
        if step < self._cooldown_until:
            return
        alert = self.detector.observe(model.node, observation.ratio, step)
        if alert is not None:
            self._attempt_replan(step)

    # -- the step-boundary hook ----------------------------------------------
    def begin_step(self, member_name: str, step: int) -> float:
        """Adopt any staged re-placement; return this member's pause.

        Called by the member's simulation process at the top of every
        step. The returned delay (0.0 almost always) is the member's
        share of the state-transfer bill; the executor charges it as a
        DES timeout *before* the step's S stage.
        """
        self._current_step[member_name] = step
        self._maybe_trigger_scripted(step)
        pending = self._pending.pop(member_name, None)
        if pending is None:
            return 0.0
        self.bindings[member_name].rebind(pending.member)
        if pending.moves:
            self.migrations_executed += 1
            self.components_moved += len(pending.moves)
            _bump("migrations")
            _bump("components_moved", len(pending.moves))
        self._last_moves[member_name] = (step, pending.moves, pending.delay)
        return pending.delay

    def note_migrated(
        self, member_name: str, step: int, start: float, end: float
    ) -> MigrationRecord:
        """Record the executed pause (the executor supplies the clocks)."""
        noted_step, moves, delay = self._last_moves.pop(member_name)
        record = MigrationRecord(
            member=member_name,
            step=noted_step,
            moves=moves,
            delay=delay,
            start=start,
            end=end,
        )
        self.migration_log.append(record)
        return record

    # -- re-planning ----------------------------------------------------------
    def _remaining_steps(self) -> Dict[str, int]:
        return {
            name: max(0, self._n_steps[name] - self._current_step[name])
            for name in self._n_steps
        }

    def _attempt_replan(self, step: int) -> None:
        assert self._replanner is not None
        self.replans_triggered += 1
        _bump("replans_triggered")
        slowdown = self.telemetry.slowdown_factors(
            self._current_placement.num_nodes
        )
        decision = self._replanner.replan(
            self._current_placement,
            slowdown,
            self._remaining_steps(),
        )
        self.last_decision = decision
        self._cooldown_until = step + self.min_dwell
        if not decision.accepted:
            self.replans_rejected += 1
            return
        self.replans_accepted += 1
        _bump("replans_accepted")
        self._stage_pending(decision.placement, decision.plan)

    def _maybe_trigger_scripted(self, step: int) -> None:
        while (
            self._scripted_cursor < len(self.scripted)
            and self.scripted[self._scripted_cursor].step <= step
        ):
            event = self.scripted[self._scripted_cursor]
            self._scripted_cursor += 1
            assert self._replanner is not None
            plan = self._replanner.cost_model.plan_moves(
                self._spec, self._current_placement, event.placement
            )
            self._stage_pending(event.placement, plan)

    def _stage_pending(self, placement: "EnsemblePlacement", plan) -> None:
        """Stage a re-placement: every member adopts at its next boundary.

        All members re-bind (a move changes node contention for
        everyone), but only members whose own components moved pay a
        transfer delay.
        """
        effective = compute_effective_stages(
            self._spec, placement, self._cluster, self._dtl
        )
        self._pending = {
            member.name: _PendingSwap(
                member=member,
                delay=plan.member_cost(member.name),
                moves=plan.member_moves(member.name),
            )
            for member in effective
        }
        self._current_placement = placement
        # the load everyone sees just changed: stale windows would
        # either mask new drift or re-alarm on pre-migration history
        self.telemetry.reset()
        for node in range(placement.num_nodes):
            self.detector.reset_node(node)

    # -- reporting ------------------------------------------------------------
    def summary(self) -> dict:
        """JSON-ready counters for the CLI / service payloads."""
        return {
            "replans_triggered": self.replans_triggered,
            "replans_accepted": self.replans_accepted,
            "replans_rejected": self.replans_rejected,
            "migrations": self.migrations_executed,
            "components_moved": self.components_moved,
            "alerts": len(self.detector.alerts),
            "observations": self.telemetry.observations,
            "migration_records": [
                {
                    "member": record.member,
                    "step": record.step,
                    "delay": record.delay,
                    "moves": [
                        {
                            "component": move.component,
                            "from_node": move.from_node,
                            "to_node": move.to_node,
                            "cost": move.cost,
                        }
                        for move in record.moves
                    ],
                }
                for record in self.migration_log
            ],
        }
