"""Windowed drift detection over telemetry ratios.

The :class:`DriftDetector` watches the per-node observed/modeled
ratios the :class:`~repro.reschedule.telemetry.TelemetryFeed` computes
and decides when a node has genuinely drifted — as opposed to one
noisy stage instance. Three guards keep it from crying wolf:

- **full window** — a node must accumulate ``window`` compute-stage
  observations before it can alarm at all, and the *windowed mean*
  (not any single ratio) must cross ``threshold``;
- **hysteresis** — after an alarm the node's trigger dis-arms and only
  re-arms once its mean falls back below the release level
  ``1 + hysteresis * (threshold - 1)``, so a node sitting exactly at
  the threshold cannot re-alarm every observation;
- **minimum dwell** — a node cannot alarm again within ``min_dwell``
  steps of its previous alarm, bounding how often the (expensive)
  re-planner can be invoked per node.

With zero drift and zero timing noise every ratio is exactly 1.0, so
the detector provably never fires; the hypothesis suite extends that
to noisy runs (noise half-width well below ``threshold - 1``) across
seeds.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.util.errors import ValidationError
from repro.util.validation import require_positive_int


@dataclass(frozen=True)
class DriftAlert:
    """One detector firing: ``node`` looked ``ratio``x slow at ``step``."""

    node: int
    step: int
    ratio: float

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DriftAlert(n{self.node} @ step {self.step} "
            f"x{self.ratio:.3g})"
        )


class _NodeState:
    """Per-node window + hysteresis arming state."""

    __slots__ = ("window", "armed", "last_alert_step")

    def __init__(self, maxlen: int) -> None:
        self.window: Deque[float] = deque(maxlen=maxlen)
        self.armed = True
        self.last_alert_step: Optional[int] = None


class DriftDetector:
    """Windowed ratio test with hysteresis and a minimum-dwell guard.

    Parameters
    ----------
    window:
        Observations per node required (and averaged) before alarming.
    threshold:
        Windowed mean ratio at or above which a node alarms (> 1).
    hysteresis:
        Fraction of the threshold excess that must decay before the
        node re-arms, in [0, 1]: release level is
        ``1 + hysteresis * (threshold - 1)``.
    min_dwell:
        Minimum steps between consecutive alarms of one node (>= 1).
    """

    def __init__(
        self,
        window: int = 4,
        threshold: float = 1.25,
        hysteresis: float = 0.5,
        min_dwell: int = 4,
    ) -> None:
        require_positive_int("window", window)
        require_positive_int("min_dwell", min_dwell)
        if threshold <= 1.0:
            raise ValidationError(
                f"threshold must be > 1, got {threshold!r}"
            )
        if not 0.0 <= hysteresis <= 1.0:
            raise ValidationError(
                f"hysteresis must lie in [0, 1], got {hysteresis!r}"
            )
        self.window = window
        self.threshold = threshold
        self.hysteresis = hysteresis
        self.min_dwell = min_dwell
        self.release = 1.0 + hysteresis * (threshold - 1.0)
        self.alerts: List[DriftAlert] = []
        self._nodes: Dict[int, _NodeState] = {}

    def observe(self, node: int, ratio: float, step: int) -> Optional[DriftAlert]:
        """Fold one ratio sample in; return an alert if the node fired."""
        state = self._nodes.get(node)
        if state is None:
            state = _NodeState(self.window)
            self._nodes[node] = state
        state.window.append(ratio)
        if len(state.window) < self.window:
            return None
        mean = sum(state.window) / len(state.window)
        if not state.armed:
            if mean < self.release:
                state.armed = True
            return None
        if mean < self.threshold:
            return None
        if (
            state.last_alert_step is not None
            and step - state.last_alert_step < self.min_dwell
        ):
            return None
        state.armed = False
        state.last_alert_step = step
        alert = DriftAlert(node=node, step=step, ratio=mean)
        self.alerts.append(alert)
        return alert

    def reset_node(self, node: int) -> None:
        """Forget a node's window and re-arm it (post-migration)."""
        state = self._nodes.get(node)
        if state is not None:
            state.window.clear()
            state.armed = True

    def mean_ratio(self, node: int) -> float:
        """Current windowed mean for ``node`` (1.0 when empty)."""
        state = self._nodes.get(node)
        if state is None or not state.window:
            return 1.0
        return sum(state.window) / len(state.window)
