"""Mid-run re-planning under calibrated stage costs.

When the drift detector fires, the :class:`Replanner` decides whether
the ensemble should move — and where to. Three ingredients:

**Calibrated remaining makespan.** The platform model's effective
stage times (:func:`~repro.runtime.effective.compute_effective_stages`)
are re-priced under the telemetry's per-node slowdown factors: compute
stages (S, A) on a node observed running ``f``x slow cost ``f``x their
modeled time. Each member's remaining time from its current step
boundary is then the Eq. 1 recurrence — ``remaining_steps * sigma +
drain`` with ``sigma = max(S+W, max_j(R_j+A_j))`` — and the ensemble
remaining makespan is the slowest member's.

**Candidate generation.** The node-label-free
:class:`~repro.search.cache.StageCache` signatures that make the
delta-evaluation annealer fast cannot carry node-attributed slowdowns,
so calibration is layered *around* the annealer rather than pushed
through it: the :class:`~repro.scheduler.annealing
.SimulatedAnnealingPolicy` is warm-started from the *current*
placement to propose structurally good layouts at nominal costs, and a
greedy hill-climb over single-component, capacity-respecting moves
then optimizes the calibrated remaining makespan directly (which is
what steers components *off* the drifted nodes).

**The migration-cost gate.** A candidate is accepted only if its
calibrated remaining makespan *plus* the full state-transfer price
(:class:`~repro.reschedule.migration.MigrationCostModel`: DTL put/get
of every moved component's state, charged in DES time) undercuts the
static plan's remaining makespan by more than ``min_gain``. Staying
put is always admissible — a rescheduler that cannot beat its own
migration bill leaves the placement alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.dtl.base import DataTransportLayer
from repro.platform.cluster import Cluster
from repro.reschedule.migration import MigrationCostModel, MigrationPlan
from repro.runtime.effective import compute_effective_stages
from repro.runtime.placement import EnsemblePlacement
from repro.runtime.spec import EnsembleSpec
from repro.scheduler.annealing import SimulatedAnnealingPolicy
from repro.util.validation import require_non_negative


def calibrated_remaining_makespan(
    spec: EnsembleSpec,
    placement: EnsemblePlacement,
    cluster: Cluster,
    dtl: DataTransportLayer,
    slowdown: Dict[int, float],
    remaining_steps: Dict[str, int],
) -> float:
    """Predicted ensemble time-to-finish under per-node slowdowns.

    Compute stages are inflated by their node's calibrated factor
    (default 1.0); io stages keep their DTL-modeled price. Members
    with no steps left contribute zero.
    """
    effective = compute_effective_stages(spec, placement, cluster, dtl)
    worst = 0.0
    for member in effective:
        steps = remaining_steps.get(member.name, member.n_steps)
        if steps <= 0:
            continue
        sim = member.simulation
        s_cal = sim.compute_time * slowdown.get(sim.node, 1.0)
        sim_active = s_cal + sim.io_time
        ana_active = max(
            ana.io_time + ana.compute_time * slowdown.get(ana.node, 1.0)
            for ana in member.analyses
        )
        sigma = max(sim_active, ana_active)
        drain = sim_active + ana_active - sigma
        worst = max(worst, steps * sigma + drain)
    return worst


@dataclass(frozen=True)
class ReplanDecision:
    """The re-planner's verdict on one drift alert.

    ``placement`` is the chosen target (== the current placement when
    ``accepted`` is False); ``predicted_gain`` is the calibrated
    remaining-makespan saving *net of* the migration cost.
    """

    accepted: bool
    reason: str
    placement: EnsemblePlacement
    plan: MigrationPlan
    static_remaining: float
    candidate_remaining: float
    migration_cost: float

    @property
    def predicted_gain(self) -> float:
        return self.static_remaining - (
            self.candidate_remaining + self.migration_cost
        )


class Replanner:
    """Propose and gate mid-run placement changes.

    Parameters
    ----------
    spec / cluster / dtl / cores_per_node:
        The running ensemble's geometry (the same objects the executor
        holds, so calibrated predictions and migration prices use the
        run's own platform model).
    use_annealer:
        Warm-start a :class:`SimulatedAnnealingPolicy` from the
        current placement to propose a structural candidate (default).
        The calibrated hill-climb always runs regardless.
    annealer_seed / annealer_plateau:
        Determinism and effort of the warm-started anneal.
    min_gain:
        Minimum *net* DES-seconds saving a candidate must promise
        (after paying its migration bill) to be accepted.
    max_passes:
        Hill-climb sweep limit (each sweep tries every component's
        best single move; it stops early at a local optimum).
    """

    def __init__(
        self,
        spec: EnsembleSpec,
        cluster: Cluster,
        dtl: DataTransportLayer,
        cores_per_node: int,
        use_annealer: bool = True,
        annealer_seed: int = 0,
        annealer_plateau: int = 30,
        min_gain: float = 0.0,
        max_passes: int = 4,
    ) -> None:
        require_non_negative("min_gain", min_gain)
        self.spec = spec
        self.cluster = cluster
        self.dtl = dtl
        self.cores_per_node = cores_per_node
        self.use_annealer = use_annealer
        self.annealer_seed = annealer_seed
        self.annealer_plateau = annealer_plateau
        self.min_gain = min_gain
        self.max_passes = max_passes
        self.cost_model = MigrationCostModel(dtl)
        self._component_cores: List[int] = []
        for member in spec.members:
            self._component_cores.append(member.simulation.cores)
            self._component_cores.extend(a.cores for a in member.analyses)

    # -- calibrated evaluation ---------------------------------------------
    def _remaining(
        self,
        placement: EnsemblePlacement,
        slowdown: Dict[int, float],
        remaining_steps: Dict[str, int],
    ) -> float:
        return calibrated_remaining_makespan(
            self.spec, placement, self.cluster, self.dtl, slowdown,
            remaining_steps,
        )

    # -- candidate generation ----------------------------------------------
    def _hill_climb(
        self,
        start: EnsemblePlacement,
        slowdown: Dict[int, float],
        remaining_steps: Dict[str, int],
    ) -> EnsemblePlacement:
        """Greedy best-single-move descent on calibrated remaining time."""
        flatten = SimulatedAnnealingPolicy._flatten
        unflatten = SimulatedAnnealingPolicy._unflatten
        num_nodes = start.num_nodes
        flat = flatten(self.spec, start)
        demand = SimulatedAnnealingPolicy._demand(self.spec, flat)
        best_value = self._remaining(start, slowdown, remaining_steps)
        for _ in range(self.max_passes):
            best_move: Optional[Tuple[int, int]] = None
            for idx in range(len(flat)):
                old_node = flat[idx]
                cores = self._component_cores[idx]
                for node in range(num_nodes):
                    if node == old_node:
                        continue
                    if demand.get(node, 0) + cores > self.cores_per_node:
                        continue
                    flat[idx] = node
                    value = self._remaining(
                        unflatten(self.spec, flat, num_nodes),
                        slowdown,
                        remaining_steps,
                    )
                    flat[idx] = old_node
                    if value < best_value:
                        best_value = value
                        best_move = (idx, node)
            if best_move is None:
                break
            idx, node = best_move
            cores = self._component_cores[idx]
            demand[flat[idx]] -= cores
            demand[node] = demand.get(node, 0) + cores
            flat[idx] = node
        return unflatten(self.spec, flat, num_nodes)

    def _candidates(
        self,
        current: EnsemblePlacement,
        slowdown: Dict[int, float],
        remaining_steps: Dict[str, int],
    ) -> List[EnsemblePlacement]:
        candidates = [self._hill_climb(current, slowdown, remaining_steps)]
        if self.use_annealer:
            annealer = SimulatedAnnealingPolicy(
                seed=self.annealer_seed,
                plateau=self.annealer_plateau,
            )
            annealed = annealer.place(
                self.spec,
                current.num_nodes,
                self.cores_per_node,
                initial_placement=current,
            )
            candidates.append(
                self._hill_climb(annealed, slowdown, remaining_steps)
            )
        # dedup while preserving order (hill-climbed twins are common)
        seen = set()
        unique: List[EnsemblePlacement] = []
        for candidate in candidates:
            key = tuple(
                (mp.simulation_node, mp.analysis_nodes)
                for mp in candidate.members
            )
            if key not in seen:
                seen.add(key)
                unique.append(candidate)
        return unique

    # -- the gate ------------------------------------------------------------
    def replan(
        self,
        current: EnsemblePlacement,
        slowdown: Dict[int, float],
        remaining_steps: Dict[str, int],
    ) -> ReplanDecision:
        """Evaluate candidates; accept only past the migration-cost gate."""
        static_remaining = self._remaining(
            current, slowdown, remaining_steps
        )
        best_placement = current
        best_plan = MigrationPlan(moves=())
        best_total = static_remaining
        best_remaining = static_remaining
        for candidate in self._candidates(
            current, slowdown, remaining_steps
        ):
            plan = self.cost_model.plan_moves(self.spec, current, candidate)
            if not plan.moves:
                continue
            remaining = self._remaining(
                candidate, slowdown, remaining_steps
            )
            total = remaining + plan.total_cost
            if total < best_total:
                best_total = total
                best_placement = candidate
                best_plan = plan
                best_remaining = remaining
        if not best_plan.moves:
            return ReplanDecision(
                accepted=False,
                reason="no candidate beats the current placement",
                placement=current,
                plan=best_plan,
                static_remaining=static_remaining,
                candidate_remaining=static_remaining,
                migration_cost=0.0,
            )
        gain = static_remaining - best_total
        if gain <= self.min_gain:
            return ReplanDecision(
                accepted=False,
                reason=(
                    f"predicted gain {gain:.4g}s does not clear the "
                    f"migration-cost gate (min_gain={self.min_gain:g})"
                ),
                placement=current,
                plan=MigrationPlan(moves=()),
                static_remaining=static_remaining,
                candidate_remaining=best_remaining,
                migration_cost=best_plan.total_cost,
            )
        return ReplanDecision(
            accepted=True,
            reason=(
                f"{len(best_plan.moves)} move(s) save a predicted "
                f"{gain:.4g}s net of migration cost"
            ),
            placement=best_placement,
            plan=best_plan,
            static_remaining=static_remaining,
            candidate_remaining=best_remaining,
            migration_cost=best_plan.total_cost,
        )
