"""Migration primitives: cost model, bindings, and the migration log.

A mid-run migration quiesces a component at a step boundary, replays
its state over the DTL to the destination node, rebinds it, and
resumes. This module prices that state transfer and carries the
bookkeeping:

- :class:`MigrationCostModel` charges each move as a DTL *put* of the
  component's state on the source node plus a *get* on the
  destination — ``write_cost(src, bytes).total +
  read_cost(src, dst, bytes).total`` at the platform's current
  bandwidth — so migration cost and steady-state io cost share one
  price list (see ``docs/RESCHEDULING.md`` for the derivation);
- :class:`MemberBinding` is the one mutable cell between the executor's
  DES processes and the controller: processes re-read
  ``binding.member`` at each step boundary, and a migration swaps the
  bound :class:`~repro.runtime.effective.EffectiveMember` there —
  never mid-stage;
- :class:`MigrationRecord` is the audited trail of every executed
  migration (who moved, where, what it cost, and the DES clock span
  of the pause).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Tuple

from repro.util.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dtl.base import DataTransportLayer
    from repro.runtime.effective import EffectiveMember
    from repro.runtime.placement import EnsemblePlacement
    from repro.runtime.spec import EnsembleSpec


@dataclass(frozen=True)
class ComponentMove:
    """One component relocating ``from_node`` → ``to_node``."""

    member: str
    component: str
    from_node: int
    to_node: int
    state_bytes: float
    cost: float

    def __post_init__(self) -> None:
        if self.from_node == self.to_node:
            raise ValidationError(
                f"{self.component}: move source and destination are both "
                f"node {self.from_node}"
            )
        if self.cost < 0.0 or self.state_bytes < 0.0:
            raise ValidationError(
                f"{self.component}: negative move cost/state size"
            )


@dataclass(frozen=True)
class MigrationPlan:
    """A set of moves with its total DES-time price."""

    moves: Tuple[ComponentMove, ...]

    @property
    def total_cost(self) -> float:
        return sum(move.cost for move in self.moves)

    def member_cost(self, member: str) -> float:
        """The pause charged to one member (its own components' moves)."""
        return sum(m.cost for m in self.moves if m.member == member)

    def member_moves(self, member: str) -> Tuple[ComponentMove, ...]:
        return tuple(m for m in self.moves if m.member == member)


@dataclass(frozen=True)
class MigrationRecord:
    """One executed migration: the audited pause of one member."""

    member: str
    step: int
    moves: Tuple[ComponentMove, ...]
    delay: float
    start: float
    end: float


class MemberBinding:
    """The mutable component→node binding one member runs under.

    The DES processes re-read :attr:`member` at every step boundary;
    :meth:`rebind` is only ever called from the controller at such a
    boundary, so a member's stages within one step always come from a
    single consistent :class:`EffectiveMember`.
    """

    __slots__ = ("member",)

    def __init__(self, member: "EffectiveMember") -> None:
        self.member = member

    def rebind(self, member: "EffectiveMember") -> None:
        self.member = member


class MigrationCostModel:
    """Price component moves as DTL state put/get at current bandwidth."""

    def __init__(self, dtl: "DataTransportLayer") -> None:
        self.dtl = dtl

    def move_cost(self, src: int, dst: int, state_bytes: float) -> float:
        """DES seconds to replay ``state_bytes`` from ``src`` to ``dst``."""
        put = self.dtl.write_cost(src, state_bytes).total
        get = self.dtl.read_cost(src, dst, state_bytes).total
        return put + get

    def plan_moves(
        self,
        spec: "EnsembleSpec",
        current: "EnsemblePlacement",
        target: "EnsemblePlacement",
    ) -> MigrationPlan:
        """Every component whose node differs, priced individually.

        Component state is its coupling payload (``payload_bytes``) —
        the in-memory working set the DTL already knows how to move.
        """
        moves = []
        for member_spec, cur, tgt in zip(
            spec.members, current.members, target.members
        ):
            components = [
                (member_spec.simulation, cur.simulation_node,
                 tgt.simulation_node),
            ]
            components.extend(
                (ana, c, t)
                for ana, c, t in zip(
                    member_spec.analyses, cur.analysis_nodes,
                    tgt.analysis_nodes,
                )
            )
            for model, src, dst in components:
                if src == dst:
                    continue
                state = float(model.payload_bytes())
                moves.append(
                    ComponentMove(
                        member=member_spec.name,
                        component=model.name,
                        from_node=src,
                        to_node=dst,
                        state_bytes=state,
                        cost=self.move_cost(src, dst, state),
                    )
                )
        return MigrationPlan(moves=tuple(moves))


def bindings_for(members) -> Dict[str, MemberBinding]:
    """One binding per effective member, keyed by member name."""
    return {member.name: MemberBinding(member) for member in members}
