"""Seeded performance-drift schedules for the DES executor.

The rescheduling loop needs something to react to: nodes that slowly
(or suddenly) stop delivering the stage times the platform model
promised. Mirroring :mod:`repro.faults.models`, drift is compiled into
an immutable :class:`DriftSchedule` *before* the simulation starts —
every event is a node-attributed multiplicative slowdown pinned to a
start step — and the executor consults the schedule as the run
unfolds. Scheduling ahead of time keeps drift randomness strictly
separate from the executor's timing-noise streams: a zero-rate model
yields an empty schedule and the run is byte-identical to an
undrifted baseline.

Drift kinds
-----------
``STEP``
    From ``start_step`` on, stage times on the node are inflated by a
    constant ``magnitude`` factor (> 1) — a neighbour job landed, a
    core went into thermal throttling.
``RAMP``
    From ``start_step`` on, the inflation grows linearly by
    ``magnitude`` per step (saturating at ``cap``) — creeping
    contention, a memory leak in a co-tenant.

Drift multiplies the *nominal jittered* duration at the executor's
``_stage`` choke point, after the noise draw, so the RNG streams of a
drifted run are identical to the baseline's — which is what makes the
zero-drift byte-identity guarantee (and delta-style comparisons
between static and rescheduled runs) possible.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.util.errors import ValidationError
from repro.util.rng import RandomSource

#: stage codes a drift event can target (§3.1 notation). Compute
#: stages are the default — io stages are dominated by the DTL model,
#: whose bandwidth drift is out of scope for this loop.
DRIFT_STAGES: Tuple[str, ...] = ("S", "W", "R", "A")

#: default stages a drift event inflates: the compute stages.
DEFAULT_DRIFT_STAGES: Tuple[str, ...] = ("S", "A")


class DriftKind(enum.Enum):
    """The drift shapes the executor understands."""

    STEP = "step"
    RAMP = "ramp"


@dataclass(frozen=True)
class DriftEvent:
    """One node-attributed slowdown starting at ``start_step``.

    ``magnitude`` semantics depend on ``kind``: for ``STEP`` it is the
    constant inflation factor (> 1); for ``RAMP`` it is the per-step
    inflation increment (> 0), saturating at ``cap``.
    """

    node: int
    kind: DriftKind
    start_step: int
    magnitude: float
    cap: float = 4.0
    stages: Tuple[str, ...] = DEFAULT_DRIFT_STAGES

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValidationError(
                f"drift node must be >= 0, got {self.node}"
            )
        if self.start_step < 0:
            raise ValidationError(
                f"drift start_step must be >= 0, got {self.start_step}"
            )
        for stage in self.stages:
            if stage not in DRIFT_STAGES:
                raise ValidationError(
                    f"drift stage must be one of {DRIFT_STAGES}, "
                    f"got {stage!r}"
                )
        if self.kind is DriftKind.STEP:
            if self.magnitude <= 1.0:
                raise ValidationError(
                    f"step-drift magnitude is an inflation factor and "
                    f"must be > 1, got {self.magnitude!r}"
                )
        elif self.magnitude <= 0.0:
            raise ValidationError(
                f"ramp-drift magnitude is the per-step increment and "
                f"must be > 0, got {self.magnitude!r}"
            )
        if self.cap < 1.0:
            raise ValidationError(
                f"drift cap must be >= 1, got {self.cap!r}"
            )

    def factor_at(self, step: int) -> float:
        """The inflation this event contributes at ``step``."""
        if step < self.start_step:
            return 1.0
        if self.kind is DriftKind.STEP:
            return min(self.magnitude, self.cap)
        return min(
            1.0 + self.magnitude * (step - self.start_step + 1), self.cap
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DriftEvent({self.kind.value} @ n{self.node} from step "
            f"{self.start_step} x{self.magnitude:g})"
        )


class DriftSchedule:
    """An immutable set of drift events with per-node lookup.

    :meth:`factor` is evaluated against a component's *current* node —
    migrating a component off a drifted node restores its nominal
    stage times, which is the effect the rescheduler exploits.
    """

    def __init__(self, events: Iterable[DriftEvent] = ()) -> None:
        ordered = sorted(
            events, key=lambda e: (e.node, e.start_step, e.kind.value)
        )
        self._events: Tuple[DriftEvent, ...] = tuple(ordered)
        self._by_node: Dict[int, List[DriftEvent]] = {}
        for event in self._events:
            self._by_node.setdefault(event.node, []).append(event)

    @property
    def events(self) -> Tuple[DriftEvent, ...]:
        """All events in deterministic (node, start_step) order."""
        return self._events

    @property
    def is_empty(self) -> bool:
        return not self._events

    def __len__(self) -> int:
        return len(self._events)

    def factor(self, node: int, stage: str, step: int) -> float:
        """Combined inflation of ``stage`` on ``node`` at ``step``.

        Multiple events on one node compose multiplicatively (two
        independent co-tenants each cost their own factor).
        """
        events = self._by_node.get(node)
        if not events:
            return 1.0
        factor = 1.0
        for event in events:
            if stage in event.stages:
                factor *= event.factor_at(step)
        return factor

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DriftSchedule({len(self._events)} events)"


class DriftModel:
    """Base class: compile a drift schedule for one run's geometry."""

    def build_schedule(
        self, num_nodes: int, n_steps: int
    ) -> DriftSchedule:  # pragma: no cover - interface
        raise NotImplementedError


class StaticDriftModel(DriftModel):
    """A fixed, explicit event list — the scripted-scenario model."""

    def __init__(self, events: Sequence[DriftEvent] = ()) -> None:
        self._schedule = DriftSchedule(events)

    def build_schedule(self, num_nodes: int, n_steps: int) -> DriftSchedule:
        for event in self._schedule.events:
            if event.node >= num_nodes:
                raise ValidationError(
                    f"drift event targets node {event.node} but the run "
                    f"spans {num_nodes} nodes"
                )
        return self._schedule


class RandomDriftModel(DriftModel):
    """Seeded random drift: each node independently drifts with ``rate``.

    A drifting node draws its kind uniformly from ``kinds``, its onset
    uniformly over the run, and its magnitude uniformly from
    ``magnitude_range`` (step factor) or scaled into a per-step
    increment (ramp). ``rate=0`` compiles an empty schedule, so the
    run is byte-identical to an undrifted baseline.
    """

    def __init__(
        self,
        rate: float,
        seed: int = 0,
        kinds: Sequence[DriftKind] = (DriftKind.STEP, DriftKind.RAMP),
        magnitude_range: Tuple[float, float] = (1.5, 3.0),
        stages: Tuple[str, ...] = DEFAULT_DRIFT_STAGES,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValidationError(
                f"drift rate must lie in [0, 1], got {rate!r}"
            )
        if not kinds:
            raise ValidationError("kinds must be non-empty")
        lo, hi = magnitude_range
        if not 1.0 < lo <= hi:
            raise ValidationError(
                f"magnitude_range must satisfy 1 < lo <= hi, got "
                f"{magnitude_range!r}"
            )
        self.rate = rate
        self.seed = seed
        self.kinds = tuple(kinds)
        self.magnitude_range = (lo, hi)
        self.stages = tuple(stages)

    def build_schedule(self, num_nodes: int, n_steps: int) -> DriftSchedule:
        if self.rate == 0.0:
            return DriftSchedule()
        gen = RandomSource(self.seed, name="drift").generator
        lo, hi = self.magnitude_range
        events: List[DriftEvent] = []
        for node in range(num_nodes):
            if gen.random() >= self.rate:
                continue
            kind = self.kinds[int(gen.integers(0, len(self.kinds)))]
            start = int(gen.integers(0, max(1, n_steps)))
            factor = float(gen.uniform(lo, hi))
            if kind is DriftKind.STEP:
                magnitude = factor
            else:
                # spread the drawn factor over the remaining steps so a
                # ramp reaches roughly the same terminal inflation
                remaining = max(1, n_steps - start)
                magnitude = (factor - 1.0) / remaining
            events.append(
                DriftEvent(
                    node=node,
                    kind=kind,
                    start_step=start,
                    magnitude=magnitude,
                    cap=max(hi, 1.0),
                    stages=self.stages,
                )
            )
        return DriftSchedule(events)


def coerce_drift(
    drift: Optional[object], num_nodes: int, n_steps: int
) -> Optional[DriftSchedule]:
    """Normalize an executor ``drift=`` argument into a schedule.

    Accepts ``None``, a ready :class:`DriftSchedule`, or any
    :class:`DriftModel`; empty schedules collapse to ``None`` so the
    executor's hot path can gate on a single ``is None`` test.
    """
    if drift is None:
        return None
    if isinstance(drift, DriftSchedule):
        schedule = drift
    elif isinstance(drift, DriftModel):
        schedule = drift.build_schedule(num_nodes, n_steps)
    else:
        raise ValidationError(
            f"drift must be a DriftSchedule or DriftModel, got "
            f"{type(drift).__name__}"
        )
    return None if schedule.is_empty else schedule
