"""Resilience sweep: robust F(P) over failure rates x recovery policies.

Goes beyond the paper's ideal steady state: every configuration in the
candidate set (by default the paper's C1 placements plus two C2
book-ends) is executed under fault injection at several failure rates,
once per recovery policy, and ranked by the *robust* objective — mean
F(P^{U,A,P}) measured from the perturbed traces. The table answers two
questions the ideal analysis cannot:

1. Does the paper's co-location ranking survive failures? (Mostly yes
   at low rates; high rates compress the spread as recovery overhead
   dominates stage composition.)
2. Which recovery policy preserves the most objective per unit of
   failure rate for a given placement shape?

Columns: ``config, rate, policy, F_ideal, F_robust, inflation,
goodput, rank`` — ``rank`` orders configurations within one
``(rate, policy)`` cell by robust F, best first.

A second experiment, :func:`run_surrogate_validation`, validates the
closed-form robustness surrogate (:mod:`repro.faults.analytic`)
against DES trials: for every (config, rate) cell it tabulates the
surrogate's expected inflation, the DES mean inflation, and their
relative error — the table reproduced in ``docs/FAULT_MODELS.md``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.configs.base import build_spec
from repro.configs.table2 import TABLE2_CONFIGS
from repro.configs.table4 import TABLE4_CONFIGS
from repro.experiments.base import ExperimentResult
from repro.faults.analytic import surrogate_resilience
from repro.faults.models import FaultKind, RandomFailureModel
from repro.faults.recovery import POLICY_NAMES, make_policy
from repro.monitoring.resilience import surrogate_agreement
from repro.runtime.executor import EnsembleExecutor
from repro.scheduler.robust import (
    crash_straggler_factory,
    robust_score_placement,
)
from repro.util.errors import ValidationError
from repro.util.validation import require_positive_int

#: the paper's one-analysis C1 set plus the C2 book-ends (two analyses).
DEFAULT_CONFIGS = ("C1.1", "C1.2", "C1.3", "C1.4", "C1.5", "C2.1", "C2.8")
#: per-site fault probabilities swept (>= 3 per the acceptance bar).
DEFAULT_RATES = (0.02, 0.05, 0.10)
#: fault kinds injected by the sweep's failure model.
DEFAULT_KINDS = (FaultKind.CRASH, FaultKind.STRAGGLER)


def run_resilience(
    config_names: Sequence[str] = DEFAULT_CONFIGS,
    rates: Sequence[float] = DEFAULT_RATES,
    policies: Sequence[str] = POLICY_NAMES,
    trials: int = 2,
    n_steps: int = 10,
    base_seed: int = 0,
    timing_noise: float = 0.0,
) -> ExperimentResult:
    """Sweep failure rates x recovery policies over the candidate set."""
    require_positive_int("trials", trials)
    require_positive_int("n_steps", n_steps)
    if not rates:
        raise ValidationError("at least one failure rate required")
    if not policies:
        raise ValidationError("at least one recovery policy required")
    all_configs = {**TABLE2_CONFIGS, **TABLE4_CONFIGS}
    unknown = [n for n in config_names if n not in all_configs]
    if unknown:
        raise ValidationError(
            f"unknown configurations {unknown}; valid: {sorted(all_configs)}"
        )

    rows: List[Dict] = []
    for ci, name in enumerate(config_names):
        config = all_configs[name]
        spec = build_spec(config, n_steps=n_steps)
        placement = config.placement()
        for ri, rate in enumerate(rates):
            factory = crash_straggler_factory(rate, DEFAULT_KINDS)
            for policy_name in policies:
                score = robust_score_placement(
                    spec,
                    placement,
                    factory,
                    make_policy(policy_name),
                    trials=trials,
                    # decorrelate fault schedules across sweep cells
                    base_seed=base_seed + 1009 * ci + 101 * ri,
                    timing_noise=timing_noise,
                    name=name,
                )
                rows.append(
                    {
                        "config": name,
                        "rate": rate,
                        "policy": policy_name,
                        "F_ideal": score.ideal_objective,
                        "F_robust": score.objective,
                        "inflation": score.mean_inflation,
                        "goodput": score.mean_goodput,
                        "rank": 0,  # assigned below
                    }
                )

    # rank configurations within each (rate, policy) cell by robust F
    for rate in rates:
        for policy_name in policies:
            cell = [
                r
                for r in rows
                if r["rate"] == rate and r["policy"] == policy_name
            ]
            for rank, row in enumerate(
                sorted(cell, key=lambda r: r["F_robust"], reverse=True),
                start=1,
            ):
                row["rank"] = rank
    rows.sort(key=lambda r: (r["rate"], r["policy"], r["rank"]))

    return ExperimentResult(
        experiment_id="resilience",
        title="robust F(P) under failure rates x recovery policies",
        columns=[
            "config",
            "rate",
            "policy",
            "F_ideal",
            "F_robust",
            "inflation",
            "goodput",
            "rank",
        ],
        rows=rows,
        notes=(
            f"{trials} fault-schedule draws per cell, {n_steps} steps, "
            f"kinds={'+'.join(k.value for k in DEFAULT_KINDS)}; rank is "
            "within each (rate, policy) cell, best robust F first"
        ),
    )


#: configurations validated by :func:`run_surrogate_validation`.
VALIDATION_CONFIGS = ("C1.1", "C1.4", "C2.1")
#: rate grid for the surrogate validation (spans rare to frequent).
VALIDATION_RATES = (0.01, 0.05, 0.10)


def run_surrogate_validation(
    config_names: Sequence[str] = VALIDATION_CONFIGS,
    rates: Sequence[float] = VALIDATION_RATES,
    policy: str = "retry",
    trials: int = 4,
    n_steps: int = 12,
    base_seed: int = 0,
) -> ExperimentResult:
    """Validate the analytic surrogate against DES inflation.

    For every (config, rate) cell: the surrogate's expected makespan
    inflation, the mean inflation over ``trials`` independent DES
    fault draws, and their relative error
    (:func:`~repro.monitoring.resilience.surrogate_agreement`). Only
    crash faults are injected — the kind every recovery policy
    handles — so the table isolates the surrogate's slack-absorption
    and recovery-delay model.

    Columns: ``config, rate, inflation_surrogate, inflation_des,
    rel_error``.
    """
    require_positive_int("trials", trials)
    require_positive_int("n_steps", n_steps)
    if not rates:
        raise ValidationError("at least one failure rate required")
    all_configs = {**TABLE2_CONFIGS, **TABLE4_CONFIGS}
    unknown = [n for n in config_names if n not in all_configs]
    if unknown:
        raise ValidationError(
            f"unknown configurations {unknown}; valid: {sorted(all_configs)}"
        )

    rows: List[Dict] = []
    for ci, name in enumerate(config_names):
        config = all_configs[name]
        spec = build_spec(config, n_steps=n_steps)
        placement = config.placement()
        for ri, rate in enumerate(rates):
            report = surrogate_resilience(
                spec,
                placement,
                RandomFailureModel(
                    rate=rate, kinds=(FaultKind.CRASH,), seed=0
                ),
                make_policy(policy),
            )
            baseline = EnsembleExecutor(spec, placement).run()
            inflations = []
            for t in range(trials):
                result = EnsembleExecutor(
                    spec,
                    placement,
                    failure_model=RandomFailureModel(
                        rate=rate,
                        kinds=(FaultKind.CRASH,),
                        seed=base_seed + 1009 * ci + 101 * ri + t,
                    ),
                    recovery=make_policy(policy),
                ).run()
                inflations.append(
                    result.ensemble_makespan / baseline.ensemble_makespan
                )
            des_inflation = float(np.mean(inflations))
            rows.append(
                {
                    "config": name,
                    "rate": rate,
                    "inflation_surrogate": report.expected_inflation,
                    "inflation_des": des_inflation,
                    "rel_error": surrogate_agreement(
                        report.expected_inflation, inflations
                    ),
                }
            )

    return ExperimentResult(
        experiment_id="surrogate-validation",
        title="analytic robustness surrogate vs DES inflation",
        columns=[
            "config",
            "rate",
            "inflation_surrogate",
            "inflation_des",
            "rel_error",
        ],
        rows=rows,
        notes=(
            f"{trials} DES fault draws per cell, {n_steps} steps, "
            f"crash faults only, policy={policy!r}; rel_error = "
            "|surrogate - mean(DES)| / mean(DES)"
        ),
    )
