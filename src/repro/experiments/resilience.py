"""Resilience sweep: robust F(P) over failure rates x recovery policies.

Goes beyond the paper's ideal steady state: every configuration in the
candidate set (by default the paper's C1 placements plus two C2
book-ends) is executed under fault injection at several failure rates,
once per recovery policy, and ranked by the *robust* objective — mean
F(P^{U,A,P}) measured from the perturbed traces. The table answers two
questions the ideal analysis cannot:

1. Does the paper's co-location ranking survive failures? (Mostly yes
   at low rates; high rates compress the spread as recovery overhead
   dominates stage composition.)
2. Which recovery policy preserves the most objective per unit of
   failure rate for a given placement shape?

Columns: ``config, rate, policy, F_ideal, F_robust, inflation,
goodput, rank`` — ``rank`` orders configurations within one
``(rate, policy)`` cell by robust F, best first.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.configs.base import build_spec
from repro.configs.table2 import TABLE2_CONFIGS
from repro.configs.table4 import TABLE4_CONFIGS
from repro.experiments.base import ExperimentResult
from repro.faults.models import FaultKind
from repro.faults.recovery import POLICY_NAMES, make_policy
from repro.scheduler.robust import (
    crash_straggler_factory,
    robust_score_placement,
)
from repro.util.errors import ValidationError
from repro.util.validation import require_positive_int

#: the paper's one-analysis C1 set plus the C2 book-ends (two analyses).
DEFAULT_CONFIGS = ("C1.1", "C1.2", "C1.3", "C1.4", "C1.5", "C2.1", "C2.8")
#: per-site fault probabilities swept (>= 3 per the acceptance bar).
DEFAULT_RATES = (0.02, 0.05, 0.10)
#: fault kinds injected by the sweep's failure model.
DEFAULT_KINDS = (FaultKind.CRASH, FaultKind.STRAGGLER)


def run_resilience(
    config_names: Sequence[str] = DEFAULT_CONFIGS,
    rates: Sequence[float] = DEFAULT_RATES,
    policies: Sequence[str] = POLICY_NAMES,
    trials: int = 2,
    n_steps: int = 10,
    base_seed: int = 0,
    timing_noise: float = 0.0,
) -> ExperimentResult:
    """Sweep failure rates x recovery policies over the candidate set."""
    require_positive_int("trials", trials)
    require_positive_int("n_steps", n_steps)
    if not rates:
        raise ValidationError("at least one failure rate required")
    if not policies:
        raise ValidationError("at least one recovery policy required")
    all_configs = {**TABLE2_CONFIGS, **TABLE4_CONFIGS}
    unknown = [n for n in config_names if n not in all_configs]
    if unknown:
        raise ValidationError(
            f"unknown configurations {unknown}; valid: {sorted(all_configs)}"
        )

    rows: List[Dict] = []
    for ci, name in enumerate(config_names):
        config = all_configs[name]
        spec = build_spec(config, n_steps=n_steps)
        placement = config.placement()
        for ri, rate in enumerate(rates):
            factory = crash_straggler_factory(rate, DEFAULT_KINDS)
            for policy_name in policies:
                score = robust_score_placement(
                    spec,
                    placement,
                    factory,
                    make_policy(policy_name),
                    trials=trials,
                    # decorrelate fault schedules across sweep cells
                    base_seed=base_seed + 1009 * ci + 101 * ri,
                    timing_noise=timing_noise,
                    name=name,
                )
                rows.append(
                    {
                        "config": name,
                        "rate": rate,
                        "policy": policy_name,
                        "F_ideal": score.ideal_objective,
                        "F_robust": score.objective,
                        "inflation": score.mean_inflation,
                        "goodput": score.mean_goodput,
                        "rank": 0,  # assigned below
                    }
                )

    # rank configurations within each (rate, policy) cell by robust F
    for rate in rates:
        for policy_name in policies:
            cell = [
                r
                for r in rows
                if r["rate"] == rate and r["policy"] == policy_name
            ]
            for rank, row in enumerate(
                sorted(cell, key=lambda r: r["F_robust"], reverse=True),
                start=1,
            ):
                row["rank"] = rank
    rows.sort(key=lambda r: (r["rate"], r["policy"], r["rank"]))

    return ExperimentResult(
        experiment_id="resilience",
        title="robust F(P) under failure rates x recovery policies",
        columns=[
            "config",
            "rate",
            "policy",
            "F_ideal",
            "F_robust",
            "inflation",
            "goodput",
            "rank",
        ],
        rows=rows,
        notes=(
            f"{trials} fault-schedule draws per cell, {n_steps} steps, "
            f"kinds={'+'.join(k.value for k in DEFAULT_KINDS)}; rank is "
            "within each (rate, policy) cell, best robust F first"
        ),
    )
