"""Experiment harness: one module per paper figure.

Each module regenerates the data behind one of the paper's evaluation
artifacts, returning a structured :class:`~repro.experiments.base
.ExperimentResult` with a text rendering. The benchmark suite under
``benchmarks/`` times these and asserts the paper's qualitative
orderings; ``EXPERIMENTS.md`` records paper-vs-measured per artifact.

- :mod:`repro.experiments.fig3` — component-level metrics across
  Table 2 configurations.
- :mod:`repro.experiments.fig4` — ensemble member makespans.
- :mod:`repro.experiments.fig5` — workflow ensemble makespans.
- :mod:`repro.experiments.fig7` — §3.4 analysis-core sweep.
- :mod:`repro.experiments.fig8` — F(P) over both stage orders,
  configuration set 1 (one analysis per simulation).
- :mod:`repro.experiments.fig9` — F(P) over both stage orders,
  configuration set 2 (two analyses per simulation).
- :mod:`repro.experiments.headline` — the co-location improvement
  spread (abstract's "up to four orders of magnitude" claim).
- :mod:`repro.experiments.ablation` — design-choice ablations
  (contention model, data locality, progress tax).
- :mod:`repro.experiments.resilience` — beyond the paper: robust F(P)
  rankings under fault injection (failure rates x recovery policies).
- :mod:`repro.experiments.coschedule` — beyond the paper: co-scheduled
  ensemble streams vs FIFO-exclusive provisioning across cluster
  objectives.
"""

from repro.experiments.base import (
    ExperimentResult,
    run_configuration,
    run_configuration_trials,
)
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9
from repro.experiments.headline import run_headline
from repro.experiments.ablation import (
    run_contention_ablation,
    run_locality_ablation,
    run_tax_ablation,
)
from repro.experiments.coschedule import run_coschedule
from repro.experiments.heterogeneous import run_heterogeneous
from repro.experiments.resilience import (
    run_resilience,
    run_surrogate_validation,
)
from repro.experiments.scaling import run_scaling
from repro.experiments.stride import run_stride_sweep
from repro.experiments.tiers import run_tier_matrix

__all__ = [
    "ExperimentResult",
    "run_configuration",
    "run_configuration_trials",
    "run_contention_ablation",
    "run_coschedule",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_headline",
    "run_heterogeneous",
    "run_locality_ablation",
    "run_resilience",
    "run_scaling",
    "run_stride_sweep",
    "run_surrogate_validation",
    "run_tax_ablation",
    "run_tier_matrix",
]
