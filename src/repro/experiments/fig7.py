"""Figure 7: the §3.4 analysis-core sweep.

With the simulation fixed at the user-provided settings (16 cores,
stride 800), sweep the analysis core count 1..32 in the co-location-
free placement and report, per count: the in situ step ``sigma*``, the
simulation side ``S* + W*``, the analysis side ``R* + A*``, and the
computational efficiency ``E``.

Paper claims (checked by ``benchmarks/test_bench_fig7.py``): at 1-4
cores the analysis outlasts the simulation (``sigma* = R* + A*``, Idle
Simulation); from 8 cores on Eq. 4 holds and ``sigma*`` is minimized;
``E`` peaks at 8 cores, which is what the heuristic selects.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.components.analysis import EigenAnalysisModel
from repro.components.simulation import MDSimulationModel
from repro.core.heuristic import (
    CoreAllocationChoice,
    choose_analysis_cores,
)
from repro.core.stages import MemberStages
from repro.experiments.base import ExperimentResult
from repro.runtime.analytic import predict_member_stages
from repro.runtime.placement import EnsemblePlacement, MemberPlacement
from repro.runtime.spec import EnsembleSpec, MemberSpec

COLUMNS = [
    "analysis_cores",
    "sigma",
    "simulation_active",
    "analysis_active",
    "efficiency",
    "feasible",
]

DEFAULT_CORE_COUNTS = (1, 2, 4, 8, 16, 32)


def _member_evaluator(
    sim_cores: int,
    stride: int,
    natoms: int,
):
    """Build the Cf-placement stage evaluator the heuristic sweeps."""

    def evaluate(analysis_cores: int) -> MemberStages:
        sim = MDSimulationModel(
            "sweep.sim", cores=sim_cores, natoms=natoms, stride=stride
        )
        ana = EigenAnalysisModel("sweep.ana", cores=analysis_cores, natoms=natoms)
        spec = EnsembleSpec(
            "sweep",
            (MemberSpec("member", sim, (ana,), n_steps=1),),
        )
        placement = EnsemblePlacement(
            num_nodes=2, members=(MemberPlacement(0, (1,)),)
        )
        return predict_member_stages(spec, placement)["member"]

    return evaluate


def run_fig7(
    core_counts: Sequence[int] = DEFAULT_CORE_COUNTS,
    sim_cores: int = 16,
    stride: int = 800,
    natoms: int = 250_000,
) -> ExperimentResult:
    """Regenerate Figure 7's data: the analysis-core sweep."""
    choice = heuristic_choice(core_counts, sim_cores, stride, natoms)
    rows: List[Dict] = [
        {
            "analysis_cores": p.cores,
            "sigma": p.sigma,
            "simulation_active": p.simulation_active,
            "analysis_active": p.analysis_active,
            "efficiency": p.efficiency,
            "feasible": p.feasible,
        }
        for p in choice.sweep
    ]
    return ExperimentResult(
        experiment_id="fig7",
        title="In situ step and efficiency vs analysis core count (§3.4)",
        columns=COLUMNS,
        rows=rows,
        notes=f"heuristic selects {choice.cores} cores "
        f"(E = {choice.point.efficiency:.3f})",
    )


def heuristic_choice(
    core_counts: Sequence[int] = DEFAULT_CORE_COUNTS,
    sim_cores: int = 16,
    stride: int = 800,
    natoms: int = 250_000,
) -> CoreAllocationChoice:
    """The §3.4 heuristic's selection over the sweep."""
    evaluate = _member_evaluator(sim_cores, stride, natoms)
    choice = choose_analysis_cores(evaluate, core_counts)
    if choice is None:
        raise RuntimeError(
            "no analysis core count satisfies Eq. 4 for these settings"
        )
    return choice
