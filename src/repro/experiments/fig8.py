"""Figure 8: F(P) along both indicator stage orders, configuration set 1.

For each two-member Table 2 configuration (C1.1-C1.5) and each stage
of the two orders explored in §5.2 —

- path 1: ``P^U -> P^{U,P} -> P^{U,P,A}``
- path 2: ``P^U -> P^{U,A} -> P^{U,A,P}``

— compute every member's indicator, aggregate with the objective
``F = mean - std`` (Eq. 9), and average over trials.

Paper claims (checked by ``benchmarks/test_bench_fig8.py``):

1. ``P^{U,P}`` cannot separate C1.4 from C1.5 (same node count, similar
   efficiency) while ``P^{U,A}`` can (placement indicator 1/2 vs 1);
2. the full indicator ranks C1.5 first, C1.4 second, above C1.1, C1.2,
   and C1.3;
3. both paths end at the same final value
   (``P^{U,A,P} = P^{U,P,A}``).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.configs.table2 import TABLE2_TWO_MEMBER, table2
from repro.core.pipeline import STAGE_PATHS, ensemble_objective_paths
from repro.experiments.base import (
    DEFAULT_N_STEPS,
    DEFAULT_NOISE,
    DEFAULT_TRIALS,
    ExperimentResult,
    run_configuration_trials,
    trial_mean,
)

COLUMNS = ["configuration"] + list(STAGE_PATHS)


def run_fig8(
    trials: int = DEFAULT_TRIALS,
    n_steps: int = DEFAULT_N_STEPS,
    timing_noise: float = DEFAULT_NOISE,
    base_seed: int = 0,
    config_names: Sequence[str] = TABLE2_TWO_MEMBER,
) -> ExperimentResult:
    """Regenerate Figure 8's data: F(P) per stage per configuration."""
    rows: List[Dict] = []
    for config in table2():
        if config.name not in config_names:
            continue
        results = run_configuration_trials(
            config,
            trials=trials,
            n_steps=n_steps,
            base_seed=base_seed,
            timing_noise=timing_noise,
        )
        per_trial = [
            ensemble_objective_paths(
                [m.measurement for m in r.members], r.total_nodes
            )
            for r in results
        ]
        row: Dict = {"configuration": config.name}
        for label in STAGE_PATHS:
            row[label] = trial_mean([t[label] for t in per_trial])
        rows.append(row)
    return ExperimentResult(
        experiment_id="fig8",
        title="F(P) on different P orders, one analysis per simulation "
        "(higher is better)",
        columns=COLUMNS,
        rows=rows,
        notes=f"{trials} trials, {n_steps} in situ steps, "
        f"noise {timing_noise:.0%}",
    )


def ranking(result: ExperimentResult, stage_label: str) -> List[str]:
    """Configuration names ordered best-first at one indicator stage."""
    pairs = [(row["configuration"], row[stage_label]) for row in result.rows]
    return [name for name, _ in sorted(pairs, key=lambda p: -p[1])]
