"""Co-scheduling sweep: cluster objectives vs the FIFO-exclusive baseline.

The paper provisions one ensemble at a time; :mod:`repro.coschedule`
packs a *stream* of ensembles onto one cluster. This experiment
quantifies what that buys: the canonical mixed-deadline stream is run
once per cluster objective (pure weighted utility, fairness-tempered,
deadline-aware) and per cluster size, against the FIFO-exclusive
baseline that grants each ensemble the whole machine in arrival
order.

Columns: ``nodes, objective, utilization, fifo_utilization, gain,
makespan, fifo_makespan, deadlines_met, repartitions`` — ``gain`` is
the utilization ratio (co-scheduled over FIFO), the quantity the
benchmark floor holds at >= 1.20, and ``deadlines_met`` counts
completions that beat their deadline (requests without one count as
met).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.coschedule import (
    ClusterObjective,
    CoScheduler,
    canonical_mixed_deadline_stream,
    fifo_exclusive_schedule,
)
from repro.experiments.base import ExperimentResult
from repro.util.errors import ValidationError
from repro.util.validation import require_positive_int

#: objective profiles swept: (label, utility, fairness, deadline).
DEFAULT_OBJECTIVES: Tuple[Tuple[str, float, float, float], ...] = (
    ("utility", 1.0, 0.0, 0.0),
    ("fair", 1.0, 1.0, 0.0),
    ("deadline", 1.0, 0.0, 1.0),
)
#: cluster sizes swept (the canonical bench scenario runs at 6).
DEFAULT_NODES: Tuple[int, ...] = (4, 6)


def run_coschedule(
    node_counts: Sequence[int] = DEFAULT_NODES,
    objectives: Sequence[Tuple[str, float, float, float]] = (
        DEFAULT_OBJECTIVES
    ),
    num_requests: int = 4,
    arrival_spacing: float = 30.0,
    cores_per_node: int = 32,
) -> ExperimentResult:
    """Sweep cluster objectives x cluster sizes on the canonical stream."""
    require_positive_int("num_requests", num_requests)
    if not node_counts:
        raise ValidationError("at least one cluster size required")
    if not objectives:
        raise ValidationError("at least one objective profile required")

    stream = canonical_mixed_deadline_stream(
        num_requests=num_requests, arrival_spacing=arrival_spacing
    )
    rows: List[Dict] = []
    for nodes in node_counts:
        fifo = fifo_exclusive_schedule(
            stream, nodes, cores_per_node=cores_per_node
        )
        for label, utility, fairness, deadline in objectives:
            result = CoScheduler(
                total_nodes=nodes,
                cores_per_node=cores_per_node,
                objective=ClusterObjective(
                    utility_weight=utility,
                    fairness_weight=fairness,
                    deadline_weight=deadline,
                ),
            ).run(stream)
            met = sum(
                1 for c in result.completions if c.met_deadline is not False
            )
            repartitions = sum(
                1 for event in result.timeline if event.kind == "allocation"
            )
            rows.append(
                {
                    "nodes": nodes,
                    "objective": label,
                    "utilization": result.utilization,
                    "fifo_utilization": fifo.utilization,
                    "gain": (
                        result.utilization / fifo.utilization
                        if fifo.utilization > 0
                        else float("inf")
                    ),
                    "makespan": result.makespan,
                    "fifo_makespan": fifo.makespan,
                    "deadlines_met": met,
                    "repartitions": repartitions,
                }
            )
    return ExperimentResult(
        experiment_id="coschedule",
        title="Co-scheduled stream vs FIFO-exclusive provisioning",
        columns=[
            "nodes",
            "objective",
            "utilization",
            "fifo_utilization",
            "gain",
            "makespan",
            "fifo_makespan",
            "deadlines_met",
            "repartitions",
        ],
        rows=rows,
        notes=(
            f"{num_requests}-request canonical mixed-deadline stream, "
            f"arrivals every {arrival_spacing:g}s; gain is co-scheduled "
            "over FIFO utilization (bench floor 1.20 at 6 nodes)"
        ),
    )
