"""Figure 9: F(P) along both indicator stage orders, configuration set 2.

Same protocol as Figure 8 over the Table 4 configurations (two
analyses per simulation, C2.1-C2.8).

Paper claims (checked by ``benchmarks/test_bench_fig9.py``):

1. ``P^{U,P}`` splits the configurations into two groups by node count
   (C2.6-C2.8 use 2 nodes, the rest 3);
2. the final indicator ranks C2.8 — each member fully co-located on
   its own node — first;
3. adding A first isolates C2.8 immediately and the final stage
   further separates C2.6/C2.7 from C2.1/C2.2/C2.4.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.configs.table4 import table4
from repro.core.pipeline import STAGE_PATHS, ensemble_objective_paths
from repro.experiments.base import (
    DEFAULT_N_STEPS,
    DEFAULT_NOISE,
    DEFAULT_TRIALS,
    ExperimentResult,
    run_configuration_trials,
    trial_mean,
)
from repro.experiments.fig8 import COLUMNS


def run_fig9(
    trials: int = DEFAULT_TRIALS,
    n_steps: int = DEFAULT_N_STEPS,
    timing_noise: float = DEFAULT_NOISE,
    base_seed: int = 0,
    config_names: Sequence[str] = tuple(c.name for c in table4()),
) -> ExperimentResult:
    """Regenerate Figure 9's data: F(P) per stage per configuration."""
    rows: List[Dict] = []
    for config in table4():
        if config.name not in config_names:
            continue
        results = run_configuration_trials(
            config,
            trials=trials,
            n_steps=n_steps,
            base_seed=base_seed,
            timing_noise=timing_noise,
        )
        per_trial = [
            ensemble_objective_paths(
                [m.measurement for m in r.members], r.total_nodes
            )
            for r in results
        ]
        row: Dict = {"configuration": config.name}
        for label in STAGE_PATHS:
            row[label] = trial_mean([t[label] for t in per_trial])
        rows.append(row)
    return ExperimentResult(
        experiment_id="fig9",
        title="F(P) on different P orders, two analyses per simulation "
        "(higher is better)",
        columns=COLUMNS,
        rows=rows,
        notes=f"{trials} trials, {n_steps} in situ steps, "
        f"noise {timing_noise:.0%}",
    )
