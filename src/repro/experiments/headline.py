"""The abstract's headline claim: co-location improvement spread.

The paper's abstract reports "improvements of up to four orders of
magnitude when co-locating simulation and coupled analyses within a
single computational host". The spread comes from the objective
``F = mean - std``: configurations whose members perform very unevenly
have ``F`` near (or below) zero, so the ratio between the best
co-located configuration and the worst alternative can explode.

This experiment measures that spread over both configuration sets and
both the intermediate and final indicator stages, reporting
``F_best / F_worst`` (only over positive F values, plus the count of
non-positive ones, which represent *unbounded* improvement).
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.core.objective import objective_function
from repro.experiments.base import (
    DEFAULT_N_STEPS,
    DEFAULT_NOISE,
    DEFAULT_TRIALS,
    ExperimentResult,
)
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9

COLUMNS = [
    "set",
    "stage",
    "best_config",
    "best_F",
    "worst_config",
    "worst_F",
    "improvement_ratio",
    "orders_of_magnitude",
]


def _spread_rows(result: ExperimentResult, set_name: str) -> List[Dict]:
    rows: List[Dict] = []
    for stage in ("U", "U,A", "U,A,P"):
        scored = [(row["configuration"], row[stage]) for row in result.rows]
        best = max(scored, key=lambda p: p[1])
        worst = min(scored, key=lambda p: p[1])
        if worst[1] > 0:
            ratio = best[1] / worst[1]
            orders = math.log10(ratio) if ratio > 0 else float("nan")
        else:
            ratio = float("inf")
            orders = float("inf")
        rows.append(
            {
                "set": set_name,
                "stage": stage,
                "best_config": best[0],
                "best_F": best[1],
                "worst_config": worst[0],
                "worst_F": worst[1],
                "improvement_ratio": ratio,
                "orders_of_magnitude": orders,
            }
        )
    return rows


def run_headline_extended(
    n_steps: int = DEFAULT_N_STEPS,
) -> ExperimentResult:
    """Demonstrate the indicator's full dynamic range.

    The paper's four-orders-of-magnitude figure requires the worst
    configuration's ``F`` to approach zero, which happens when some
    member's computational efficiency collapses. Within the paper's
    fixed Table 2/4 sets our deterministic model keeps every member's
    efficiency well above zero, bounding the measurable spread to
    about one order of magnitude; but an *under-provisioned* member —
    e.g. an analysis given a single core, so one coupling runs ~4x
    slower than its simulation — drives per-coupling efficiency
    negative (Eq. 3) and ``F`` to (or below) zero. This experiment
    contrasts the fully co-located four-member ensemble against the
    same ensemble with one such straggler member, measuring the
    indicator spread the paper's abstract refers to.
    """
    from repro.components.analysis import EigenAnalysisModel
    from repro.components.simulation import MDSimulationModel
    from repro.core.indicators import (
        IndicatorStage,
        MemberMeasurement,
        apply_stages,
    )
    from repro.runtime.analytic import predict_member_stages
    from repro.runtime.placement import EnsemblePlacement, MemberPlacement
    from repro.runtime.spec import EnsembleSpec, MemberSpec

    order = (
        IndicatorStage.USAGE,
        IndicatorStage.ALLOCATION,
        IndicatorStage.PROVISIONING,
    )

    def member(name: str, ana2_cores: int) -> MemberSpec:
        sim = MDSimulationModel(f"{name}.sim", cores=16)
        analyses = (
            EigenAnalysisModel(f"{name}.ana1", cores=8),
            EigenAnalysisModel(f"{name}.ana2", cores=ana2_cores),
        )
        return MemberSpec(name, sim, analyses, n_steps=n_steps)

    def evaluate(num_stragglers: int) -> float:
        members = tuple(
            member(f"em{i + 1}", 1 if i >= 4 - num_stragglers else 8)
            for i in range(4)
        )
        spec = EnsembleSpec("extended", members)
        placement = EnsemblePlacement(
            4,
            tuple(MemberPlacement(i, (i, i)) for i in range(4)),
        )
        stages = predict_member_stages(spec, placement)
        values = [
            apply_stages(
                MemberMeasurement(
                    m.name,
                    stages[m.name],
                    m.total_cores,
                    mp.to_placement_sets(),
                ),
                order,
                4,
            )
            for m, mp in zip(spec.members, placement.members)
        ]
        return objective_function(values)

    f_good = evaluate(0)
    rows = []
    for num_stragglers in (1, 2):
        f_bad = evaluate(num_stragglers)
        if f_bad > 0:
            ratio = f_good / f_bad
            orders = math.log10(ratio)
        else:
            ratio, orders = float("inf"), float("inf")
        rows.append(
            {
                "set": "extended (N=4, K=2)",
                "stage": "U,A,P",
                "best_config": "co-located",
                "best_F": f_good,
                "worst_config": f"{num_stragglers} straggler member(s)",
                "worst_F": f_bad,
                "improvement_ratio": ratio,
                "orders_of_magnitude": orders,
            }
        )
    return ExperimentResult(
        experiment_id="headline-extended",
        title="Indicator dynamic range with an under-provisioned member",
        columns=COLUMNS,
        rows=rows,
        notes="a single under-provisioned analysis collapses F toward/"
        "below zero, producing the >=4-orders spread of the abstract",
    )


def run_headline(
    trials: int = DEFAULT_TRIALS,
    n_steps: int = DEFAULT_N_STEPS,
    timing_noise: float = DEFAULT_NOISE,
    base_seed: int = 0,
) -> ExperimentResult:
    """Measure the co-location improvement spread of the indicator."""
    fig8 = run_fig8(
        trials=trials,
        n_steps=n_steps,
        timing_noise=timing_noise,
        base_seed=base_seed,
    )
    fig9 = run_fig9(
        trials=trials,
        n_steps=n_steps,
        timing_noise=timing_noise,
        base_seed=base_seed,
    )
    rows = _spread_rows(fig8, "set1 (K=1)") + _spread_rows(fig9, "set2 (K=2)")
    return ExperimentResult(
        experiment_id="headline",
        title="Indicator improvement of best co-location over worst "
        "configuration",
        columns=COLUMNS,
        rows=rows,
        notes="F <= 0 for the worst configuration means unbounded "
        "improvement (reported as inf)",
    )
