"""Stride sensitivity: the third axis of the §3.4 parameter space.

The paper's §3.4 names the parameter space as "the number of cores per
component, their respective placements, and the stride of the
simulation", then fixes the stride at 800 and sweeps cores. This
experiment sweeps the stride instead, holding the paper's core choice
(16 sim / 8 analysis): the simulation stage scales linearly with
stride while the analysis stage (one frame's worth of work) does not,
so the coupling regime flips from Idle Simulation (small strides: the
analysis cannot keep up with frequent frames) to Idle Analyzer (large
strides) — and both E and the amortized cost per MD step have a sweet
spot at the crossover.

This also rationalizes the paper's own setting: stride 800 is just
past the crossover for its 8-core analysis, the smallest stride (most
frequent analysis output) whose member stays in the Idle Analyzer
regime.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.components.analysis import EigenAnalysisModel
from repro.components.simulation import MDSimulationModel
from repro.core.efficiency import computational_efficiency
from repro.core.insitu import classify_coupling, non_overlapped_segment
from repro.experiments.base import ExperimentResult
from repro.runtime.analytic import predict_member_stages
from repro.runtime.placement import EnsemblePlacement, MemberPlacement
from repro.runtime.spec import EnsembleSpec, MemberSpec

COLUMNS = [
    "stride",
    "sigma",
    "simulation_active",
    "analysis_active",
    "regime",
    "efficiency",
    "seconds_per_md_step",
]

DEFAULT_STRIDES = (100, 200, 400, 600, 800, 1200, 1600, 3200)


def run_stride_sweep(
    strides: Sequence[int] = DEFAULT_STRIDES,
    sim_cores: int = 16,
    ana_cores: int = 8,
    natoms: int = 250_000,
) -> ExperimentResult:
    """Sweep the stride at fixed core allocations (Cf placement)."""
    rows: List[Dict] = []
    for stride in strides:
        sim = MDSimulationModel(
            "sweep.sim", cores=sim_cores, natoms=natoms, stride=stride
        )
        ana = EigenAnalysisModel("sweep.ana", cores=ana_cores, natoms=natoms)
        spec = EnsembleSpec(
            "stride-sweep", (MemberSpec("member", sim, (ana,), n_steps=1),)
        )
        placement = EnsemblePlacement(2, (MemberPlacement(0, (1,)),))
        stages = predict_member_stages(spec, placement)["member"]
        sigma = non_overlapped_segment(stages)
        rows.append(
            {
                "stride": stride,
                "sigma": sigma,
                "simulation_active": stages.simulation.active,
                "analysis_active": stages.analyses[0].active,
                "regime": classify_coupling(stages, 0).value,
                "efficiency": computational_efficiency(stages),
                # amortized wall time per MD integration step
                "seconds_per_md_step": sigma / stride,
            }
        )
    return ExperimentResult(
        experiment_id="stride-sweep",
        title="In situ step and efficiency vs simulation stride "
        "(fixed 16/8 cores)",
        columns=COLUMNS,
        rows=rows,
        notes="regime flips from idle-simulation to idle-analyzer as the "
        "stride grows; E peaks at the crossover",
    )


def smallest_idle_analyzer_stride(
    result: Optional[ExperimentResult] = None,
) -> int:
    """The smallest swept stride whose coupling is Idle Analyzer."""
    result = result or run_stride_sweep()
    feasible = [
        row["stride"]
        for row in result.rows
        if row["regime"] == "idle-analyzer"
    ]
    if not feasible:
        raise ValueError("no swept stride reaches the Idle Analyzer regime")
    return min(feasible)
