"""Figure 3: component-level metrics across Table 2 configurations.

For every configuration (Cf, Cc, C1.1-C1.5) and every ensemble
component, reports the Table-1 component metrics averaged over trials:
execution time, LLC miss ratio, memory intensity, and instructions per
cycle.

Paper claims this experiment must reproduce (checked in
``benchmarks/test_bench_fig3.py``):

1. every co-location configuration shows higher LLC miss ratios than
   the co-location-free baseline Cf;
2. analysis-analysis co-location (C1.1, C1.4) yields higher mean miss
   ratios than simulation-simulation co-location (C1.2);
3. heterogeneous co-location (C1.3, C1.5) produces the highest
   per-component miss ratios of all (the co-located simulation's
   cache-blocked kernel collapses under the streaming analysis).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.configs.table2 import table2
from repro.experiments.base import (
    DEFAULT_N_STEPS,
    DEFAULT_NOISE,
    DEFAULT_TRIALS,
    ExperimentResult,
    run_configuration_trials,
    trial_mean,
)

COLUMNS = [
    "configuration",
    "component",
    "execution_time",
    "llc_miss_ratio",
    "memory_intensity",
    "ipc",
]


def run_fig3(
    trials: int = DEFAULT_TRIALS,
    n_steps: int = DEFAULT_N_STEPS,
    timing_noise: float = DEFAULT_NOISE,
    base_seed: int = 0,
    config_names: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Regenerate Figure 3's data: per-component metrics per config."""
    rows: List[Dict] = []
    for config in table2():
        if config_names is not None and config.name not in config_names:
            continue
        results = run_configuration_trials(
            config,
            trials=trials,
            n_steps=n_steps,
            base_seed=base_seed,
            timing_noise=timing_noise,
        )
        component_names = list(results[0].component_metrics)
        for comp in component_names:
            rows.append(
                {
                    "configuration": config.name,
                    "component": comp,
                    "execution_time": trial_mean(
                        [r.component_metrics[comp].execution_time for r in results]
                    ),
                    "llc_miss_ratio": trial_mean(
                        [r.component_metrics[comp].llc_miss_ratio for r in results]
                    ),
                    "memory_intensity": trial_mean(
                        [
                            r.component_metrics[comp].memory_intensity
                            for r in results
                        ]
                    ),
                    "ipc": trial_mean(
                        [r.component_metrics[comp].ipc for r in results]
                    ),
                }
            )
    return ExperimentResult(
        experiment_id="fig3",
        title="Metrics at ensemble component level (Table 2 configurations)",
        columns=COLUMNS,
        rows=rows,
        notes=f"{trials} trials, {n_steps} in situ steps, "
        f"noise {timing_noise:.0%}",
    )


def mean_miss_ratio(result: ExperimentResult, configuration: str) -> float:
    """Mean LLC miss ratio over a configuration's components."""
    values = [
        row["llc_miss_ratio"]
        for row in result.rows
        if row["configuration"] == configuration
    ]
    return sum(values) / len(values)


def max_miss_ratio(result: ExperimentResult, configuration: str) -> float:
    """Highest single-component LLC miss ratio in a configuration."""
    return max(
        row["llc_miss_ratio"]
        for row in result.rows
        if row["configuration"] == configuration
    )
