"""Figure 4: ensemble member makespans across Table 2 configurations.

Member makespan is the paper's Table-1 member metric: the timespan
between the simulation's start and the latest coupled analysis's end.

Paper claim (checked by ``benchmarks/test_bench_fig4.py``): C1.5 — each
simulation co-located with its own analysis — yields the shortest
member makespan among all configurations, while the analysis-contended
configurations (C1.1, C1.4) yield the longest.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.configs.table2 import table2
from repro.experiments.base import (
    DEFAULT_N_STEPS,
    DEFAULT_NOISE,
    DEFAULT_TRIALS,
    ExperimentResult,
    run_configuration_trials,
    trial_mean,
)

COLUMNS = ["configuration", "member", "makespan"]


def run_fig4(
    trials: int = DEFAULT_TRIALS,
    n_steps: int = DEFAULT_N_STEPS,
    timing_noise: float = DEFAULT_NOISE,
    base_seed: int = 0,
    config_names: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Regenerate Figure 4's data: member makespans per configuration."""
    rows: List[Dict] = []
    for config in table2():
        if config_names is not None and config.name not in config_names:
            continue
        results = run_configuration_trials(
            config,
            trials=trials,
            n_steps=n_steps,
            base_seed=base_seed,
            timing_noise=timing_noise,
        )
        for member in results[0].member_makespans:
            rows.append(
                {
                    "configuration": config.name,
                    "member": member,
                    "makespan": trial_mean(
                        [r.member_makespans[member] for r in results]
                    ),
                }
            )
    return ExperimentResult(
        experiment_id="fig4",
        title="Ensemble member makespan (Table 2 configurations)",
        columns=COLUMNS,
        rows=rows,
        notes=f"{trials} trials, {n_steps} in situ steps, "
        f"noise {timing_noise:.0%}",
    )


def best_member_makespan(result: ExperimentResult, configuration: str) -> float:
    """Smallest member makespan within one configuration."""
    return min(
        row["makespan"]
        for row in result.rows
        if row["configuration"] == configuration
    )


def worst_member_makespan(result: ExperimentResult, configuration: str) -> float:
    """Largest member makespan within one configuration."""
    return max(
        row["makespan"]
        for row in result.rows
        if row["configuration"] == configuration
    )
