"""Figure 5: workflow ensemble makespans across Table 2 configurations.

Ensemble makespan is the maximum member makespan (all members start
simultaneously). Paper claim (checked by
``benchmarks/test_bench_fig5.py``): C1.5 has the shortest ensemble
makespan of the two-member configurations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.configs.table2 import table2
from repro.experiments.base import (
    DEFAULT_N_STEPS,
    DEFAULT_NOISE,
    DEFAULT_TRIALS,
    ExperimentResult,
    run_configuration_trials,
    trial_mean,
)

COLUMNS = ["configuration", "ensemble_makespan"]


def run_fig5(
    trials: int = DEFAULT_TRIALS,
    n_steps: int = DEFAULT_N_STEPS,
    timing_noise: float = DEFAULT_NOISE,
    base_seed: int = 0,
    config_names: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Regenerate Figure 5's data: ensemble makespan per configuration."""
    rows: List[Dict] = []
    for config in table2():
        if config_names is not None and config.name not in config_names:
            continue
        results = run_configuration_trials(
            config,
            trials=trials,
            n_steps=n_steps,
            base_seed=base_seed,
            timing_noise=timing_noise,
        )
        rows.append(
            {
                "configuration": config.name,
                "ensemble_makespan": trial_mean(
                    [r.ensemble_makespan for r in results]
                ),
            }
        )
    return ExperimentResult(
        experiment_id="fig5",
        title="Workflow ensemble makespan (Table 2 configurations)",
        columns=COLUMNS,
        rows=rows,
        notes=f"{trials} trials, {n_steps} in situ steps, "
        f"noise {timing_noise:.0%}",
    )
