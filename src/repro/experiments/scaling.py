"""Ensemble-size scaling: the indicators at growing N.

The paper's introduction motivates ensembles of *many* concurrent
simulations, but its evaluation stops at N = 2 members. This experiment
sweeps the member count for the two canonical placements — fully
co-located (the C1.5/C2.8 pattern generalized: one member per node) and
fully spread (every component on a dedicated node) — and reports
F(P^{U,A,P}), the predicted ensemble makespan, and the node count.

Expected behaviour (asserted in ``tests/experiments/test_scaling.py``
and ``benchmarks/test_bench_scaling.py``):

1. member independence: the co-located makespan is N-invariant (members
   on distinct nodes never interact — the paper's concluding insight
   that members can be scheduled individually);
2. the co-located placement beats the spread one at every N, on both F
   and makespan;
3. F scales as ~1/M: doubling the ensemble (and its allocation) halves
   the per-ensemble indicator, so comparisons are meaningful *within* a
   fixed workload, which is how the paper uses them.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.indicators import (
    IndicatorStage,
    MemberMeasurement,
    apply_stages,
)
from repro.core.insitu import member_makespan
from repro.core.objective import objective_function
from repro.experiments.base import ExperimentResult
from repro.runtime.analytic import predict_member_stages
from repro.runtime.placement import (
    EnsemblePlacement,
    pack_members_per_node,
    spread_components,
)
from repro.runtime.spec import EnsembleSpec, default_member

COLUMNS = [
    "members",
    "placement",
    "nodes",
    "objective_F",
    "ensemble_makespan",
]

DEFAULT_MEMBER_COUNTS = (1, 2, 4, 8, 16)

ORDER = (
    IndicatorStage.USAGE,
    IndicatorStage.ALLOCATION,
    IndicatorStage.PROVISIONING,
)


def _evaluate(
    spec: EnsembleSpec, placement: EnsemblePlacement
) -> Dict[str, float]:
    stages = predict_member_stages(spec, placement)
    indicators: List[float] = []
    worst = 0.0
    for member, mp in zip(spec.members, placement.members):
        ms = stages[member.name]
        measurement = MemberMeasurement(
            member.name, ms, member.total_cores, mp.to_placement_sets()
        )
        indicators.append(
            apply_stages(measurement, ORDER, placement.num_nodes)
        )
        worst = max(worst, member_makespan(ms, member.n_steps))
    return {
        "objective_F": objective_function(indicators),
        "ensemble_makespan": worst,
    }


def run_scaling(
    member_counts: Sequence[int] = DEFAULT_MEMBER_COUNTS,
    n_steps: int = 37,
) -> ExperimentResult:
    """Sweep the ensemble size for both canonical placements."""
    rows: List[Dict] = []
    for n in member_counts:
        spec = EnsembleSpec(
            f"scale-{n}",
            tuple(
                default_member(f"em{i + 1}", n_steps=n_steps)
                for i in range(n)
            ),
        )
        for label, placement in (
            ("co-located", pack_members_per_node(spec)),
            ("spread", spread_components(spec)),
        ):
            outcome = _evaluate(spec, placement)
            rows.append(
                {
                    "members": n,
                    "placement": label,
                    "nodes": placement.num_nodes,
                    **outcome,
                }
            )
    return ExperimentResult(
        experiment_id="scaling",
        title="Indicator and makespan vs ensemble size "
        "(co-located vs spread)",
        columns=COLUMNS,
        rows=rows,
        notes="analytic predictor; co-located = one member per node, "
        "spread = one component per node",
    )
