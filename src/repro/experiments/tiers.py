"""Staging-tier matrix: placement sensitivity across DTL tiers.

The paper targets the in-memory DTL but its runtime architecture
(Figure 2) explicitly abstracts over storage tiers ("in-memory,
burst-buffers, or parallel file systems"). This experiment runs the
full Table 2 configuration set over all three tiers and quantifies
each tier's *placement sensitivity* — the ensemble-makespan spread
between the best and worst placement.

Expected behaviour (asserted in ``benchmarks/test_bench_tiers.py``):

1. under the in-memory tier the co-located placements (Cc/C1.5) win —
   the paper's result;
2. under placement-insensitive tiers (burst buffer, PFS) co-location
   keeps its contention *cost* but loses its locality *benefit*: the
   co-location-free Cf becomes the winning placement;
3. co-located placements are nearly tier-invariant (their staging is a
   local memory copy regardless of tier speed at MD-scale chunk
   sizes), and the analysis-contended C1.4 is the worst placement on
   *every* tier — contention, not I/O, dominates this workload.

Together these say the in-memory tier's value is *contingent on
co-location*: without co-locating coupled components, DIMES's in-app
service costs make it no better than (even slightly worse than) a
dedicated external tier — which is precisely the paper's argument for
placement-aware scheduling of in situ ensembles.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.configs.table2 import table2
from repro.dtl.base import DataTransportLayer
from repro.dtl.burstbuffer import BurstBufferDTL
from repro.dtl.dimes import InMemoryStagingDTL
from repro.dtl.pfs import ParallelFilesystemDTL
from repro.experiments.base import (
    DEFAULT_N_STEPS,
    DEFAULT_NOISE,
    DEFAULT_TRIALS,
    ExperimentResult,
    run_configuration_trials,
    trial_mean,
)
from repro.platform.cluster import Cluster
from repro.platform.specs import make_cori_like_cluster

COLUMNS = ["tier", "configuration", "ensemble_makespan"]

TierFactory = Callable[[Cluster], DataTransportLayer]


def default_tiers() -> Dict[str, TierFactory]:
    """The three Figure-2 tiers with realistic parameters."""
    return {
        "in-memory": lambda cl: InMemoryStagingDTL(
            network=cl.network,
            memory_bandwidth=cl.node_spec.memory_bandwidth,
        ),
        "burst-buffer": lambda cl: BurstBufferDTL(),
        "parallel-fs": lambda cl: ParallelFilesystemDTL(
            aggregate_bandwidth=4e9,
            concurrent_clients=4,
            metadata_latency=0.02,
        ),
    }


def run_tier_matrix(
    trials: int = DEFAULT_TRIALS,
    n_steps: int = DEFAULT_N_STEPS,
    timing_noise: float = DEFAULT_NOISE,
    config_names: Sequence[str] = ("Cf", "Cc", "C1.2", "C1.4", "C1.5"),
    tiers: Dict[str, TierFactory] | None = None,
) -> ExperimentResult:
    """Run selected Table 2 configurations over every tier."""
    tiers = tiers if tiers is not None else default_tiers()
    rows: List[Dict] = []
    for tier_name, factory in tiers.items():
        for config in table2():
            if config.name not in config_names:
                continue
            cluster = make_cori_like_cluster(config.num_nodes)
            results = run_configuration_trials(
                config,
                trials=trials,
                n_steps=n_steps,
                timing_noise=timing_noise,
                cluster=cluster,
                dtl=factory(cluster),
            )
            rows.append(
                {
                    "tier": tier_name,
                    "configuration": config.name,
                    "ensemble_makespan": trial_mean(
                        [r.ensemble_makespan for r in results]
                    ),
                }
            )
    return ExperimentResult(
        experiment_id="tier-matrix",
        title="Ensemble makespan per staging tier and placement",
        columns=COLUMNS,
        rows=rows,
        notes="locality-sensitive tiers reward co-location; "
        "placement-insensitive tiers punish it",
    )


def best_placement_per_tier(result: ExperimentResult) -> Dict[str, str]:
    """Winning configuration (min makespan) for each tier."""
    winners: Dict[str, str] = {}
    tiers = {row["tier"] for row in result.rows}
    for tier in tiers:
        rows = [r for r in result.rows if r["tier"] == tier]
        winners[tier] = min(rows, key=lambda r: r["ensemble_makespan"])[
            "configuration"
        ]
    return winners
