"""Design-choice ablations (DESIGN.md §5).

Three switches in the platform/DTL model are responsible for the
paper's orderings; each ablation disables one and reports how the
orderings change:

- **contention** — with the interference model off, co-location stops
  costing anything: C1.4 and C1.5 makespans converge.
- **locality** — replacing the DIMES tier with a placement-insensitive
  burst buffer removes the co-location benefit: Cc no longer beats Cf.
- **progress tax** — with the DIMES remote-service tax zeroed,
  co-location keeps the read-locality benefit but loses its largest
  advantage; Cf catches up with (or overtakes) Cc.
"""

from __future__ import annotations

from typing import Dict, List

from repro.configs.table2 import get_config
from repro.dtl.burstbuffer import BurstBufferDTL
from repro.dtl.dimes import InMemoryStagingDTL
from repro.experiments.base import (
    DEFAULT_N_STEPS,
    DEFAULT_NOISE,
    DEFAULT_TRIALS,
    ExperimentResult,
    run_configuration_trials,
    trial_mean,
)
from repro.platform.specs import make_cori_like_cluster

COLUMNS = ["variant", "configuration", "ensemble_makespan"]


def _makespan(
    config_name: str,
    trials: int,
    n_steps: int,
    noise: float,
    contention_enabled: bool = True,
    dtl_factory=None,
) -> float:
    config = get_config(config_name)
    cluster = make_cori_like_cluster(
        config.num_nodes, contention_enabled=contention_enabled
    )
    dtl = None
    if dtl_factory is not None:
        dtl = dtl_factory(cluster)
    results = run_configuration_trials(
        config,
        trials=trials,
        n_steps=n_steps,
        timing_noise=noise,
        cluster=cluster,
        dtl=dtl,
    )
    return trial_mean([r.ensemble_makespan for r in results])


def run_contention_ablation(
    trials: int = DEFAULT_TRIALS,
    n_steps: int = DEFAULT_N_STEPS,
    timing_noise: float = DEFAULT_NOISE,
) -> ExperimentResult:
    """C1.4 vs C1.5 with the interference model on and off."""
    rows: List[Dict] = []
    for variant, enabled in (("contention-on", True), ("contention-off", False)):
        for name in ("C1.4", "C1.5"):
            rows.append(
                {
                    "variant": variant,
                    "configuration": name,
                    "ensemble_makespan": _makespan(
                        name,
                        trials,
                        n_steps,
                        timing_noise,
                        contention_enabled=enabled,
                    ),
                }
            )
    return ExperimentResult(
        experiment_id="ablation-contention",
        title="Interference model ablation (C1.4 vs C1.5)",
        columns=COLUMNS,
        rows=rows,
        notes="without contention, analysis co-location stops hurting C1.4",
    )


def run_locality_ablation(
    trials: int = DEFAULT_TRIALS,
    n_steps: int = DEFAULT_N_STEPS,
    timing_noise: float = DEFAULT_NOISE,
) -> ExperimentResult:
    """Cf vs Cc under DIMES and under a placement-insensitive tier."""
    def dimes(cluster):
        return InMemoryStagingDTL(
            network=cluster.network,
            memory_bandwidth=cluster.node_spec.memory_bandwidth,
        )

    def burst(cluster):
        return BurstBufferDTL()

    rows: List[Dict] = []
    for variant, factory in (("dimes", dimes), ("burst-buffer", burst)):
        for name in ("Cf", "Cc"):
            rows.append(
                {
                    "variant": variant,
                    "configuration": name,
                    "ensemble_makespan": _makespan(
                        name, trials, n_steps, timing_noise, dtl_factory=factory
                    ),
                }
            )
    return ExperimentResult(
        experiment_id="ablation-locality",
        title="Data-locality ablation (Cf vs Cc, DIMES vs burst buffer)",
        columns=COLUMNS,
        rows=rows,
        notes="with a placement-insensitive tier, co-location keeps the "
        "contention cost but loses the locality benefit",
    )


def run_tax_ablation(
    trials: int = DEFAULT_TRIALS,
    n_steps: int = DEFAULT_N_STEPS,
    timing_noise: float = DEFAULT_NOISE,
) -> ExperimentResult:
    """Cf vs Cc with the DIMES progress tax present and zeroed."""
    def taxed(cluster):
        return InMemoryStagingDTL(
            network=cluster.network,
            memory_bandwidth=cluster.node_spec.memory_bandwidth,
        )

    def untaxed(cluster):
        return InMemoryStagingDTL(
            network=cluster.network,
            memory_bandwidth=cluster.node_spec.memory_bandwidth,
            producer_progress_tax=0.0,
        )

    rows: List[Dict] = []
    for variant, factory in (("tax-on", taxed), ("tax-off", untaxed)):
        for name in ("Cf", "Cc"):
            rows.append(
                {
                    "variant": variant,
                    "configuration": name,
                    "ensemble_makespan": _makespan(
                        name, trials, n_steps, timing_noise, dtl_factory=factory
                    ),
                }
            )
    return ExperimentResult(
        experiment_id="ablation-tax",
        title="DIMES progress-tax ablation (Cf vs Cc)",
        columns=COLUMNS,
        rows=rows,
        notes="without the remote-serving tax the co-location-free "
        "placement avoids contention for free",
    )
