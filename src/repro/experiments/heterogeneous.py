"""Heterogeneous couplings: the paper's Figure 6 scenario, executed.

The paper's theoretical framework "supports coupling to different types
of analyses simultaneously" (§3.4) even though its experiments use
identical analyses. Figure 6 illustrates the general case: within one
member, one coupling can sit in the Idle Simulation regime (its
analysis outlasts the simulation step) while another sits in Idle
Analyzer. This experiment builds exactly that member — one
under-provisioned slow analysis and one comfortable fast analysis — and
verifies through the executor that:

1. the couplings classify into the two regimes of Figure 6;
2. the slowest coupling defines the non-overlapped step (Eq. 1);
3. per-coupling efficiencies differ while Eq. 3's E is their mean.
"""

from __future__ import annotations

from typing import Dict, List

from repro.components.analysis import EigenAnalysisModel
from repro.components.simulation import MDSimulationModel
from repro.core.efficiency import computational_efficiency, coupling_efficiency
from repro.core.insitu import (
    classify_coupling,
    non_overlapped_segment,
)
from repro.experiments.base import ExperimentResult
from repro.runtime.placement import EnsemblePlacement, MemberPlacement
from repro.runtime.runner import run_ensemble
from repro.runtime.spec import EnsembleSpec, MemberSpec

COLUMNS = [
    "coupling",
    "cores",
    "active_time",
    "regime",
    "coupling_efficiency",
]


def build_mixed_member(
    slow_cores: int = 4,
    fast_cores: int = 16,
    n_steps: int = 8,
) -> EnsembleSpec:
    """One simulation coupled with a slow and a fast analysis."""
    sim = MDSimulationModel("mix.sim", cores=16)
    slow = EigenAnalysisModel("mix.slow", cores=slow_cores)
    fast = EigenAnalysisModel("mix.fast", cores=fast_cores)
    return EnsembleSpec(
        "mixed-regimes",
        (MemberSpec("mix", sim, (slow, fast), n_steps=n_steps),),
    )


def run_heterogeneous(
    slow_cores: int = 4,
    fast_cores: int = 16,
    n_steps: int = 8,
    seed: int = 0,
) -> ExperimentResult:
    """Execute the mixed-regime member and report per-coupling data."""
    spec = build_mixed_member(slow_cores, fast_cores, n_steps)
    # co-location-free so stage times are pure component behaviour
    placement = EnsemblePlacement(3, (MemberPlacement(0, (1, 2)),))
    result = run_ensemble(spec, placement, seed=seed)
    member = result.members[0]
    stages = member.stages

    rows: List[Dict] = [
        {
            "coupling": "(Sim, slow)",
            "cores": slow_cores,
            "active_time": stages.analyses[0].active,
            "regime": classify_coupling(stages, 0).value,
            "coupling_efficiency": coupling_efficiency(stages, 0),
        },
        {
            "coupling": "(Sim, fast)",
            "cores": fast_cores,
            "active_time": stages.analyses[1].active,
            "regime": classify_coupling(stages, 1).value,
            "coupling_efficiency": coupling_efficiency(stages, 1),
        },
    ]
    sigma = non_overlapped_segment(stages)
    e = computational_efficiency(stages)
    return ExperimentResult(
        experiment_id="heterogeneous",
        title="Mixed coupling regimes within one member (Figure 6 scenario)",
        columns=COLUMNS,
        rows=rows,
        notes=(
            f"sim active {stages.simulation.active:.2f}s, sigma* = "
            f"{sigma:.2f}s (set by the slow coupling), member E = {e:.3f} "
            "= mean of coupling efficiencies"
        ),
    )
