"""Shared experiment machinery: trial running and result tables."""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.configs.base import Configuration, build_spec
from repro.dtl.base import DataTransportLayer
from repro.platform.cluster import Cluster
from repro.runtime.results import ExecutionResult
from repro.runtime.runner import run_ensemble
from repro.util.errors import ValidationError
from repro.util.validation import require_non_negative, require_positive_int

#: the paper's measurement protocol: averaged over 5 trials.
DEFAULT_TRIALS = 5
#: 30 000 MD steps at stride 800 -> 37 in situ steps.
DEFAULT_N_STEPS = 37
#: relative per-stage timing jitter applied in each trial.
DEFAULT_NOISE = 0.02


@dataclass
class ExperimentResult:
    """Structured output of one experiment run."""

    experiment_id: str
    title: str
    columns: List[str]
    rows: List[Dict[str, Any]]
    notes: str = ""

    def __post_init__(self) -> None:
        if not self.rows:
            raise ValidationError(f"{self.experiment_id}: no result rows")
        for row in self.rows:
            missing = [c for c in self.columns if c not in row]
            if missing:
                raise ValidationError(
                    f"{self.experiment_id}: row missing columns {missing}"
                )

    def column(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise ValidationError(f"unknown column {name!r}")
        return [row[name] for row in self.rows]

    def row_for(self, key_column: str, key: Any) -> Dict[str, Any]:
        """The first row whose ``key_column`` equals ``key``."""
        for row in self.rows:
            if row.get(key_column) == key:
                return row
        raise ValidationError(f"no row with {key_column}={key!r}")

    def to_text(self) -> str:
        """Render as an aligned text table (what the harness prints)."""
        def fmt(v: Any) -> str:
            if isinstance(v, float):
                return f"{v:.6g}"
            return str(v)

        widths = {
            c: max(len(c), *(len(fmt(r[c])) for r in self.rows))
            for c in self.columns
        }
        header = "  ".join(c.ljust(widths[c]) for c in self.columns)
        sep = "  ".join("-" * widths[c] for c in self.columns)
        lines = [f"== {self.experiment_id}: {self.title} ==", header, sep]
        for row in self.rows:
            lines.append(
                "  ".join(fmt(row[c]).ljust(widths[c]) for c in self.columns)
            )
        if self.notes:
            lines.append(f"-- {self.notes}")
        return "\n".join(lines)

    # -- persistence --------------------------------------------------------
    def to_json(self) -> str:
        """Serialize to JSON (floats/ints/strings/bools only in rows)."""
        return json.dumps(
            {
                "experiment_id": self.experiment_id,
                "title": self.title,
                "columns": self.columns,
                "rows": self.rows,
                "notes": self.notes,
            }
        )

    @classmethod
    def from_json(cls, payload: str) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_json` output."""
        try:
            data = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"invalid experiment JSON: {exc}") from exc
        for key in ("experiment_id", "title", "columns", "rows"):
            if key not in data:
                raise ValidationError(f"experiment JSON missing {key!r}")
        return cls(
            experiment_id=data["experiment_id"],
            title=data["title"],
            columns=list(data["columns"]),
            rows=list(data["rows"]),
            notes=data.get("notes", ""),
        )

    def save(self, path: Union[str, Path]) -> None:
        """Write the result to a JSON file."""
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ExperimentResult":
        """Read a result from a JSON file."""
        return cls.from_json(Path(path).read_text())


def run_configuration(
    config: Configuration,
    n_steps: int = DEFAULT_N_STEPS,
    seed: int = 0,
    timing_noise: float = DEFAULT_NOISE,
    cluster: Optional[Cluster] = None,
    dtl: Optional[DataTransportLayer] = None,
) -> ExecutionResult:
    """Run one configuration once."""
    spec = build_spec(config, n_steps=n_steps)
    return run_ensemble(
        spec,
        config.placement(),
        cluster=cluster,
        dtl=dtl,
        seed=seed,
        timing_noise=timing_noise,
    )


def _trial_worker(payload: tuple) -> ExecutionResult:
    """Pool worker: run one seeded trial of a configuration."""
    config, n_steps, seed, timing_noise, cluster, dtl = payload
    return run_configuration(
        config,
        n_steps=n_steps,
        seed=seed,
        timing_noise=timing_noise,
        cluster=cluster,
        dtl=dtl,
    )


def run_configuration_trials(
    config: Configuration,
    trials: int = DEFAULT_TRIALS,
    n_steps: int = DEFAULT_N_STEPS,
    base_seed: int = 0,
    timing_noise: float = DEFAULT_NOISE,
    cluster: Optional[Cluster] = None,
    dtl: Optional[DataTransportLayer] = None,
    parallel: bool = False,
) -> List[ExecutionResult]:
    """Run one configuration over independent trials (distinct seeds).

    With ``parallel=True`` the trials run across a multiprocessing
    pool. Every trial's seed is fixed by its index (``base_seed + t``)
    and trials share no state, so the result list is identical to the
    serial one, in the same order; when the pool is unavailable
    (single-core host, sandboxed semaphores, unpicklable inputs) the
    serial path runs instead.
    """
    require_positive_int("trials", trials)
    require_non_negative("timing_noise", timing_noise)
    if parallel and trials >= 2:
        results = _try_parallel_trials(
            config, trials, n_steps, base_seed, timing_noise, cluster, dtl
        )
        if results is not None:
            return results
    return [
        run_configuration(
            config,
            n_steps=n_steps,
            seed=base_seed + t,
            timing_noise=timing_noise,
            cluster=cluster,
            dtl=dtl,
        )
        for t in range(trials)
    ]


def _try_parallel_trials(
    config: Configuration,
    trials: int,
    n_steps: int,
    base_seed: int,
    timing_noise: float,
    cluster: Optional[Cluster],
    dtl: Optional[DataTransportLayer],
) -> Optional[List[ExecutionResult]]:
    """Trials across a pool, or None if parallelism is unavailable."""
    try:
        import multiprocessing

        processes = multiprocessing.cpu_count()
        if processes < 2:
            return None
        payloads = [
            (config, n_steps, base_seed + t, timing_noise, cluster, dtl)
            for t in range(trials)
        ]
        with multiprocessing.Pool(
            processes=min(processes, trials)
        ) as pool:
            return pool.map(_trial_worker, payloads)
    except Exception:
        return None


def trial_mean(values: Sequence[float]) -> float:
    """Mean over trials (the paper reports 5-trial averages)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValidationError("trial_mean requires at least one value")
    return float(arr.mean())
