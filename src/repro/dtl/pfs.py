"""Parallel-filesystem staging tier (the post-processing baseline).

The slowest tier: every operation crosses the interconnect to a shared
filesystem whose aggregate bandwidth is divided among concurrent
clients, with metadata latency per operation. This is the traditional
loosely-coupled pathway whose I/O bottleneck motivated in situ
processing in the first place (paper §1); it exists here so examples
and ablations can quantify the gap the in-memory tier closes.
"""

from __future__ import annotations

from repro.dtl.base import DataTransportLayer, TransferCost
from repro.util.validation import (
    require_non_negative,
    require_positive,
    require_positive_int,
)


class ParallelFilesystemDTL(DataTransportLayer):
    """Shared-filesystem tier with client-count bandwidth division.

    Parameters
    ----------
    aggregate_bandwidth:
        Total filesystem bandwidth (bytes/s) shared by all clients.
    concurrent_clients:
        How many components are assumed to hit the filesystem at once;
        each stream receives ``aggregate_bandwidth / concurrent_clients``.
    metadata_latency:
        Per-operation open/close + metadata server round trip.
    marshal_bandwidth:
        Serialization throughput on the calling component.
    """

    def __init__(
        self,
        aggregate_bandwidth: float = 50e9,
        concurrent_clients: int = 1,
        metadata_latency: float = 5e-3,
        marshal_bandwidth: float = 8e9,
        name: str = "pfs",
    ) -> None:
        super().__init__(name)
        self.aggregate_bandwidth = require_positive(
            "aggregate_bandwidth", aggregate_bandwidth
        )
        self.concurrent_clients = require_positive_int(
            "concurrent_clients", concurrent_clients
        )
        self.metadata_latency = require_non_negative(
            "metadata_latency", metadata_latency
        )
        self.marshal_bandwidth = require_positive(
            "marshal_bandwidth", marshal_bandwidth
        )

    @property
    def per_stream_bandwidth(self) -> float:
        return self.aggregate_bandwidth / self.concurrent_clients

    def write_cost(self, producer_node: int, nbytes: float) -> TransferCost:
        require_non_negative("nbytes", nbytes)
        return TransferCost(
            marshal=nbytes / self.marshal_bandwidth,
            transport=self.metadata_latency + nbytes / self.per_stream_bandwidth,
            producer_overhead=0.0,
        )

    def read_cost(
        self, producer_node: int, consumer_node: int, nbytes: float
    ) -> TransferCost:
        require_non_negative("nbytes", nbytes)
        return TransferCost(
            marshal=nbytes / self.marshal_bandwidth,
            transport=self.metadata_latency + nbytes / self.per_stream_bandwidth,
            producer_overhead=0.0,
        )
