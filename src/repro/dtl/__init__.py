"""Data Transport Layer (DTL): staging tiers and the chunk abstraction.

The paper's runtime (its Figure 2) interposes a *DTL plugin* between
ensemble components and a *data transport layer* that may be an
in-memory staging area (DIMES), a burst buffer, or a parallel file
system. This subpackage provides all three tiers behind one interface,
plus the :class:`~repro.dtl.chunk.Chunk` base data representation with
real byte-level serialization.

Each tier plays two roles at once:

1. **Cost model** — pure functions giving the simulated duration of
   write (W), read (R), and the overhead a remote read imposes on the
   producer's node. The discrete-event executor consumes these.
2. **Functional store** — actual ``stage``/``retrieve`` of chunk
   objects with the paper's no-buffering protocol (one slot per
   coupling and step; the producer may not overwrite an unread chunk).
   The in-process examples run real frame data through this path.

The DIMES-defining behaviour is data locality: chunks live in the
producer node's memory, so a co-located consumer pays a memory copy
while a remote consumer pays network latency + bandwidth *and* imposes
a service cost on the producer (the staging server thread and NIC DMA
share the producer's resources).
"""

from repro.dtl.base import DataTransportLayer, StagedChunk, TransferCost
from repro.dtl.burstbuffer import BurstBufferDTL
from repro.dtl.chunk import Chunk, ChunkKey
from repro.dtl.dimes import InMemoryStagingDTL
from repro.dtl.pfs import ParallelFilesystemDTL
from repro.dtl.plugin import DTLPlugin

__all__ = [
    "BurstBufferDTL",
    "Chunk",
    "ChunkKey",
    "DTLPlugin",
    "DataTransportLayer",
    "InMemoryStagingDTL",
    "ParallelFilesystemDTL",
    "StagedChunk",
    "TransferCost",
]
