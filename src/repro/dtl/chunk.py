"""The chunk: base data representation of the runtime.

Per the paper (§2.2), simulations write data "abstracted into a chunk,
which is the base data representation manipulated within the entire
runtime", and the DTL plugin "does data marshaling ... the abstract
chunk is serialized to a buffer of bytes". :class:`Chunk` implements
exactly that: a typed numpy payload plus identifying metadata, with a
self-describing binary wire format and CRC32 integrity check.

Wire format (little-endian)::

    magic   4s   b"RPC1"
    crc     I    CRC32 of everything after this field
    step    q    in situ step index
    key     H+s  producer key (length-prefixed utf-8)
    dtype   H+s  numpy dtype string (length-prefixed utf-8)
    ndim    B    number of payload dimensions
    shape   ndim*q
    meta    I+s  JSON-encoded metadata (length-prefixed utf-8)
    payload raw bytes (C order)
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

import numpy as np

from repro.util.errors import DTLError, ValidationError

_MAGIC = b"RPC1"
_HEADER = struct.Struct("<4sI")


@dataclass(frozen=True)
class ChunkKey:
    """Identity of a staged chunk: which producer, which step."""

    producer: str
    step: int

    def __post_init__(self) -> None:
        if not self.producer:
            raise ValidationError("producer must be non-empty")
        if self.step < 0:
            raise ValidationError(f"step must be >= 0, got {self.step}")


@dataclass(frozen=True)
class Chunk:
    """One unit of staged data: a numpy payload plus metadata.

    Attributes
    ----------
    key:
        Producer identity and step index.
    payload:
        The staged array (e.g. a frame of atomic positions). Stored
        C-contiguous; the constructor copies if needed so a chunk is
        immutable-by-convention after creation.
    metadata:
        Small JSON-serializable dict (units, atom counts, ...).
    """

    key: ChunkKey
    payload: np.ndarray
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        arr = np.ascontiguousarray(self.payload)
        object.__setattr__(self, "payload", arr)
        try:
            json.dumps(self.metadata)
        except (TypeError, ValueError) as exc:
            raise ValidationError(f"metadata must be JSON-serializable: {exc}")

    @property
    def nbytes(self) -> int:
        """Payload size in bytes (what staging transfers move)."""
        return int(self.payload.nbytes)

    # -- marshaling --------------------------------------------------------------
    def serialize(self) -> bytes:
        """Marshal to the self-describing wire format."""
        dtype_s = self.payload.dtype.str.encode("utf-8")
        key_s = self.key.producer.encode("utf-8")
        meta_s = json.dumps(self.metadata, sort_keys=True).encode("utf-8")
        body = b"".join(
            [
                struct.pack("<q", self.key.step),
                struct.pack("<H", len(key_s)),
                key_s,
                struct.pack("<H", len(dtype_s)),
                dtype_s,
                struct.pack("<B", self.payload.ndim),
                struct.pack(f"<{self.payload.ndim}q", *self.payload.shape),
                struct.pack("<I", len(meta_s)),
                meta_s,
                self.payload.tobytes(order="C"),
            ]
        )
        crc = zlib.crc32(body) & 0xFFFFFFFF
        return _HEADER.pack(_MAGIC, crc) + body

    @staticmethod
    def deserialize(buffer: bytes) -> "Chunk":
        """Unmarshal a buffer produced by :meth:`serialize`.

        Raises
        ------
        DTLError
            On bad magic, truncated buffer, or CRC mismatch.
        """
        if len(buffer) < _HEADER.size:
            raise DTLError("buffer too short for chunk header")
        magic, crc = _HEADER.unpack_from(buffer, 0)
        if magic != _MAGIC:
            raise DTLError(f"bad chunk magic: {magic!r}")
        body = buffer[_HEADER.size :]
        if (zlib.crc32(body) & 0xFFFFFFFF) != crc:
            raise DTLError("chunk CRC mismatch (corrupted buffer)")
        off = 0
        try:
            (step,) = struct.unpack_from("<q", body, off)
            off += 8
            (klen,) = struct.unpack_from("<H", body, off)
            off += 2
            producer = body[off : off + klen].decode("utf-8")
            off += klen
            (dlen,) = struct.unpack_from("<H", body, off)
            off += 2
            dtype = np.dtype(body[off : off + dlen].decode("utf-8"))
            off += dlen
            (ndim,) = struct.unpack_from("<B", body, off)
            off += 1
            shape: Tuple[int, ...] = struct.unpack_from(f"<{ndim}q", body, off)
            off += 8 * ndim
            (mlen,) = struct.unpack_from("<I", body, off)
            off += 4
            metadata = json.loads(body[off : off + mlen].decode("utf-8"))
            off += mlen
            count = int(np.prod(shape, dtype=np.int64)) if ndim else 1
            payload = np.frombuffer(
                body, dtype=dtype, count=count, offset=off
            ).reshape(shape)
        except (struct.error, UnicodeDecodeError, TypeError, ValueError) as exc:
            raise DTLError(f"malformed chunk body: {exc}") from exc
        return Chunk(
            key=ChunkKey(producer=producer, step=step),
            payload=payload.copy(),
            metadata=metadata,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Chunk):
            return NotImplemented
        return (
            self.key == other.key
            and self.metadata == other.metadata
            and self.payload.shape == other.payload.shape
            and self.payload.dtype == other.payload.dtype
            and bool(np.array_equal(self.payload, other.payload))
        )

    def __hash__(self) -> int:  # chunks identified by key for set/dict use
        return hash(self.key)
