"""Burst-buffer staging tier.

Models a shared flash tier (e.g. Cray DataWarp on Cori): both writes
and reads traverse the interconnect to burst-buffer servers, paying the
device's sequential bandwidth plus a fixed software latency. Placement
of producer and consumer no longer matters — which is exactly why this
tier serves as the locality ablation against
:class:`~repro.dtl.dimes.InMemoryStagingDTL`: with a burst buffer, the
co-location benefit measured by the paper disappears, leaving only the
co-location *penalty* (contention).
"""

from __future__ import annotations

from repro.dtl.base import DataTransportLayer, TransferCost
from repro.util.validation import require_non_negative, require_positive


class BurstBufferDTL(DataTransportLayer):
    """Placement-insensitive flash staging tier.

    Parameters
    ----------
    write_bandwidth / read_bandwidth:
        Per-stream device throughput (bytes/s).
    access_latency:
        Fixed software + network latency per operation.
    marshal_bandwidth:
        Serialization throughput on the calling component.
    """

    def __init__(
        self,
        write_bandwidth: float = 5e9,
        read_bandwidth: float = 6e9,
        access_latency: float = 400e-6,
        marshal_bandwidth: float = 8e9,
        name: str = "burst-buffer",
    ) -> None:
        super().__init__(name)
        self.write_bandwidth = require_positive("write_bandwidth", write_bandwidth)
        self.read_bandwidth = require_positive("read_bandwidth", read_bandwidth)
        self.access_latency = require_non_negative("access_latency", access_latency)
        self.marshal_bandwidth = require_positive(
            "marshal_bandwidth", marshal_bandwidth
        )

    def write_cost(self, producer_node: int, nbytes: float) -> TransferCost:
        require_non_negative("nbytes", nbytes)
        return TransferCost(
            marshal=nbytes / self.marshal_bandwidth,
            transport=self.access_latency + nbytes / self.write_bandwidth,
            producer_overhead=0.0,
        )

    def read_cost(
        self, producer_node: int, consumer_node: int, nbytes: float
    ) -> TransferCost:
        require_non_negative("nbytes", nbytes)
        return TransferCost(
            marshal=nbytes / self.marshal_bandwidth,
            transport=self.access_latency + nbytes / self.read_bandwidth,
            producer_overhead=0.0,
        )
