"""The DTL plugin: marshaling bridge between components and the DTL.

Per the paper's runtime architecture (Figure 2), components never talk
to the transport layer directly; a *DTL plugin* abstracts data into
chunks, performs marshaling, and hides the staging protocol. This
module is the real-data implementation used by the in-process examples
and integration tests: arrays go in, serialized bytes round-trip
through the staging store, arrays come out, and every operation reports
the simulated :class:`~repro.dtl.base.TransferCost` it would have on
the modeled platform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.dtl.base import DataTransportLayer, TransferCost
from repro.dtl.chunk import Chunk, ChunkKey
from repro.util.errors import DTLError, ValidationError


@dataclass(frozen=True)
class StagingReceipt:
    """Outcome of a plugin operation: what moved and what it cost."""

    key: ChunkKey
    nbytes: int
    cost: TransferCost
    verified: bool


class DTLPlugin:
    """Component-facing staging interface.

    Parameters
    ----------
    dtl:
        The transport tier to stage through.
    component:
        Name of the component this plugin instance serves; used as the
        producer key for writes and the consumer identity for reads.
    node:
        Allocation-relative node index the component runs on (drives
        the locality-sensitive cost model).
    verify_integrity:
        When True (default) every read deserializes from actual bytes
        and checks the CRC, exercising the full marshaling path. Set
        False to skip re-serialization for very large payloads.
    """

    def __init__(
        self,
        dtl: DataTransportLayer,
        component: str,
        node: int,
        verify_integrity: bool = True,
    ) -> None:
        if not component:
            raise ValidationError("component must be non-empty")
        if node < 0:
            raise ValidationError(f"node must be >= 0, got {node}")
        self.dtl = dtl
        self.component = component
        self.node = node
        self.verify_integrity = verify_integrity
        self._next_step = 0

    # -- producer side -----------------------------------------------------------
    def stage_out(
        self,
        payload: np.ndarray,
        metadata: Optional[Dict[str, Any]] = None,
        expected_consumers: int = 1,
        step: Optional[int] = None,
    ) -> StagingReceipt:
        """Marshal ``payload`` into a chunk and stage it.

        ``step`` defaults to an internal monotonically increasing
        counter, satisfying the protocol's strictly-increasing rule.
        """
        if step is None:
            step = self._next_step
        chunk = Chunk(
            key=ChunkKey(producer=self.component, step=step),
            payload=payload,
            metadata=metadata or {},
        )
        if self.verify_integrity:
            # Real marshaling round trip: stage the deserialized copy of
            # the serialized bytes so corruption would be caught here.
            chunk = Chunk.deserialize(chunk.serialize())
        self.dtl.stage(chunk, self.node, expected_consumers=expected_consumers)
        self._next_step = step + 1
        return StagingReceipt(
            key=chunk.key,
            nbytes=chunk.nbytes,
            cost=self.dtl.write_cost(self.node, chunk.nbytes),
            verified=self.verify_integrity,
        )

    # -- consumer side -----------------------------------------------------------
    def stage_in(
        self, producer: str, step: int
    ) -> Tuple[np.ndarray, Dict[str, Any], StagingReceipt]:
        """Read the chunk staged by ``producer`` at ``step``.

        Returns the payload array, its metadata, and the receipt with
        the locality-dependent simulated cost.
        """
        key = ChunkKey(producer=producer, step=step)
        staged = self.dtl.peek(key)
        if staged is None:
            raise DTLError(
                f"{self.component!r} requested chunk {key} which is not staged"
            )
        producer_node = staged.producer_node
        chunk = self.dtl.retrieve(key, consumer=self.component)
        if self.verify_integrity:
            chunk = Chunk.deserialize(chunk.serialize())
        receipt = StagingReceipt(
            key=key,
            nbytes=chunk.nbytes,
            cost=self.dtl.read_cost(producer_node, self.node, chunk.nbytes),
            verified=self.verify_integrity,
        )
        return chunk.payload, dict(chunk.metadata), receipt
