"""DIMES-like in-memory staging tier.

DIMES (Zhang et al. 2017) keeps staged data *in the memory of the node
where the producer runs* and serves remote consumers over the network
(RDMA) on request. Three consequences, all modeled here:

1. **Writes are always local**: marshal + one memory-bandwidth pass.
2. **Reads are locality-sensitive**: a co-located consumer performs a
   local memory copy; a remote consumer pays network latency plus link
   bandwidth.
3. **Remote reads tax the producer**: the staging service thread runs
   within the producer's application (DIMES links a DataSpaces server
   into the simulation), and the NIC's DMA engine crosses the
   producer's memory bus. Each remote read therefore charges
   ``producer_overhead`` — time effectively stolen from the producer's
   step. Local reads do not wake the service path and charge nothing.

Effect (1)+(2)+(3) together create the co-location advantage the paper
measures: placing an analysis on its simulation's node converts an
expensive remote read *and* a producer tax into one cheap memory copy.
"""

from __future__ import annotations

from typing import Optional

from repro.dtl.base import DataTransportLayer, TransferCost
from repro.platform.network import DragonflyNetwork
from repro.util.validation import require_non_negative, require_positive


class InMemoryStagingDTL(DataTransportLayer):
    """In-memory staging with producer-side data residency.

    Parameters
    ----------
    network:
        Interconnect used for remote reads.
    memory_bandwidth:
        Node memory bandwidth (bytes/s) for local copies.
    marshal_bandwidth:
        Serialization throughput (bytes/s) — chunk packing/unpacking.
    service_latency:
        Fixed per-remote-read cost on the producer (server wakeup,
        index lookup, RDMA registration handshake).
    service_bandwidth:
        Producer-side effective throughput of serving remote data
        (NIC DMA + server thread); charged as producer overhead.
    producer_progress_tax:
        Fractional dilation of the producer's compute stage per remote
        consumer served. DIMES links a staging server into the
        simulation executable; while remote consumers poll and pull,
        its progress thread periodically preempts simulation ranks.
        Measurements of DataSpaces/DIMES-coupled applications put this
        steady overhead at several percent of step time; the default is
        6%. Co-located consumers never enter the remote path, so they
        impose no tax — one of the two locality advantages (with the
        cheaper read itself) that reward co-location.
    """

    def __init__(
        self,
        network: Optional[DragonflyNetwork] = None,
        memory_bandwidth: float = 120e9,
        marshal_bandwidth: float = 8e9,
        service_latency: float = 250e-6,
        service_bandwidth: float = 5e9,
        producer_progress_tax: float = 0.06,
        name: str = "dimes",
    ) -> None:
        super().__init__(name)
        self.producer_progress_tax = require_non_negative(
            "producer_progress_tax", producer_progress_tax
        )
        self.network = network or DragonflyNetwork()
        self.memory_bandwidth = require_positive(
            "memory_bandwidth", memory_bandwidth
        )
        self.marshal_bandwidth = require_positive(
            "marshal_bandwidth", marshal_bandwidth
        )
        self.service_latency = require_non_negative(
            "service_latency", service_latency
        )
        self.service_bandwidth = require_positive(
            "service_bandwidth", service_bandwidth
        )

    # -- cost model ------------------------------------------------------------
    def write_cost(self, producer_node: int, nbytes: float) -> TransferCost:
        """Marshal + local memory write; identical for every placement."""
        require_non_negative("nbytes", nbytes)
        return TransferCost(
            marshal=nbytes / self.marshal_bandwidth,
            transport=nbytes / self.memory_bandwidth,
            producer_overhead=0.0,
        )

    def read_cost(
        self, producer_node: int, consumer_node: int, nbytes: float
    ) -> TransferCost:
        """Local memory copy if co-located, otherwise network + service."""
        require_non_negative("nbytes", nbytes)
        unmarshal = nbytes / self.marshal_bandwidth
        if producer_node == consumer_node:
            return TransferCost(
                marshal=unmarshal,
                transport=nbytes / self.memory_bandwidth,
                producer_overhead=0.0,
            )
        return TransferCost(
            marshal=unmarshal,
            transport=self.network.transfer_time(
                producer_node, consumer_node, nbytes
            ),
            producer_overhead=self.service_latency
            + nbytes / self.service_bandwidth,
        )
