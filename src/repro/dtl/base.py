"""Common interface of all data-transport tiers.

A tier is both a **cost model** (how long do W and R take, and what
does a read cost the producer's node?) and a **functional store**
implementing the paper's no-buffering protocol:

- a producer stages exactly one live chunk per step;
- staging step ``i+1`` while step ``i`` still has unread consumers is a
  :class:`~repro.util.errors.ProtocolError` (the simulation "does not
  write any new data until the data from the previous iteration is
  read");
- a chunk's slot is reclaimed once every registered consumer has read
  it.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.dtl.chunk import Chunk, ChunkKey
from repro.util.errors import DTLError, ProtocolError, ValidationError


@dataclass(frozen=True)
class TransferCost:
    """Decomposed cost of one staging operation (seconds).

    Attributes
    ----------
    marshal:
        Serialization / deserialization CPU time on the caller.
    transport:
        Data movement time (memory copy, network transfer, or device IO).
    producer_overhead:
        Time the operation steals from the *producer's* node (staging
        service thread, NIC DMA). Zero for writes and for local reads.
    """

    marshal: float = 0.0
    transport: float = 0.0
    producer_overhead: float = 0.0

    def __post_init__(self) -> None:
        for name in ("marshal", "transport", "producer_overhead"):
            v = getattr(self, name)
            if v < 0:
                raise ValidationError(f"{name} must be >= 0, got {v!r}")

    @property
    def total(self) -> float:
        """Time experienced by the calling component itself."""
        return self.marshal + self.transport


@dataclass
class StagedChunk:
    """A chunk resident in the staging area, with read bookkeeping."""

    chunk: Chunk
    producer_node: int
    expected_consumers: int
    readers: Set[str] = field(default_factory=set)

    @property
    def fully_read(self) -> bool:
        return len(self.readers) >= self.expected_consumers


class DataTransportLayer(abc.ABC):
    """Abstract staging tier: cost model + chunk store."""

    def __init__(self, name: str) -> None:
        if not name:
            raise ValidationError("DTL name must be non-empty")
        self.name = name
        self._slots: Dict[ChunkKey, StagedChunk] = {}
        self._last_step: Dict[str, int] = {}
        self.bytes_staged_total: int = 0
        self.reads_served_total: int = 0

    # ---- cost model (pure) ----------------------------------------------------
    @abc.abstractmethod
    def write_cost(self, producer_node: int, nbytes: float) -> TransferCost:
        """Cost for the producer to stage ``nbytes`` (the W stage's I/O)."""

    @abc.abstractmethod
    def read_cost(
        self, producer_node: int, consumer_node: int, nbytes: float
    ) -> TransferCost:
        """Cost for a consumer on ``consumer_node`` to read ``nbytes``."""

    # ---- functional store -----------------------------------------------------
    def stage(
        self,
        chunk: Chunk,
        producer_node: int,
        expected_consumers: int = 1,
    ) -> StagedChunk:
        """Place ``chunk`` into the staging area (protocol-checked)."""
        if expected_consumers < 1:
            raise ValidationError(
                f"expected_consumers must be >= 1, got {expected_consumers}"
            )
        key = chunk.key
        member = chunk.metadata.get("member") if chunk.metadata else None
        who = (
            f"member {member!r}, component {key.producer!r}"
            if member
            else f"component {key.producer!r}"
        )
        prev_step = self._last_step.get(key.producer)
        if prev_step is not None:
            if key.step <= prev_step:
                raise ProtocolError(
                    f"{who} staged step {key.step} after "
                    f"step {prev_step} (steps must strictly increase)"
                )
            prev_key = ChunkKey(key.producer, prev_step)
            live = self._slots.get(prev_key)
            if live is not None and not live.fully_read:
                raise ProtocolError(
                    f"{who} attempted to stage step {key.step} "
                    f"while step {prev_step} has unread consumers "
                    f"({len(live.readers)}/{live.expected_consumers} read) — "
                    "the no-buffering protocol forbids this"
                )
        if key in self._slots:
            raise ProtocolError(f"chunk {key} is already staged")
        staged = StagedChunk(
            chunk=chunk,
            producer_node=producer_node,
            expected_consumers=expected_consumers,
        )
        self._slots[key] = staged
        self._last_step[key.producer] = key.step
        self.bytes_staged_total += chunk.nbytes
        return staged

    def retrieve(self, key: ChunkKey, consumer: str) -> Chunk:
        """Read a staged chunk; reclaims the slot on the final read.

        Each consumer may read a given chunk once; a second read by the
        same consumer is a :class:`ProtocolError` (it would double-count
        toward slot reclamation).
        """
        staged = self._slots.get(key)
        if staged is None:
            raise DTLError(
                f"chunk {key} is not staged in {self.name!r} "
                f"(consumer {consumer!r}, producer {key.producer!r}, "
                f"step {key.step})"
            )
        if consumer in staged.readers:
            member = (
                staged.chunk.metadata.get("member")
                if staged.chunk.metadata
                else None
            )
            context = f" of member {member!r}" if member else ""
            raise ProtocolError(
                f"consumer {consumer!r}{context} already read chunk {key} "
                f"(step {key.step})"
            )
        staged.readers.add(consumer)
        self.reads_served_total += 1
        chunk = staged.chunk
        if staged.fully_read:
            del self._slots[key]
        return chunk

    def forget_consumer(self, producer: str, consumer: str) -> None:
        """Stop counting ``consumer`` toward ``producer``'s live slot.

        Used when a consumer is retired mid-run (e.g. a degraded
        analysis dropped by a recovery policy): if the producer's most
        recent chunk is still live and unread by ``consumer``, its
        expected reader count is decremented — reclaiming the slot if
        everyone else has already read — so the producer is not
        deadlocked behind a reader that will never come.
        """
        last = self._last_step.get(producer)
        if last is None:
            return
        key = ChunkKey(producer, last)
        staged = self._slots.get(key)
        if staged is None or consumer in staged.readers:
            return
        staged.expected_consumers = max(staged.expected_consumers - 1, 0)
        if staged.fully_read:
            del self._slots[key]

    def peek(self, key: ChunkKey) -> Optional[StagedChunk]:
        """Non-consuming view of a staged slot (None if absent)."""
        return self._slots.get(key)

    @property
    def live_slots(self) -> int:
        """Number of chunks currently resident."""
        return len(self._slots)

    def live_bytes_on_node(self, node: int) -> int:
        """Bytes currently staged in a given node's memory."""
        return sum(
            s.chunk.nbytes for s in self._slots.values() if s.producer_node == node
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r}, live={self.live_slots})"
