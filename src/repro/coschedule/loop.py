"""The event-driven co-scheduling loop on the DES clock.

:class:`CoScheduler` drives a request stream through admission and
allocation on a simulated clock. Three event kinds exist, processed in
deterministic order (time, then finish < membership < arrival, then
insertion sequence):

- **arrival** — the :class:`~repro.coschedule.admission
  .AdmissionController` decides accept/queue/reject; acceptance makes
  the request resident and triggers a re-partition;
- **finish** — the resident completes, frees its node block, dequeues
  any queued requests that now fit (deadline budgets are re-checked
  against time spent queued), and triggers a re-partition;
- **membership** — an elastic join/leave rewrites the resident's spec
  and triggers a re-partition; the affected ensemble's surviving
  members are migrated with costs billed through the DTL (the PR-8
  :class:`~repro.reschedule.migration.MigrationCostModel` — put on the
  source, get on the destination, the same price list the
  steady-state io model uses).

Progress accounting is analytic: a resident completes work at rate
``1 / makespan(grant)`` and migration bills pause it — so the whole
schedule is a closed-form function of the stream, byte-identical
across runs (``CoScheduleResult.digest()`` is the determinism gate).

Cluster utilization is the integral of *distinct used nodes* over time
divided by ``total_nodes * horizon`` — the same metric
:func:`~repro.coschedule.scenarios.fifo_exclusive_schedule` reports
for the baseline, making the two directly comparable.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.runtime.placement import EnsemblePlacement, MemberPlacement
from repro.runtime.spec import EnsembleSpec
from repro.scheduler.context import PlanningContext
from repro.scheduler.objectives import PlacementScore
from repro.search.cache import StageCache
from repro.util.errors import ValidationError

from repro.coschedule.admission import (
    AdmissionAction,
    AdmissionController,
    AdmissionDecision,
    decisions_digest,
)
from repro.coschedule.allocator import (
    ClusterAllocator,
    ClusterObjective,
    ResidentWorkload,
)
from repro.coschedule.requests import (
    EnsembleRequest,
    MembershipEvent,
    validate_stream,
)

# -- process-wide counters (the /stats section) ------------------------------
_COSCHEDULE_LOCK = threading.Lock()
_COSCHEDULE_COUNTERS: Dict[str, int] = {
    "streams": 0,
    "arrivals": 0,
    "admitted": 0,
    "queued": 0,
    "rejected": 0,
    "dequeued": 0,
    "completions": 0,
    "repartitions": 0,
    "membership_events": 0,
    "migrations": 0,
}


def coschedule_counters() -> Dict[str, int]:
    """Snapshot of the co-scheduling counters (process-wide)."""
    with _COSCHEDULE_LOCK:
        return dict(_COSCHEDULE_COUNTERS)


def reset_coschedule_counters() -> None:
    """Zero the co-scheduling counters."""
    with _COSCHEDULE_LOCK:
        for key in _COSCHEDULE_COUNTERS:
            _COSCHEDULE_COUNTERS[key] = 0


def _count(key: str, amount: int = 1) -> None:
    with _COSCHEDULE_LOCK:
        _COSCHEDULE_COUNTERS[key] += amount


def _placement_dict(placement: EnsemblePlacement) -> dict:
    return {
        "num_nodes": placement.num_nodes,
        "members": [
            {
                "simulation_node": mp.simulation_node,
                "analysis_nodes": list(mp.analysis_nodes),
            }
            for mp in placement.members
        ],
    }


def _used_node_count(placement: EnsemblePlacement) -> int:
    used = set()
    for mp in placement.members:
        used.update(mp.used_nodes)
    return len(used)


@dataclass(frozen=True)
class TimelineEvent:
    """One audited loop event.

    ``allocation`` events carry each resident's physical node block
    and used-node count at that instant — the evidence the
    conservation property checks.
    """

    time: float
    kind: str
    detail: dict

    def to_dict(self) -> dict:
        return {"time": self.time, "kind": self.kind, "detail": self.detail}


@dataclass(frozen=True)
class EnsembleCompletion:
    """One finished ensemble: the audited end of its residency."""

    name: str
    admitted_at: float
    started_at: float
    finished_at: float
    deadline_at: Optional[float]
    met_deadline: Optional[bool]
    nodes_granted: int
    migration_cost: float
    migrations: int
    score: PlacementScore
    reason: str = "completed"

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "admitted_at": self.admitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "deadline_at": self.deadline_at,
            "met_deadline": self.met_deadline,
            "nodes_granted": self.nodes_granted,
            "migration_cost": self.migration_cost,
            "migrations": self.migrations,
            "reason": self.reason,
            "score": {
                "objective": self.score.objective,
                "utility": self.score.utility,
                "ensemble_makespan": self.score.ensemble_makespan,
                "num_nodes": self.score.num_nodes,
                "member_indicators": list(self.score.member_indicators),
                "robust_penalty": self.score.robust_penalty,
                "placement": _placement_dict(self.score.placement),
            },
        }


@dataclass(frozen=True)
class CoScheduleResult:
    """Everything one stream produced, JSON-ready and digestible."""

    total_nodes: int
    cores_per_node: int
    objective: ClusterObjective
    decisions: Tuple[AdmissionDecision, ...]
    completions: Tuple[EnsembleCompletion, ...]
    timeline: Tuple[TimelineEvent, ...]
    makespan: float
    utilization: float

    @property
    def admitted(self) -> Tuple[str, ...]:
        """Names that were ever admitted (directly or via dequeue)."""
        return tuple(
            d.request
            for d in self.decisions
            if d.action is AdmissionAction.ACCEPT
        )

    @property
    def rejected(self) -> Tuple[str, ...]:
        return tuple(
            d.request
            for d in self.decisions
            if d.action is AdmissionAction.REJECT
        )

    def completion(self, name: str) -> EnsembleCompletion:
        for candidate in self.completions:
            if candidate.name == name:
                return candidate
        raise ValidationError(f"no completion recorded for {name!r}")

    def decisions_digest(self) -> str:
        return decisions_digest(self.decisions)

    def to_dict(self) -> dict:
        return {
            "total_nodes": self.total_nodes,
            "cores_per_node": self.cores_per_node,
            "objective": self.objective.to_dict(),
            "decisions": [d.to_dict() for d in self.decisions],
            "completions": [c.to_dict() for c in self.completions],
            "timeline": [t.to_dict() for t in self.timeline],
            "makespan": self.makespan,
            "utilization": self.utilization,
            "decisions_digest": self.decisions_digest(),
        }

    def digest(self) -> str:
        """Content hash of the full schedule (hex SHA-256).

        Two runs of the same stream must agree byte-for-byte here —
        the determinism gate of ``scripts/bench_coschedule.py``.
        """
        rendered = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(rendered.encode("utf-8")).hexdigest()


@dataclass
class _Resident:
    """Mutable residency record (internal to the loop)."""

    request: EnsembleRequest
    spec: EnsembleSpec
    admitted_at: float
    started_at: float
    last_update: float
    remaining: float = 1.0
    pending_delay: float = 0.0
    duration: float = 0.0
    score: Optional[PlacementScore] = None
    physical: Optional[EnsemblePlacement] = None
    member_nodes: Dict[str, MemberPlacement] = field(default_factory=dict)
    nodes_granted: int = 0
    migration_cost: float = 0.0
    migrations: int = 0
    generation: int = 0

    def advance(self, now: float) -> None:
        """Serve migration delay, then burn work, up to ``now``."""
        elapsed = now - self.last_update
        if elapsed <= 0.0:
            self.last_update = now
            return
        served = min(self.pending_delay, elapsed)
        self.pending_delay -= served
        elapsed -= served
        if elapsed > 0.0 and self.duration > 0.0:
            self.remaining = max(
                0.0, self.remaining - elapsed / self.duration
            )
        self.last_update = now

    @property
    def finish_time(self) -> float:
        return (
            self.last_update
            + self.pending_delay
            + self.remaining * self.duration
        )


# event-kind ranks: at one instant, completions free nodes before
# membership changes apply, and both precede new arrivals
_RANK = {"finish": 0, "membership": 1, "arrival": 2}


class CoScheduler:
    """One cluster, one stream, one deterministic schedule.

    Parameters
    ----------
    total_nodes / cores_per_node:
        The shared cluster.
    objective:
        Cluster objective the allocator maximizes (default: pure
        weighted sum of per-ensemble F(P)).
    context:
        Base :class:`~repro.scheduler.context.PlanningContext`. One
        StageCache is shared by admission probes and every allocator
        search; the DTL (the context's, or the cache's Cori-like
        default) prices migrations.
    robust_rate / policy:
        Forwarded to the admission controller's deadline probe.
    max_partitions:
        Grant-lattice bound forwarded to the allocator.
    """

    def __init__(
        self,
        total_nodes: int,
        cores_per_node: int = 32,
        objective: Optional[ClusterObjective] = None,
        context: Optional[PlanningContext] = None,
        robust_rate: float = 0.0,
        policy: str = "retry",
        max_partitions: int = 20_000,
    ) -> None:
        base = context or PlanningContext()
        cache = base.cache
        if cache is None or not cache.matches(base.cluster, base.dtl):
            cache = StageCache(base.cluster, base.dtl)
        base = base.evolve(cache=cache)
        self.total_nodes = total_nodes
        self.cores_per_node = cores_per_node
        self.objective = objective or ClusterObjective()
        self.admission = AdmissionController(
            total_nodes,
            cores_per_node,
            context=base,
            robust_rate=robust_rate,
            policy=policy,
        )
        self.allocator = ClusterAllocator(
            total_nodes,
            cores_per_node,
            objective=self.objective,
            context=base,
            max_partitions=max_partitions,
        )
        from repro.reschedule.migration import MigrationCostModel

        self._cost_model = MigrationCostModel(cache.dtl)

    # -- the run -------------------------------------------------------------
    def run(
        self, requests: Sequence[EnsembleRequest]
    ) -> CoScheduleResult:
        """Schedule the whole stream; return the audited result."""
        stream = validate_stream(tuple(requests))
        _count("streams")

        events: List[Tuple[float, int, int, str, object]] = []
        seq = 0

        def push(time: float, kind: str, payload: object) -> None:
            nonlocal seq
            heapq.heappush(events, (time, _RANK[kind], seq, kind, payload))
            seq += 1

        stream_index = {r.name: i for i, r in enumerate(stream)}
        for request in sorted(
            stream, key=lambda r: (r.arrival_time, stream_index[r.name])
        ):
            push(request.arrival_time, "arrival", request)

        residents: Dict[str, _Resident] = {}
        order: List[str] = []  # residency order = allocator input order
        queue: List[Tuple[int, float, int, EnsembleRequest]] = []
        decisions: List[AdmissionDecision] = []
        completions: List[EnsembleCompletion] = []
        timeline: List[TimelineEvent] = []
        busy_node_seconds = 0.0
        used_now = 0
        last_clock = 0.0
        horizon = 0.0

        def headroom() -> int:
            """Cluster nodes a re-partition could free for a newcomer."""
            taken = 0
            for name in order:
                resident = residents[name]
                floor = self.admission.min_feasible_nodes(
                    resident.spec,
                    lo=resident.request.min_nodes,
                    hi=self.admission.grant_cap(resident.request),
                )
                taken += floor if floor is not None else self.total_nodes
            return self.total_nodes - taken

        def integrate_to(now: float) -> None:
            nonlocal busy_node_seconds, last_clock
            if now > last_clock:
                busy_node_seconds += used_now * (now - last_clock)
                last_clock = now

        def repartition(now: float, reason: str) -> None:
            nonlocal used_now
            for name in order:
                residents[name].advance(now)
            if not order:
                used_now = 0
                timeline.append(
                    TimelineEvent(
                        time=now,
                        kind="allocation",
                        detail={"reason": reason, "entries": []},
                    )
                )
                return
            workloads = [
                ResidentWorkload(
                    name=name,
                    spec=residents[name].spec,
                    weight=residents[name].request.weight,
                    remaining=residents[name].remaining,
                    deadline_at=residents[name].request.deadline_at,
                    min_nodes=residents[name].request.min_nodes,
                    max_nodes=residents[name].request.max_nodes,
                )
                for name in order
            ]
            allocation = self.allocator.allocate(workloads, now=now)
            _count("repartitions")
            entries_detail = []
            for name in order:
                resident = residents[name]
                entry = allocation.entry(name)
                new_physical = entry.physical_placement(self.total_nodes)
                cost, moves = self._migration(resident, new_physical)
                if moves:
                    resident.pending_delay += cost
                    resident.migration_cost += cost
                    resident.migrations += moves
                    _count("migrations", moves)
                resident.score = entry.score
                resident.physical = new_physical
                resident.member_nodes = {
                    member.name: mp
                    for member, mp in zip(
                        resident.spec.members, new_physical.members
                    )
                }
                resident.duration = entry.score.ensemble_makespan
                resident.nodes_granted = entry.num_nodes
                resident.generation += 1
                push(
                    resident.finish_time,
                    "finish",
                    (name, resident.generation),
                )
                entries_detail.append(
                    {
                        "name": name,
                        "node_offset": entry.node_offset,
                        "num_nodes": entry.num_nodes,
                        "used_nodes": _used_node_count(new_physical),
                        "used_node_list": sorted(
                            {
                                n
                                for mp in new_physical.members
                                for n in mp.used_nodes
                            }
                        ),
                        "utility": entry.score.utility,
                        "migration_cost": cost,
                        "finish_time": resident.finish_time,
                    }
                )
            used_now = sum(
                _used_node_count(residents[name].physical)
                for name in order
            )
            timeline.append(
                TimelineEvent(
                    time=now,
                    kind="allocation",
                    detail={
                        "reason": reason,
                        "value": allocation.value,
                        "exhaustive": allocation.exhaustive,
                        "entries": entries_detail,
                    },
                )
            )

        def admit(request: EnsembleRequest, now: float) -> None:
            residents[request.name] = _Resident(
                request=request,
                spec=request.spec,
                admitted_at=now,
                started_at=now,
                last_update=now,
            )
            order.append(request.name)
            for event in request.membership:
                push(
                    now + event.offset,
                    "membership",
                    (request.name, event),
                )

        def complete(name: str, now: float, reason: str) -> None:
            resident = residents.pop(name)
            order.remove(name)
            deadline_at = resident.request.deadline_at
            completions.append(
                EnsembleCompletion(
                    name=name,
                    admitted_at=resident.admitted_at,
                    started_at=resident.started_at,
                    finished_at=now,
                    deadline_at=deadline_at,
                    met_deadline=(
                        None if deadline_at is None else now <= deadline_at
                    ),
                    nodes_granted=resident.nodes_granted,
                    migration_cost=resident.migration_cost,
                    migrations=resident.migrations,
                    score=resident.score,
                    reason=reason,
                )
            )
            _count("completions")

        def drain_queue(now: float) -> bool:
            """Admit every queued request that now fits; True if any did."""
            admitted_any = False
            # highest priority first, then arrival, then stream order
            queue.sort(key=lambda item: (-item[0], item[1], item[2]))
            still_waiting = []
            for prio, arrival, index, request in queue:
                free = headroom()
                floor = self.admission.min_feasible_nodes(
                    request.spec,
                    lo=request.min_nodes,
                    hi=self.admission.grant_cap(request),
                )
                feasible = self.admission.feasible_count(request)
                deadline_at = request.deadline_at
                if deadline_at is not None:
                    predicted = self.admission.predicted_makespan(request)
                    if predicted is None or now + predicted > deadline_at:
                        decisions.append(
                            AdmissionDecision(
                                request=request.name,
                                time=now,
                                action=AdmissionAction.REJECT,
                                reason=(
                                    f"deadline expired while queued: "
                                    f"{now!r}s + best {predicted!r}s "
                                    f"overruns {deadline_at!r}s"
                                ),
                                min_feasible_nodes=floor,
                                feasible_placements=feasible,
                                predicted_makespan=predicted,
                                free_nodes=free,
                            )
                        )
                        _count("rejected")
                        continue
                if floor is not None and floor <= free:
                    decisions.append(
                        AdmissionDecision(
                            request=request.name,
                            time=now,
                            action=AdmissionAction.ACCEPT,
                            reason=(
                                f"dequeued: minimum grant {floor} fits "
                                f"the {free}-node headroom"
                            ),
                            min_feasible_nodes=floor,
                            feasible_placements=feasible,
                            predicted_makespan=None,
                            free_nodes=free,
                        )
                    )
                    _count("dequeued")
                    _count("admitted")
                    admit(request, now)
                    admitted_any = True
                else:
                    still_waiting.append((prio, arrival, index, request))
            queue[:] = still_waiting
            return admitted_any

        while events:
            now, _, _, kind, payload = heapq.heappop(events)
            integrate_to(now)
            if kind == "arrival":
                request = payload
                _count("arrivals")
                decision = self.admission.decide(request, headroom(), now)
                decisions.append(decision)
                if decision.action is AdmissionAction.ACCEPT:
                    _count("admitted")
                    admit(request, now)
                    repartition(now, f"arrival:{request.name}")
                elif decision.action is AdmissionAction.QUEUE:
                    _count("queued")
                    queue.append(
                        (
                            request.priority,
                            request.arrival_time,
                            stream_index[request.name],
                            request,
                        )
                    )
                else:
                    _count("rejected")
                horizon = max(horizon, now)
            elif kind == "finish":
                name, generation = payload
                resident = residents.get(name)
                if resident is None or resident.generation != generation:
                    continue  # stale finish from a superseded partition
                resident.advance(now)
                if (
                    resident.remaining > 1e-12
                    or resident.pending_delay > 0.0
                ):  # pragma: no cover - defensive; repartition always
                    continue  # pushes a fresh finish for the new state
                complete(name, now, "completed")
                horizon = max(horizon, now)
                drain_queue(now)
                repartition(now, f"finish:{name}")
            elif kind == "membership":
                name, event = payload
                resident = residents.get(name)
                if resident is None:
                    timeline.append(
                        TimelineEvent(
                            time=now,
                            kind="membership-skipped",
                            detail={
                                "name": name,
                                "action": event.action,
                                "member": event.member_name,
                            },
                        )
                    )
                    continue
                _count("membership_events")
                resident.advance(now)
                emptied = self._apply_membership(resident, event)
                timeline.append(
                    TimelineEvent(
                        time=now,
                        kind="membership",
                        detail={
                            "name": name,
                            "action": event.action,
                            "member": event.member_name,
                            "members_now": (
                                0 if emptied else len(resident.spec.members)
                            ),
                        },
                    )
                )
                horizon = max(horizon, now)
                if emptied:
                    complete(name, now, "all members left")
                    drain_queue(now)
                    repartition(now, f"membership-drain:{name}")
                else:
                    repartition(now, f"membership:{name}")

        integrate_to(horizon)
        utilization = (
            busy_node_seconds / (self.total_nodes * horizon)
            if horizon > 0.0
            else 0.0
        )
        return CoScheduleResult(
            total_nodes=self.total_nodes,
            cores_per_node=self.cores_per_node,
            objective=self.objective,
            decisions=tuple(decisions),
            completions=tuple(completions),
            timeline=tuple(timeline),
            makespan=horizon,
            utilization=utilization,
        )

    # -- elastic membership --------------------------------------------------
    def _apply_membership(
        self, resident: _Resident, event: MembershipEvent
    ) -> bool:
        """Rewrite the resident's spec; True when the ensemble emptied."""
        members = list(resident.spec.members)
        if event.action == "join":
            if any(m.name == event.member_name for m in members):
                raise ValidationError(
                    f"member {event.member_name!r} already in "
                    f"{resident.spec.name!r}"
                )
            members.append(event.member)
        else:
            if not any(m.name == event.member_name for m in members):
                raise ValidationError(
                    f"member {event.member_name!r} not in "
                    f"{resident.spec.name!r}"
                )
            members = [m for m in members if m.name != event.member_name]
        if not members:
            return True
        resident.spec = EnsembleSpec(resident.spec.name, tuple(members))
        return False

    def _migration(
        self, resident: _Resident, new_physical: EnsemblePlacement
    ) -> Tuple[float, int]:
        """DTL-priced moves of surviving members, old → new placement.

        Members are paired *by name* between the resident's previous
        physical placement and the new one — a joining member has no
        state to move yet and a departed member took its state along,
        so only survivors are priced.
        """
        if resident.physical is None:
            return 0.0, 0
        common_specs = []
        old_places = []
        new_places = []
        for member, new_mp in zip(
            resident.spec.members, new_physical.members
        ):
            old_mp = resident.member_nodes.get(member.name)
            if old_mp is not None:
                common_specs.append(member)
                old_places.append(old_mp)
                new_places.append(new_mp)
        if not common_specs:
            return 0.0, 0
        common = EnsembleSpec(resident.spec.name, tuple(common_specs))
        plan = self._cost_model.plan_moves(
            common,
            EnsemblePlacement(
                num_nodes=self.total_nodes, members=tuple(old_places)
            ),
            EnsemblePlacement(
                num_nodes=self.total_nodes, members=tuple(new_places)
            ),
        )
        return plan.total_cost, len(plan.moves)
