"""Cluster-level co-scheduling of ensemble streams.

The paper plans one ensemble on one fixed allocation; this package is
the layer above — a cluster backend that admits a *stream* of
ensemble requests, partitions the cluster's nodes across the ensembles
resident at each instant, and re-partitions on membership events
(arrival, completion, elastic member join/leave):

- :mod:`repro.coschedule.requests` — :class:`EnsembleRequest` records
  (deadline, priority, arrival, elastic membership);
- :mod:`repro.coschedule.admission` — deterministic accept / queue /
  reject decisions driven by closed-form feasibility counts and the
  robustness surrogate;
- :mod:`repro.coschedule.allocator` — grant-vector search optimizing a
  configurable :class:`ClusterObjective` (weighted per-ensemble F(P),
  max-min fairness, deadline-miss penalty) through the existing
  per-ensemble :func:`~repro.search.engine.find_best_placement`;
- :mod:`repro.coschedule.loop` — the event loop on the DES clock, with
  migrations billed through the DTL;
- :mod:`repro.coschedule.scenarios` — the canonical mixed-deadline
  stream and the FIFO-exclusive baseline it is measured against.

See ``docs/COSCHEDULING.md`` for objective definitions, the admission
policy, and a worked two-ensemble example.
"""

from repro.coschedule.admission import (
    AdmissionAction,
    AdmissionController,
    AdmissionDecision,
    decisions_digest,
)
from repro.coschedule.allocator import (
    ClusterAllocation,
    ClusterAllocator,
    ClusterObjective,
    EnsembleAllocation,
    ResidentWorkload,
)
from repro.coschedule.loop import (
    CoScheduleResult,
    CoScheduler,
    EnsembleCompletion,
    TimelineEvent,
    coschedule_counters,
    reset_coschedule_counters,
)
from repro.coschedule.requests import (
    MEMBERSHIP_ACTIONS,
    EnsembleRequest,
    MembershipEvent,
    validate_stream,
)
from repro.coschedule.scenarios import (
    FifoEntry,
    FifoSchedule,
    canonical_mixed_deadline_stream,
    fifo_exclusive_schedule,
)

__all__ = [
    "AdmissionAction",
    "AdmissionController",
    "AdmissionDecision",
    "ClusterAllocation",
    "ClusterAllocator",
    "ClusterObjective",
    "CoScheduleResult",
    "CoScheduler",
    "EnsembleAllocation",
    "EnsembleCompletion",
    "EnsembleRequest",
    "FifoEntry",
    "FifoSchedule",
    "MEMBERSHIP_ACTIONS",
    "MembershipEvent",
    "ResidentWorkload",
    "TimelineEvent",
    "canonical_mixed_deadline_stream",
    "coschedule_counters",
    "decisions_digest",
    "fifo_exclusive_schedule",
    "reset_coschedule_counters",
    "validate_stream",
]
