"""Node partitioning across concurrently-resident ensembles.

The :class:`ClusterAllocator` answers: given the ensembles currently
resident on a ``total_nodes`` cluster, how many nodes does each get?
It searches integer grant vectors (one grant per resident, bounded by
each resident's feasibility minimum and cap, summing to at most the
cluster), scores each vector by running the existing
:func:`~repro.search.engine.find_best_placement` per ensemble at its
grant — the StageCache and vectorized kernel are reused unchanged, and
per-(spec, grant) results are memoized so a re-partition only searches
grants it has never seen — and picks the vector maximizing a
configurable :class:`ClusterObjective`.

The partition is *complete*: grants must sum to the cluster size (or
to the residents' combined cap when that is smaller) — every node is
held by some ensemble, and F(P)'s provisioning indicator charges each
ensemble for nodes it holds but leaves idle, exactly as the paper
charges a single ensemble for its whole allocation. Without this rule
the allocator would shrink grants to inflate per-ensemble F
(provisioning improves as the allocation shrinks) while cluster nodes
idled unaccounted. Grants are enumerated *cap-first* (descending per
resident) and ties keep the first optimum, so a single resident always
holds the whole cluster and the one-ensemble stream degenerates
*exactly* to ``find_best_placement(spec, total_nodes, ...)`` —
float-identical, asserted at tolerance 0.0 by the differential
oracle's coschedule tier.

When the grant lattice is too large to enumerate (``max_partitions``),
a deterministic greedy water-filling fallback runs instead: every
resident starts at its minimum and spare nodes go one at a time to the
resident whose grant increase raises the cluster objective most (first
resident wins ties) until the partition is complete.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.runtime.placement import EnsemblePlacement, MemberPlacement
from repro.runtime.spec import EnsembleSpec
from repro.scheduler.context import PlanningContext
from repro.scheduler.objectives import PlacementScore
from repro.search.cache import StageCache
from repro.search.engine import find_best_placement
from repro.util.errors import PlacementError, ValidationError
from repro.util.validation import require_positive_int


@dataclass(frozen=True)
class ClusterObjective:
    """The cluster-level value of one allocation.

    ``value = utility_weight * sum_e(w_e * U_e)
            + fairness_weight * min_e(U_e)
            - deadline_weight * sum_e(max(0, finish_e - deadline_e))``

    where ``U_e`` is ensemble *e*'s placement utility (F(P) minus its
    robustness penalty), ``w_e`` its priority weight, and the deadline
    sum runs over deadlined residents only. The default is the pure
    weighted sum; fairness (max-min) and deadline-miss pressure are
    opt-in.
    """

    utility_weight: float = 1.0
    fairness_weight: float = 0.0
    deadline_weight: float = 0.0

    def __post_init__(self) -> None:
        for name in ("utility_weight", "fairness_weight", "deadline_weight"):
            value = getattr(self, name)
            if value < 0.0:
                raise ValidationError(
                    f"{name} must be >= 0, got {value!r}"
                )
        if (
            self.utility_weight == 0.0
            and self.fairness_weight == 0.0
            and self.deadline_weight == 0.0
        ):
            raise ValidationError(
                "at least one objective weight must be positive"
            )

    def evaluate(
        self, entries: Sequence["EnsembleAllocation"]
    ) -> float:
        """The cluster value of one complete allocation."""
        if not entries:
            return 0.0
        weighted = sum(e.weight * e.score.utility for e in entries)
        fairness = min(e.score.utility for e in entries)
        lateness = sum(
            max(0.0, e.predicted_finish - e.deadline_at)
            for e in entries
            if e.deadline_at is not None
        )
        return (
            self.utility_weight * weighted
            + self.fairness_weight * fairness
            - self.deadline_weight * lateness
        )

    def to_dict(self) -> dict:
        return {
            "utility_weight": self.utility_weight,
            "fairness_weight": self.fairness_weight,
            "deadline_weight": self.deadline_weight,
        }


@dataclass(frozen=True)
class ResidentWorkload:
    """Allocator-facing view of one resident ensemble.

    ``remaining`` is the fraction of the ensemble's work left (1.0 for
    a fresh admission); ``deadline_at`` the absolute deadline, if any.
    """

    name: str
    spec: EnsembleSpec
    weight: float = 1.0
    remaining: float = 1.0
    deadline_at: Optional[float] = None
    min_nodes: int = 1
    max_nodes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.weight <= 0.0:
            raise ValidationError(
                f"weight must be > 0, got {self.weight!r}"
            )
        if not 0.0 <= self.remaining <= 1.0:
            raise ValidationError(
                f"remaining must be within [0, 1], got {self.remaining!r}"
            )
        require_positive_int("min_nodes", self.min_nodes)


@dataclass(frozen=True)
class EnsembleAllocation:
    """One resident's share of the cluster under an allocation.

    ``score`` is the best placement over a *grant-local* allocation of
    ``num_nodes`` nodes (indices ``0..num_nodes-1``); the physical
    node block is ``[node_offset, node_offset + num_nodes)``.
    """

    name: str
    node_offset: int
    num_nodes: int
    score: PlacementScore
    weight: float
    predicted_finish: float
    deadline_at: Optional[float] = None

    def physical_placement(self, total_nodes: int) -> EnsemblePlacement:
        """The grant-local placement shifted onto cluster node indices."""
        return EnsemblePlacement(
            num_nodes=total_nodes,
            members=tuple(
                MemberPlacement(
                    simulation_node=mp.simulation_node + self.node_offset,
                    analysis_nodes=tuple(
                        n + self.node_offset for n in mp.analysis_nodes
                    ),
                )
                for mp in self.score.placement.members
            ),
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "node_offset": self.node_offset,
            "num_nodes": self.num_nodes,
            "weight": self.weight,
            "utility": self.score.utility,
            "objective": self.score.objective,
            "makespan": self.score.ensemble_makespan,
            "predicted_finish": self.predicted_finish,
            "deadline_at": self.deadline_at,
        }


@dataclass(frozen=True)
class ClusterAllocation:
    """A complete partition of the cluster across residents."""

    total_nodes: int
    entries: Tuple[EnsembleAllocation, ...] = field(default_factory=tuple)
    value: float = 0.0
    exhaustive: bool = True

    @property
    def nodes_used(self) -> int:
        return sum(e.num_nodes for e in self.entries)

    def entry(self, name: str) -> EnsembleAllocation:
        for candidate in self.entries:
            if candidate.name == name:
                return candidate
        raise PlacementError(f"no allocation entry for {name!r}")

    def to_dict(self) -> dict:
        return {
            "total_nodes": self.total_nodes,
            "nodes_used": self.nodes_used,
            "value": self.value,
            "exhaustive": self.exhaustive,
            "entries": [e.to_dict() for e in self.entries],
        }


class ClusterAllocator:
    """Grant-vector search over resident ensembles.

    Parameters
    ----------
    total_nodes / cores_per_node:
        The shared cluster.
    objective:
        The :class:`ClusterObjective` allocations maximize.
    context:
        Base :class:`~repro.scheduler.context.PlanningContext`; its
        StageCache (one is built if absent) is shared across every
        per-ensemble search at every grant size — cache entries are
        keyed by content, not node budget, so re-partitions reuse all
        stage work.
    max_partitions:
        Largest grant lattice enumerated exhaustively; beyond it the
        deterministic greedy fallback runs (``exhaustive=False`` on
        the result).
    """

    def __init__(
        self,
        total_nodes: int,
        cores_per_node: int = 32,
        objective: Optional[ClusterObjective] = None,
        context: Optional[PlanningContext] = None,
        max_partitions: int = 20_000,
    ) -> None:
        require_positive_int("total_nodes", total_nodes)
        require_positive_int("cores_per_node", cores_per_node)
        require_positive_int("max_partitions", max_partitions)
        self.total_nodes = total_nodes
        self.cores_per_node = cores_per_node
        self.objective = objective or ClusterObjective()
        base = context or PlanningContext()
        cache = base.cache
        if cache is None or not cache.matches(base.cluster, base.dtl):
            cache = StageCache(base.cluster, base.dtl)
        self._context = base.evolve(cache=cache)
        self.max_partitions = max_partitions
        self._best: Dict[
            Tuple[int, int], Tuple[EnsembleSpec, Optional[PlacementScore]]
        ] = {}
        self.searches = 0

    @property
    def stage_cache(self) -> StageCache:
        return self._context.cache

    def best_for(
        self, spec: EnsembleSpec, nodes: int
    ) -> Optional[PlacementScore]:
        """Memoized best placement of ``spec`` over a ``nodes`` grant."""
        key = (id(spec), nodes)
        memo = self._best.get(key)
        if memo is not None:
            return memo[1]
        try:
            best, _ = find_best_placement(
                spec,
                nodes,
                self.cores_per_node,
                context=self._context.evolve(vectorized=True),
            )
        except PlacementError:
            best = None
        self._best[key] = (spec, best)
        self.searches += 1
        return best

    # -- grant-vector search --------------------------------------------------
    def _grant_bounds(
        self, residents: Sequence[ResidentWorkload]
    ) -> List[Tuple[int, int]]:
        """Per-resident (min, cap) grant bounds; raises when over-committed."""
        bounds: List[Tuple[int, int]] = []
        floor_total = 0
        for resident in residents:
            cap = self.total_nodes
            if resident.max_nodes is not None:
                cap = min(cap, resident.max_nodes)
            lo = None
            for nodes in range(resident.min_nodes, cap + 1):
                if self.best_for(resident.spec, nodes) is not None:
                    lo = nodes
                    break
            if lo is None:
                raise PlacementError(
                    f"resident {resident.name!r} fits no grant up to "
                    f"{cap} x {self.cores_per_node} cores"
                )
            bounds.append((lo, cap))
            floor_total += lo
        if floor_total > self.total_nodes:
            raise PlacementError(
                f"minimum footprints ({floor_total} nodes) exceed the "
                f"{self.total_nodes}-node cluster"
            )
        return bounds

    def _entries_for(
        self,
        residents: Sequence[ResidentWorkload],
        grants: Sequence[int],
        now: float,
    ) -> Optional[Tuple[EnsembleAllocation, ...]]:
        entries: List[EnsembleAllocation] = []
        offset = 0
        for resident, nodes in zip(residents, grants):
            score = self.best_for(resident.spec, nodes)
            if score is None:
                return None
            entries.append(
                EnsembleAllocation(
                    name=resident.name,
                    node_offset=offset,
                    num_nodes=nodes,
                    score=score,
                    weight=resident.weight,
                    predicted_finish=(
                        now + resident.remaining * score.ensemble_makespan
                    ),
                    deadline_at=resident.deadline_at,
                )
            )
            offset += nodes
        return tuple(entries)

    def allocate(
        self,
        residents: Sequence[ResidentWorkload],
        now: float = 0.0,
    ) -> ClusterAllocation:
        """The cluster-objective-maximizing partition over ``residents``.

        Residents keep their input order; node blocks are handed out
        contiguously in that order, so the result is deterministic in
        (residents, clock) alone. Ties keep the first grant vector in
        cap-first enumeration order.
        """
        if not residents:
            return ClusterAllocation(total_nodes=self.total_nodes)
        bounds = self._grant_bounds(residents)
        # a complete partition hands out every node, up to the
        # residents' combined cap
        target = min(self.total_nodes, sum(cap for _, cap in bounds))
        lattice = 1
        for lo, cap in bounds:
            lattice *= cap - lo + 1
        if lattice > self.max_partitions:
            return self._allocate_greedy(residents, bounds, target, now)
        best_entries: Optional[Tuple[EnsembleAllocation, ...]] = None
        best_value = 0.0
        for grants in itertools.product(
            *(range(cap, lo - 1, -1) for lo, cap in bounds)
        ):
            if sum(grants) != target:
                continue
            entries = self._entries_for(residents, grants, now)
            if entries is None:
                continue
            value = self.objective.evaluate(entries)
            if best_entries is None or value > best_value:
                best_entries = entries
                best_value = value
        if best_entries is None:
            raise PlacementError(
                f"no grant vector fits {len(residents)} residents on "
                f"{self.total_nodes} nodes"
            )
        return ClusterAllocation(
            total_nodes=self.total_nodes,
            entries=best_entries,
            value=best_value,
        )

    def _allocate_greedy(
        self,
        residents: Sequence[ResidentWorkload],
        bounds: Sequence[Tuple[int, int]],
        target: int,
        now: float,
    ) -> ClusterAllocation:
        """Deterministic water-filling when the lattice is too large.

        The partition must still be complete, so every spare node is
        handed to the resident whose grant increase changes the
        cluster value the most (first resident wins ties) even when
        the best available change is negative.
        """
        grants = [lo for lo, _ in bounds]
        free = target - sum(grants)
        while free > 0:
            best_index = None
            best_gain = 0.0
            base_entries = self._entries_for(residents, grants, now)
            if base_entries is None:  # pragma: no cover - defensive
                break
            base_value = self.objective.evaluate(base_entries)
            for index, (_, cap) in enumerate(bounds):
                if grants[index] >= cap:
                    continue
                trial = list(grants)
                trial[index] += 1
                entries = self._entries_for(residents, trial, now)
                if entries is None:
                    continue
                gain = self.objective.evaluate(entries) - base_value
                if best_index is None or gain > best_gain:
                    best_index = index
                    best_gain = gain
            if best_index is None:  # pragma: no cover - defensive
                break
            grants[best_index] += 1
            free -= 1
        entries = self._entries_for(residents, grants, now)
        if entries is None:  # pragma: no cover - defensive
            raise PlacementError("greedy allocation found no placements")
        return ClusterAllocation(
            total_nodes=self.total_nodes,
            entries=entries,
            value=self.objective.evaluate(entries),
            exhaustive=False,
        )
