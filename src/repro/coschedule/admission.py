"""Deterministic admission control for ensemble streams.

The :class:`AdmissionController` answers one question per arriving
:class:`~repro.coschedule.requests.EnsembleRequest`: *accept*, *queue*,
or *reject* — and always with an explicit machine-readable reason.
Decisions are driven by two closed-form probes, never by load
measurements, so the same request stream produces byte-identical
decisions on every run (asserted by ``decisions_digest`` in the
property suite):

- **feasibility** — :func:`~repro.configs.generator
  .count_feasible_placements` counts the canonical placements of the
  request's spec over candidate grants without materializing any; a
  request whose spec fits no grant up to its cap is rejected outright;
- **deadline** — the best full-cap placement is found with
  :func:`~repro.search.engine.find_best_placement` and its makespan
  (priced through the analytic robustness surrogate when a failure
  rate is configured) is compared against the deadline; an unmeetable
  deadline is a rejection, not a queue entry.

A feasible, meetable request is *accepted* when the cluster's minimum
resident footprint leaves room for the request's own minimum grant
(residents can shrink to their minimum at the next re-partition), and
*queued* otherwise.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.configs.generator import count_feasible_placements
from repro.faults.analytic import RobustnessTerm, node_crash_builder
from repro.faults.recovery import make_policy
from repro.runtime.spec import EnsembleSpec
from repro.scheduler.context import PlanningContext
from repro.search.engine import find_best_placement
from repro.util.errors import PlacementError
from repro.util.validation import require_positive_int

from repro.coschedule.requests import EnsembleRequest


class AdmissionAction(enum.Enum):
    """The three admission outcomes."""

    ACCEPT = "accept"
    QUEUE = "queue"
    REJECT = "reject"


@dataclass(frozen=True)
class AdmissionDecision:
    """One admission verdict, with its evidence.

    ``min_feasible_nodes`` is the smallest grant the spec fits on
    (None when it fits nowhere); ``feasible_placements`` counts the
    canonical placements at the request's cap; ``predicted_makespan``
    is the best-placement makespan used for the deadline test (None
    when no deadline applies or nothing fits); ``free_nodes`` is the
    headroom the controller saw (total minus resident minimum
    footprints).
    """

    request: str
    time: float
    action: AdmissionAction
    reason: str
    min_feasible_nodes: Optional[int]
    feasible_placements: int
    predicted_makespan: Optional[float]
    free_nodes: int

    def to_dict(self) -> dict:
        return {
            "request": self.request,
            "time": self.time,
            "action": self.action.value,
            "reason": self.reason,
            "min_feasible_nodes": self.min_feasible_nodes,
            "feasible_placements": self.feasible_placements,
            "predicted_makespan": self.predicted_makespan,
            "free_nodes": self.free_nodes,
        }


def decisions_digest(decisions: Sequence[AdmissionDecision]) -> str:
    """Content hash of a decision log (hex SHA-256).

    The canonical rendering (sorted keys, no whitespace, ``repr``
    floats) is the byte stream two runs must agree on for the
    determinism property to hold.
    """
    rendered = json.dumps(
        [d.to_dict() for d in decisions],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(rendered.encode("utf-8")).hexdigest()


class AdmissionController:
    """Stateless decision function over (request, headroom, clock).

    Parameters
    ----------
    total_nodes / cores_per_node:
        The cluster the stream shares.
    context:
        :class:`~repro.scheduler.context.PlanningContext` for the
        deadline probe's search (shared StageCache recommended — the
        co-scheduler passes its own).
    robust_rate / policy:
        When ``robust_rate`` > 0, the deadline probe prices the best
        placement through the node-crash robustness surrogate
        (``expected`` rather than failure-free makespan), with
        ``policy`` as the recovery policy.
    """

    def __init__(
        self,
        total_nodes: int,
        cores_per_node: int = 32,
        context: Optional[PlanningContext] = None,
        robust_rate: float = 0.0,
        policy: str = "retry",
    ) -> None:
        require_positive_int("total_nodes", total_nodes)
        require_positive_int("cores_per_node", cores_per_node)
        self.total_nodes = total_nodes
        self.cores_per_node = cores_per_node
        self.robust_rate = robust_rate
        self.policy = policy
        base = context or PlanningContext()
        if robust_rate > 0:
            base = base.evolve(
                robustness=RobustnessTerm(
                    policy=make_policy(policy),
                    model_builder=node_crash_builder(robust_rate),
                )
            )
        self._context = base
        # probe memos keyed by spec identity (the value keeps the spec
        # alive so ids are never recycled); memo hits only skip
        # recomputation of a deterministic function
        self._min_nodes: Dict[int, Tuple[EnsembleSpec, Optional[int]]] = {}
        self._best: Dict[
            Tuple[int, int], Tuple[EnsembleSpec, Optional[object]]
        ] = {}

    # -- probes --------------------------------------------------------------
    def grant_cap(self, request: EnsembleRequest) -> int:
        """The largest grant this request may receive."""
        if request.max_nodes is None:
            return self.total_nodes
        return min(request.max_nodes, self.total_nodes)

    def feasible_count(self, request: EnsembleRequest) -> int:
        """Canonical placements of the request's spec at its grant cap."""
        return count_feasible_placements(
            request.spec, self.grant_cap(request), self.cores_per_node
        )

    def min_feasible_nodes(
        self, spec: EnsembleSpec, lo: int = 1, hi: Optional[int] = None
    ) -> Optional[int]:
        """Smallest grant in ``[lo, hi]`` the spec fits on, else None.

        Feasibility is monotone in the grant (every placement over
        ``n`` nodes is canonical over ``n + 1``), so the first feasible
        count walking up from ``lo`` is the minimum.
        """
        hi = self.total_nodes if hi is None else min(hi, self.total_nodes)
        key = id(spec)
        memo = self._min_nodes.get(key)
        if memo is not None and memo[1] is not None and lo <= memo[1] <= hi:
            return memo[1]
        for nodes in range(lo, hi + 1):
            if count_feasible_placements(
                spec, nodes, self.cores_per_node
            ) > 0:
                self._min_nodes[key] = (spec, nodes)
                return nodes
        return None

    def best_placement(self, spec: EnsembleSpec, nodes: int):
        """Memoized ``find_best_placement`` at one grant (None = infeasible)."""
        key = (id(spec), nodes)
        memo = self._best.get(key)
        if memo is not None:
            return memo[1]
        try:
            best, _ = find_best_placement(
                spec,
                nodes,
                self.cores_per_node,
                context=self._context.evolve(vectorized=True),
            )
        except PlacementError:
            best = None
        self._best[key] = (spec, best)
        return best

    def predicted_makespan(
        self, request: EnsembleRequest
    ) -> Optional[float]:
        """Best-case completion seconds at the request's grant cap.

        With a configured failure rate this is the surrogate's
        *expected* makespan (the robustness term already degraded the
        search's choice; the expectation itself comes from re-pricing
        the winner), otherwise the failure-free analytic makespan.
        """
        best = self.best_placement(request.spec, self.grant_cap(request))
        if best is None:
            return None
        if self.robust_rate <= 0:
            return best.ensemble_makespan
        from repro.faults.analytic import surrogate_resilience

        report = surrogate_resilience(
            request.spec,
            best.placement,
            node_crash_builder(self.robust_rate)(0),
            make_policy(self.policy),
            cluster=self._context.cluster,
            dtl=self._context.dtl,
        )
        return report.expected_makespan

    # -- the decision function ----------------------------------------------
    def decide(
        self,
        request: EnsembleRequest,
        free_nodes: int,
        now: float,
    ) -> AdmissionDecision:
        """Accept / queue / reject ``request`` given current headroom.

        ``free_nodes`` is the cluster total minus the sum of resident
        ensembles' minimum footprints — the most a re-partition could
        free without evicting anyone.
        """
        cap = self.grant_cap(request)
        min_nodes = self.min_feasible_nodes(
            request.spec, lo=request.min_nodes, hi=cap
        )
        feasible = self.feasible_count(request)
        if min_nodes is None:
            return AdmissionDecision(
                request=request.name,
                time=now,
                action=AdmissionAction.REJECT,
                reason=(
                    f"infeasible: no placement of {request.spec.name!r} "
                    f"fits on any grant up to {cap} x "
                    f"{self.cores_per_node} cores"
                ),
                min_feasible_nodes=None,
                feasible_placements=feasible,
                predicted_makespan=None,
                free_nodes=free_nodes,
            )
        predicted = None
        if request.deadline is not None:
            predicted = self.predicted_makespan(request)
            if predicted is None or predicted > request.deadline:
                return AdmissionDecision(
                    request=request.name,
                    time=now,
                    action=AdmissionAction.REJECT,
                    reason=(
                        f"deadline unmeetable: best {cap}-node placement "
                        f"needs {predicted!r}s against a "
                        f"{request.deadline!r}s budget"
                    ),
                    min_feasible_nodes=min_nodes,
                    feasible_placements=feasible,
                    predicted_makespan=predicted,
                    free_nodes=free_nodes,
                )
        if min_nodes <= free_nodes:
            return AdmissionDecision(
                request=request.name,
                time=now,
                action=AdmissionAction.ACCEPT,
                reason=(
                    f"admitted: minimum grant {min_nodes} fits the "
                    f"{free_nodes}-node headroom"
                ),
                min_feasible_nodes=min_nodes,
                feasible_placements=feasible,
                predicted_makespan=predicted,
                free_nodes=free_nodes,
            )
        return AdmissionDecision(
            request=request.name,
            time=now,
            action=AdmissionAction.QUEUE,
            reason=(
                f"queued: minimum grant {min_nodes} exceeds the "
                f"{free_nodes}-node headroom"
            ),
            min_feasible_nodes=min_nodes,
            feasible_placements=feasible,
            predicted_makespan=predicted,
            free_nodes=free_nodes,
        )
