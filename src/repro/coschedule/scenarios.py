"""Canonical co-scheduling scenarios and the FIFO-exclusive baseline.

:func:`canonical_mixed_deadline_stream` is the benchmark scenario of
``scripts/bench_coschedule.py`` and the CLI's default: a staggered
stream of small ensembles with mixed deadlines and priorities on one
shared cluster. :func:`fifo_exclusive_schedule` is the strawman a
cluster-level allocator must beat — each ensemble, in arrival order,
takes the *whole* cluster exclusively and runs its single-ensemble
best placement to completion before the next starts (the paper's
one-allocation-per-ensemble operating model applied to a stream).

Both report utilization as used-node-seconds over
``total_nodes * horizon``, so the improvement ratio in
``BENCH_coschedule.json`` compares like with like.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.runtime.spec import EnsembleSpec, default_member
from repro.scheduler.context import PlanningContext
from repro.scheduler.objectives import PlacementScore
from repro.search.engine import find_best_placement

from repro.coschedule.requests import EnsembleRequest

#: Defaults of the canonical mixed-deadline scenario (the bench's
#: floor is measured on exactly these values).
CANONICAL_TOTAL_NODES = 6
CANONICAL_CORES_PER_NODE = 32
CANONICAL_NUM_REQUESTS = 4
CANONICAL_ARRIVAL_SPACING = 30.0


def _small_ensemble(
    name: str, members: int, n_steps: int, natoms: int
) -> EnsembleSpec:
    return EnsembleSpec(
        name,
        tuple(
            default_member(
                f"{name}-m{i + 1}",
                num_analyses=1,
                n_steps=n_steps,
                sim_cores=16,
                ana_cores=8,
                natoms=natoms,
            )
            for i in range(members)
        ),
    )


def canonical_mixed_deadline_stream(
    num_requests: int = CANONICAL_NUM_REQUESTS,
    arrival_spacing: float = CANONICAL_ARRIVAL_SPACING,
) -> Tuple[EnsembleRequest, ...]:
    """The canonical mixed-deadline request stream.

    Ensembles alternate between deadline-bound high-priority requests
    and lax background ones; sizes vary so grants are contested. The
    stream is a pure function of its arguments — the determinism gate
    hashes two runs of it.
    """
    requests: List[EnsembleRequest] = []
    for index in range(num_requests):
        tight = index % 2 == 0
        spec = _small_ensemble(
            f"ens{index + 1}",
            members=2 if index % 3 != 2 else 1,
            n_steps=24 + 4 * index,
            natoms=200_000 + 25_000 * index,
        )
        requests.append(
            EnsembleRequest(
                name=f"ens{index + 1}",
                spec=spec,
                arrival_time=index * arrival_spacing,
                deadline=100_000.0 if tight else None,
                priority=2 if tight else 0,
            )
        )
    return tuple(requests)


@dataclass(frozen=True)
class FifoEntry:
    """One ensemble's exclusive residency in the FIFO baseline."""

    name: str
    arrival_time: float
    started_at: float
    finished_at: float
    deadline_at: Optional[float]
    met_deadline: Optional[bool]
    used_nodes: int
    score: PlacementScore

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "arrival_time": self.arrival_time,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "deadline_at": self.deadline_at,
            "met_deadline": self.met_deadline,
            "used_nodes": self.used_nodes,
            "objective": self.score.objective,
            "makespan": self.score.ensemble_makespan,
        }


@dataclass(frozen=True)
class FifoSchedule:
    """The FIFO-exclusive schedule of one stream."""

    total_nodes: int
    cores_per_node: int
    entries: Tuple[FifoEntry, ...]
    makespan: float
    utilization: float

    def to_dict(self) -> dict:
        return {
            "total_nodes": self.total_nodes,
            "cores_per_node": self.cores_per_node,
            "entries": [e.to_dict() for e in self.entries],
            "makespan": self.makespan,
            "utilization": self.utilization,
        }


def fifo_exclusive_schedule(
    requests: Sequence[EnsembleRequest],
    total_nodes: int,
    cores_per_node: int = 32,
    context: Optional[PlanningContext] = None,
) -> FifoSchedule:
    """Run the stream one-ensemble-at-a-time on the whole cluster.

    Each request, in arrival order, waits for the cluster to go idle,
    then runs its best full-cluster placement (the same
    :func:`~repro.search.engine.find_best_placement` the co-scheduler
    uses) to completion. Elastic membership is ignored — the baseline
    models the paper's static one-ensemble-per-allocation world.
    """
    base = context or PlanningContext()
    clock = 0.0
    busy_node_seconds = 0.0
    entries: List[FifoEntry] = []
    ordered = sorted(
        requests, key=lambda r: (r.arrival_time, r.name)
    )
    for request in ordered:
        best, _ = find_best_placement(
            request.spec,
            total_nodes,
            cores_per_node,
            context=base.evolve(vectorized=True),
        )
        started = max(clock, request.arrival_time)
        finished = started + best.ensemble_makespan
        used = len(
            {
                node
                for mp in best.placement.members
                for node in mp.used_nodes
            }
        )
        busy_node_seconds += used * best.ensemble_makespan
        deadline_at = request.deadline_at
        entries.append(
            FifoEntry(
                name=request.name,
                arrival_time=request.arrival_time,
                started_at=started,
                finished_at=finished,
                deadline_at=deadline_at,
                met_deadline=(
                    None if deadline_at is None else finished <= deadline_at
                ),
                used_nodes=used,
                score=best,
            )
        )
        clock = finished
    horizon = clock
    utilization = (
        busy_node_seconds / (total_nodes * horizon)
        if horizon > 0.0
        else 0.0
    )
    return FifoSchedule(
        total_nodes=total_nodes,
        cores_per_node=cores_per_node,
        entries=tuple(entries),
        makespan=horizon,
        utilization=utilization,
    )
