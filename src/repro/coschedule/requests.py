"""Ensemble requests: the admission-facing unit of the co-scheduler.

A cluster backend does not see one ensemble on one allocation — it
sees a *stream* of :class:`EnsembleRequest` records, each carrying its
own spec, arrival time, completion deadline, and priority (the
follow-up paper's framing; see ``docs/COSCHEDULING.md``). Requests may
also declare *elastic membership*: a sorted tuple of
:class:`MembershipEvent` records describing members that join or leave
after the ensemble starts running, which the co-scheduling loop turns
into mid-run re-partitions with DTL-priced migrations.

Everything here is a frozen value object validated at construction, so
a request stream is immutable input: the same stream always produces
the same admission decisions and the same schedule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.runtime.spec import EnsembleSpec, MemberSpec
from repro.util.errors import ValidationError
from repro.util.validation import require_positive_int

#: Valid membership-event actions.
MEMBERSHIP_ACTIONS: Tuple[str, ...] = ("join", "leave")


def _require_finite(name: str, value: float) -> None:
    if not math.isfinite(value):
        raise ValidationError(f"{name} must be finite, got {value!r}")


@dataclass(frozen=True)
class MembershipEvent:
    """One elastic-membership change, relative to the ensemble's start.

    ``offset`` is in DES seconds after the ensemble begins running (not
    after arrival: a queued ensemble's membership clock starts when it
    is actually placed). A ``"join"`` carries the full
    :class:`~repro.runtime.spec.MemberSpec` to add; a ``"leave"`` names
    the member to drop.
    """

    offset: float
    action: str
    member_name: str
    member: Optional[MemberSpec] = None

    def __post_init__(self) -> None:
        _require_finite("offset", self.offset)
        if self.offset < 0.0:
            raise ValidationError(
                f"membership offset must be >= 0, got {self.offset!r}"
            )
        if self.action not in MEMBERSHIP_ACTIONS:
            raise ValidationError(
                f"unknown membership action {self.action!r}; "
                f"valid: {list(MEMBERSHIP_ACTIONS)}"
            )
        if not self.member_name:
            raise ValidationError("membership event needs a member_name")
        if self.action == "join":
            if self.member is None:
                raise ValidationError(
                    f"join of {self.member_name!r} needs the MemberSpec "
                    f"to add"
                )
            if self.member.name != self.member_name:
                raise ValidationError(
                    f"join member_name {self.member_name!r} does not match "
                    f"the attached spec {self.member.name!r}"
                )
        elif self.member is not None:
            raise ValidationError(
                f"leave of {self.member_name!r} must not attach a "
                f"MemberSpec"
            )


@dataclass(frozen=True)
class EnsembleRequest:
    """One ensemble asking for cluster residency.

    Parameters
    ----------
    name:
        Stream-unique label (job ids, decisions, and completions all
        key on it).
    spec:
        The ensemble to place (its *initial* membership; see
        ``membership``).
    arrival_time:
        DES time the request enters the admission queue.
    deadline:
        Optional completion budget in seconds *from arrival*; the
        admission controller rejects requests whose best full-cluster
        placement cannot meet it, and the cluster objective's
        deadline-miss penalty prices predicted lateness.
    priority:
        Non-negative weight class; ``weight`` (``1 + priority``) scales
        this ensemble's F(P) in the weighted-sum objective, and queued
        requests dequeue highest-priority-first.
    min_nodes / max_nodes:
        Bounds on the node grant the allocator may hand this ensemble.
    membership:
        Elastic-membership events, non-decreasing in ``offset``.
    """

    name: str
    spec: EnsembleSpec
    arrival_time: float = 0.0
    deadline: Optional[float] = None
    priority: int = 0
    min_nodes: int = 1
    max_nodes: Optional[int] = None
    membership: Tuple[MembershipEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("request name must be non-empty")
        _require_finite("arrival_time", self.arrival_time)
        if self.arrival_time < 0.0:
            raise ValidationError(
                f"arrival_time must be >= 0, got {self.arrival_time!r}"
            )
        if self.deadline is not None:
            _require_finite("deadline", self.deadline)
            if self.deadline <= 0.0:
                raise ValidationError(
                    f"deadline must be > 0 seconds, got {self.deadline!r}"
                )
        if self.priority < 0:
            raise ValidationError(
                f"priority must be >= 0, got {self.priority!r}"
            )
        require_positive_int("min_nodes", self.min_nodes)
        if self.max_nodes is not None:
            require_positive_int("max_nodes", self.max_nodes)
            if self.max_nodes < self.min_nodes:
                raise ValidationError(
                    f"max_nodes ({self.max_nodes}) < min_nodes "
                    f"({self.min_nodes})"
                )
        if not isinstance(self.membership, tuple):
            object.__setattr__(self, "membership", tuple(self.membership))
        offsets = [event.offset for event in self.membership]
        if offsets != sorted(offsets):
            raise ValidationError(
                f"membership events of {self.name!r} must be sorted by "
                f"offset, got {offsets}"
            )

    @property
    def weight(self) -> float:
        """This ensemble's weight in the weighted-sum objective."""
        return 1.0 + float(self.priority)

    @property
    def deadline_at(self) -> Optional[float]:
        """Absolute DES time the deadline expires (None when unset)."""
        if self.deadline is None:
            return None
        return self.arrival_time + self.deadline


def validate_stream(
    requests: Tuple[EnsembleRequest, ...]
) -> Tuple[EnsembleRequest, ...]:
    """Check stream-level invariants; return the stream unchanged.

    Names must be unique (decisions and completions key on them); the
    stream itself need not be arrival-sorted — the event loop sorts.
    """
    seen = set()
    for request in requests:
        if request.name in seen:
            raise ValidationError(
                f"duplicate request name {request.name!r} in stream"
            )
        seen.add(request.name)
    return tuple(requests)
