"""Argument-validation helpers used throughout the library.

Each helper raises :class:`repro.util.errors.ValidationError` with a
message naming the offending argument so failures surface close to the
call site instead of deep inside numerical code.
"""

from __future__ import annotations

import math
from typing import Any

from repro.util.errors import ValidationError


def _reject_non_finite(name: str, value: float) -> None:
    if isinstance(value, float) and not math.isfinite(value):
        raise ValidationError(f"{name} must be finite, got {value!r}")


def require_positive(name: str, value: float) -> float:
    """Return ``value`` if it is a finite number strictly greater than 0."""
    _require_number(name, value)
    _reject_non_finite(name, value)
    if value <= 0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")
    return value


def require_non_negative(name: str, value: float) -> float:
    """Return ``value`` if it is a finite number greater than or equal to 0."""
    _require_number(name, value)
    _reject_non_finite(name, value)
    if value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value!r}")
    return value


def require_positive_int(name: str, value: Any) -> int:
    """Return ``value`` if it is an integer strictly greater than 0.

    Booleans are rejected even though they are ``int`` subclasses:
    passing ``True`` as a core count is always a bug.
    """
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValidationError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValidationError(f"{name} must be > 0, got {value}")
    return value


def require_in_range(
    name: str,
    value: float,
    low: float,
    high: float,
    *,
    inclusive_low: bool = True,
    inclusive_high: bool = True,
) -> float:
    """Return ``value`` if it falls within ``[low, high]`` (bounds adjustable)."""
    _require_number(name, value)
    _reject_non_finite(name, value)
    low_ok = value >= low if inclusive_low else value > low
    high_ok = value <= high if inclusive_high else value < high
    if not (low_ok and high_ok):
        lo_b = "[" if inclusive_low else "("
        hi_b = "]" if inclusive_high else ")"
        raise ValidationError(
            f"{name} must be in {lo_b}{low}, {high}{hi_b}, got {value!r}"
        )
    return value


def _require_number(name: str, value: Any) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValidationError(f"{name} must be a number, got {type(value).__name__}")
