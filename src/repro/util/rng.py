"""Deterministic random-number management.

Every stochastic element of the simulator (timing jitter, MD initial
velocities, synthetic counter noise) draws from a
:class:`numpy.random.Generator` owned by a :class:`RandomSource`.
A single integer seed reproduces an entire experiment; independent
subsystems get *independent* child streams via ``spawn`` so adding a
new consumer never perturbs the draws seen by existing ones.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional

import numpy as np

from repro.util.errors import ValidationError


class RandomSource:
    """A named, seedable source of independent random streams.

    Parameters
    ----------
    seed:
        Root seed. ``None`` derives entropy from the OS (irreproducible;
        allowed, but experiments should always pass an explicit seed).
    name:
        Label used in ``repr`` and for deriving child stream names.
    """

    def __init__(self, seed: Optional[int] = None, name: str = "root") -> None:
        if seed is not None and (isinstance(seed, bool) or not isinstance(seed, int)):
            raise ValidationError(f"seed must be an int or None, got {seed!r}")
        if seed is not None and seed < 0:
            raise ValidationError(f"seed must be non-negative, got {seed}")
        self.seed = seed
        self.name = name
        self._seed_seq = np.random.SeedSequence(seed)
        self.generator = np.random.default_rng(self._seed_seq)

    def spawn(self, name: str) -> "RandomSource":
        """Create an independent child source.

        Children are derived from the parent's SeedSequence, so the
        sequence of ``spawn`` calls (not their names) determines the
        streams. Spawn all children up front in a fixed order.
        """
        child = object.__new__(RandomSource)
        child.seed = self.seed
        child.name = f"{self.name}/{name}"
        child._seed_seq = self._seed_seq.spawn(1)[0]
        child.generator = np.random.default_rng(child._seed_seq)
        return child

    def uniform_jitter(self, base: float, relative_width: float) -> float:
        """Draw ``base`` perturbed by +/- ``relative_width`` (relative).

        A ``relative_width`` of 0 returns ``base`` exactly without
        consuming randomness, keeping noise-free runs bit-reproducible
        regardless of stream state.
        """
        if relative_width < 0:
            raise ValidationError(
                f"relative_width must be >= 0, got {relative_width!r}"
            )
        if relative_width == 0:
            return base
        lo = 1.0 - relative_width
        hi = 1.0 + relative_width
        return float(base * self.generator.uniform(lo, hi))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RandomSource(name={self.name!r}, seed={self.seed!r})"


def derive_replica_seed(base_seed: int, replica: int, label: str = "") -> int:
    """The seed of one fault replica, shared by every scoring path.

    Robust scoring draws ``trials`` independent fault schedules per
    candidate; this helper is the single place their seeds come from,
    so the serial, pooled, and batched replication engines derive
    identical per-replica seeds by construction (asserted by the
    batched-vs-serial parity tests).

    With an empty ``label`` (the default) the seed is literally
    ``base_seed + replica`` — the scheme the serial DES path has always
    used, and also the common-random-numbers scheme: every candidate
    ranked under the same ``base_seed`` sees the *same* fault draws at
    replica ``i``, pairing the comparisons. Passing a per-candidate
    ``label`` (e.g. the candidate name) de-pairs them: the label is
    hashed (stable across processes and Python runs, unlike ``hash``)
    into a deterministic offset so each candidate gets an independent
    replica stream.

    Parameters
    ----------
    base_seed:
        Root seed of the trial set (>= 0).
    replica:
        Replica index within the trial set (>= 0).
    label:
        Optional stream label; empty pairs replicas across candidates
        (common random numbers), non-empty decorrelates them.
    """
    for field, value in (("base_seed", base_seed), ("replica", replica)):
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValidationError(f"{field} must be an int, got {value!r}")
        if value < 0:
            raise ValidationError(f"{field} must be >= 0, got {value}")
    if not label:
        return base_seed + replica
    digest = hashlib.blake2b(label.encode("utf-8"), digest_size=8).digest()
    offset = int.from_bytes(digest, "big") % (2**31)
    return base_seed + replica + offset


def spawn_rngs(seed: Optional[int], names: List[str]) -> dict:
    """Spawn one child :class:`RandomSource` per name from a fresh root.

    Convenience for experiment drivers that need a fixed set of
    independent streams::

        rngs = spawn_rngs(42, ["timing", "md", "counters"])
    """
    root = RandomSource(seed)
    return {name: root.spawn(name) for name in names}
