"""Deterministic random-number management.

Every stochastic element of the simulator (timing jitter, MD initial
velocities, synthetic counter noise) draws from a
:class:`numpy.random.Generator` owned by a :class:`RandomSource`.
A single integer seed reproduces an entire experiment; independent
subsystems get *independent* child streams via ``spawn`` so adding a
new consumer never perturbs the draws seen by existing ones.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.util.errors import ValidationError


class RandomSource:
    """A named, seedable source of independent random streams.

    Parameters
    ----------
    seed:
        Root seed. ``None`` derives entropy from the OS (irreproducible;
        allowed, but experiments should always pass an explicit seed).
    name:
        Label used in ``repr`` and for deriving child stream names.
    """

    def __init__(self, seed: Optional[int] = None, name: str = "root") -> None:
        if seed is not None and (isinstance(seed, bool) or not isinstance(seed, int)):
            raise ValidationError(f"seed must be an int or None, got {seed!r}")
        if seed is not None and seed < 0:
            raise ValidationError(f"seed must be non-negative, got {seed}")
        self.seed = seed
        self.name = name
        self._seed_seq = np.random.SeedSequence(seed)
        self.generator = np.random.default_rng(self._seed_seq)

    def spawn(self, name: str) -> "RandomSource":
        """Create an independent child source.

        Children are derived from the parent's SeedSequence, so the
        sequence of ``spawn`` calls (not their names) determines the
        streams. Spawn all children up front in a fixed order.
        """
        child = object.__new__(RandomSource)
        child.seed = self.seed
        child.name = f"{self.name}/{name}"
        child._seed_seq = self._seed_seq.spawn(1)[0]
        child.generator = np.random.default_rng(child._seed_seq)
        return child

    def uniform_jitter(self, base: float, relative_width: float) -> float:
        """Draw ``base`` perturbed by +/- ``relative_width`` (relative).

        A ``relative_width`` of 0 returns ``base`` exactly without
        consuming randomness, keeping noise-free runs bit-reproducible
        regardless of stream state.
        """
        if relative_width < 0:
            raise ValidationError(
                f"relative_width must be >= 0, got {relative_width!r}"
            )
        if relative_width == 0:
            return base
        lo = 1.0 - relative_width
        hi = 1.0 + relative_width
        return float(base * self.generator.uniform(lo, hi))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RandomSource(name={self.name!r}, seed={self.seed!r})"


def spawn_rngs(seed: Optional[int], names: List[str]) -> dict:
    """Spawn one child :class:`RandomSource` per name from a fresh root.

    Convenience for experiment drivers that need a fixed set of
    independent streams::

        rngs = spawn_rngs(42, ["timing", "md", "counters"])
    """
    root = RandomSource(seed)
    return {name: root.spawn(name) for name in names}
