"""Unit constants and human-readable formatting.

The simulator's canonical units are **seconds** for time and **bytes**
for data sizes. The constants below convert *to* the canonical unit:
``5 * MILLISECONDS`` is five milliseconds expressed in seconds, and
``2 * MIB`` is two mebibytes expressed in bytes.
"""

from __future__ import annotations

# --- time (canonical unit: seconds) ---------------------------------------
SECONDS: float = 1.0
MILLISECONDS: float = 1e-3
MICROSECONDS: float = 1e-6
NANOSECONDS: float = 1e-9
MINUTES: float = 60.0
HOURS: float = 3600.0

# --- data sizes (canonical unit: bytes) ------------------------------------
KIB: int = 1024
MIB: int = 1024**2
GIB: int = 1024**3
TIB: int = 1024**4

_BYTE_STEPS = (
    (TIB, "TiB"),
    (GIB, "GiB"),
    (MIB, "MiB"),
    (KIB, "KiB"),
)

_TIME_STEPS = (
    (HOURS, "h"),
    (MINUTES, "min"),
    (SECONDS, "s"),
    (MILLISECONDS, "ms"),
    (MICROSECONDS, "us"),
    (NANOSECONDS, "ns"),
)


def format_bytes(n: float) -> str:
    """Render a byte count with a binary-prefix unit.

    >>> format_bytes(3 * MIB)
    '3.00 MiB'
    >>> format_bytes(512)
    '512 B'
    """
    if n < 0:
        return "-" + format_bytes(-n)
    for step, suffix in _BYTE_STEPS:
        if n >= step:
            return f"{n / step:.2f} {suffix}"
    return f"{n:.0f} B"


def format_time(t: float) -> str:
    """Render a duration in seconds with an adaptive unit.

    >>> format_time(0.0035)
    '3.50 ms'
    >>> format_time(0)
    '0 s'
    """
    if t == 0:
        return "0 s"
    if t < 0:
        return "-" + format_time(-t)
    for step, suffix in _TIME_STEPS:
        if t >= step:
            return f"{t / step:.2f} {suffix}"
    return f"{t:.3g} s"
