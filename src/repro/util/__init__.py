"""Shared utilities: errors, units, statistics, and RNG management.

These helpers are deliberately dependency-light; every other subpackage
of :mod:`repro` may import from here, but :mod:`repro.util` imports only
from the standard library and numpy.
"""

from repro.util.errors import (
    ConfigurationError,
    DTLError,
    PlacementError,
    ProtocolError,
    ReproError,
    SimulationError,
    ValidationError,
)
from repro.util.rng import RandomSource, spawn_rngs
from repro.util.stats import (
    RunningStats,
    population_std,
    summarize,
    trimmed_mean,
)
from repro.util.units import (
    GIB,
    KIB,
    MIB,
    MICROSECONDS,
    MILLISECONDS,
    SECONDS,
    format_bytes,
    format_time,
)
from repro.util.validation import (
    require_in_range,
    require_non_negative,
    require_positive,
    require_positive_int,
)

__all__ = [
    "ConfigurationError",
    "DTLError",
    "GIB",
    "KIB",
    "MIB",
    "MICROSECONDS",
    "MILLISECONDS",
    "PlacementError",
    "ProtocolError",
    "RandomSource",
    "ReproError",
    "RunningStats",
    "SECONDS",
    "SimulationError",
    "ValidationError",
    "format_bytes",
    "format_time",
    "population_std",
    "require_in_range",
    "require_non_negative",
    "require_positive",
    "require_positive_int",
    "spawn_rngs",
    "summarize",
    "trimmed_mean",
]
