"""Small statistics helpers.

The paper's ensemble-level objective (Eq. 9) uses the *population*
standard deviation (divide by N, not N-1); :func:`population_std`
implements exactly that so :mod:`repro.core.objective` matches the
formula. Steady-state stage-time estimation uses :func:`trimmed_mean`
to be robust to warm-up and stragglers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.util.errors import ValidationError


def population_std(values: Sequence[float]) -> float:
    """Population standard deviation: sqrt(mean((x - mean)^2)).

    >>> population_std([2.0, 2.0])
    0.0
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValidationError("population_std requires at least one value")
    return float(np.sqrt(np.mean((arr - arr.mean()) ** 2)))


def trimmed_mean(values: Sequence[float], trim_fraction: float = 0.1) -> float:
    """Mean after symmetrically discarding a fraction of extreme values.

    ``trim_fraction`` is the fraction removed from *each* tail, so 0.1
    keeps the central 80%. With fewer than three values no trimming is
    applied (there is nothing meaningful to discard).
    """
    if not 0 <= trim_fraction < 0.5:
        raise ValidationError(
            f"trim_fraction must be in [0, 0.5), got {trim_fraction!r}"
        )
    arr = np.sort(np.asarray(list(values), dtype=float))
    if arr.size == 0:
        raise ValidationError("trimmed_mean requires at least one value")
    if arr.size < 3 or trim_fraction == 0:
        return float(arr.mean())
    k = int(math.floor(arr.size * trim_fraction))
    if 2 * k >= arr.size:
        k = (arr.size - 1) // 2
    return float(arr[k : arr.size - k].mean())


@dataclass
class RunningStats:
    """Welford online mean/variance accumulator.

    Numerically stable single-pass statistics; used by monitors that
    observe one stage duration at a time during a simulation run.
    """

    count: int = 0
    _mean: float = 0.0
    _m2: float = 0.0
    _min: float = field(default=math.inf)
    _max: float = field(default=-math.inf)

    def add(self, x: float) -> None:
        """Fold one observation into the accumulator."""
        self.count += 1
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)
        self._min = min(self._min, x)
        self._max = max(self._max, x)

    def extend(self, xs: Iterable[float]) -> None:
        """Fold many observations into the accumulator."""
        for x in xs:
            self.add(x)

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValidationError("no observations recorded")
        return self._mean

    @property
    def variance(self) -> float:
        """Population variance of the observations seen so far."""
        if self.count == 0:
            raise ValidationError("no observations recorded")
        return self._m2 / self.count

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def min(self) -> float:
        if self.count == 0:
            raise ValidationError("no observations recorded")
        return self._min

    @property
    def max(self) -> float:
        if self.count == 0:
            raise ValidationError("no observations recorded")
        return self._max


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    std: float
    min: float
    max: float
    median: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.count} mean={self.mean:.6g} std={self.std:.6g} "
            f"min={self.min:.6g} median={self.median:.6g} max={self.max:.6g}"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Build a :class:`Summary` (population std) for a non-empty sample."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValidationError("summarize requires at least one value")
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(np.sqrt(np.mean((arr - arr.mean()) ** 2))),
        min=float(arr.min()),
        max=float(arr.max()),
        median=float(np.median(arr)),
    )
