"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError` so that callers can catch library failures without
accidentally swallowing programming errors (``TypeError`` etc.).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong range, wrong shape, ...)."""


class ConfigurationError(ReproError):
    """An ensemble / experiment configuration is internally inconsistent."""


class PlacementError(ConfigurationError):
    """A component-to-node placement is invalid for the target cluster.

    Examples: a node index outside the allocation, or a node whose core
    demand exceeds its capacity when over-subscription is disallowed.
    """


class SimulationError(ReproError):
    """The discrete-event simulation reached an invalid internal state."""


class ProtocolError(SimulationError):
    """The synchronous in situ coupling protocol was violated.

    Raised, for example, when a producer attempts to overwrite a staged
    chunk that has not yet been read by every coupled consumer (the
    paper assumes no buffering of simulation output).
    """


class DTLError(ReproError):
    """A data-transport-layer operation failed (missing chunk, capacity...)."""
