"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run <config>``
    Execute one paper configuration (Cf, Cc, C1.1-C1.5, C2.1-C2.8) and
    print the full summary report plus an ASCII Gantt chart.
``figures [--fast]``
    Regenerate every figure/table of the paper and print the data.
``sweep``
    Run the §3.4 analysis-core sweep and print the heuristic's choice.
``plan --members N --analyses K --nodes M [--robust-rate R] [--json]``
    Run the resource-constrained planner and print the resulting plan;
    with ``--robust-rate`` the plan is scored with the analytic
    robustness surrogate (node-level crash domains, weight
    ``--robust-weight``). ``--json`` emits the plan in the service
    wire format (:mod:`repro.service.schemas`) instead of text, so
    one-shot planning and the placement service share one format.
``serve [--port P --workers W --cache-entries E --job-timeout T]``
    Run the placement service: an HTTP/JSON API (``POST /jobs``,
    ``GET /jobs[/<id>]``, ``DELETE /jobs/<id>``, ``GET /health``,
    ``GET /stats``) over a priority job queue, a worker pool draining
    it through the fast search engine, and a digest-keyed result
    cache. See ``docs/SERVICE.md``.
``faults <config> [--rate R --policy P --kinds K --model M]``
    Execute one configuration under fault injection and print the fault
    log, the resilience metrics, and the ideal-vs-robust objective.
    ``--model`` picks the failure process (``random``, ``markov``,
    ``weibull``, ``node``); ``--surrogate`` additionally prints the
    closed-form surrogate prediction next to the measured metrics.
``faults --experiment``
    Run the full resilience sweep (rates x recovery policies) instead.
``faults --validate``
    Run the surrogate-vs-DES validation table instead.
``reschedule <config> [--drift-node N --drift-magnitude M ...]``
    Execute one configuration twice under a node-attributed drift
    scenario — once statically, once with the online rescheduling
    controller attached — and print both makespans, the improvement,
    and the migration log. ``--verify`` audits the rescheduled run
    with the invariant checker (migration-aware); ``--json`` emits
    the comparison as JSON.
``verify [configs...] [--faults] [--service] [--json]``
    Run the differential oracle harness over the canonical Table 2
    scenarios (analytic vs cached search vs surrogate vs DES) and
    print each scenario's divergence report; exits non-zero on any
    divergence. With ``--faults`` the fault surrogate is additionally
    compared against injected DES trials; with ``--service`` each
    scenario is also scored through the HTTP placement service and
    must agree exactly (tier 0) with the direct scorer.
``run --verify`` / ``faults --verify``
    Execute with the runtime invariant checker hooked into the DES
    stage choke point; violations abort the run and the audit summary
    is printed.
``list``
    List the available configurations with their placements.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.configs.base import build_spec
from repro.configs.table2 import TABLE2_CONFIGS
from repro.configs.table4 import TABLE4_CONFIGS
from repro.faults.recovery import POLICY_NAMES
from repro.monitoring.report import gantt, summary_report
from repro.runtime.runner import run_ensemble
from repro.util.errors import ReproError

ALL_CONFIGS = {**TABLE2_CONFIGS, **TABLE4_CONFIGS}


def _cmd_list(_args: argparse.Namespace) -> int:
    print("available configurations (paper Tables 2 and 4):")
    for name, config in ALL_CONFIGS.items():
        members = ", ".join(
            f"(sim@n{m.simulation_node}, ana@{list(m.analysis_nodes)})"
            for m in config.members
        )
        print(f"  {name:5s} nodes={config.num_nodes}  {members}")
        print(f"        {config.description}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    config = ALL_CONFIGS.get(args.config)
    if config is None:
        print(
            f"unknown configuration {args.config!r}; "
            f"valid: {sorted(ALL_CONFIGS)}",
            file=sys.stderr,
        )
        return 2
    from repro.runtime.executor import EnsembleExecutor

    spec = build_spec(config, n_steps=args.steps)
    executor = EnsembleExecutor(
        spec,
        config.placement(),
        seed=args.seed,
        timing_noise=args.noise,
        verify=args.verify,
    )
    result = executor.run()
    print(summary_report(result))
    print()
    print(gantt(result.tracer, width=args.width))
    if executor.invariant_report is not None:
        print()
        print(executor.invariant_report.to_text())
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.configs.base import build_spec
    from repro.runtime.compare import compare_placements, render_comparison

    names = args.configs or ["C1.1", "C1.2", "C1.3", "C1.4", "C1.5"]
    unknown = [n for n in names if n not in ALL_CONFIGS]
    if unknown:
        print(f"unknown configurations: {unknown}", file=sys.stderr)
        return 2
    configs = [ALL_CONFIGS[n] for n in names]
    k = {c.num_analyses_per_member for c in configs}
    n = {c.num_members for c in configs}
    if len(k) != 1 or len(n) != 1:
        print(
            "compared configurations must share member/analysis counts",
            file=sys.stderr,
        )
        return 2
    spec = build_spec(configs[0], n_steps=args.steps)
    candidates = {c.name: c.placement() for c in configs}
    results = compare_placements(spec, candidates)
    print(render_comparison(results))
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.experiments import (
        run_contention_ablation,
        run_fig3,
        run_fig4,
        run_fig5,
        run_fig7,
        run_fig8,
        run_fig9,
        run_headline,
        run_locality_ablation,
        run_tax_ablation,
    )
    from repro.experiments.headline import run_headline_extended

    kwargs = dict(trials=2, n_steps=6) if args.fast else {}
    artifacts = [
        run_fig3(**kwargs),
        run_fig4(**kwargs),
        run_fig5(**kwargs),
        run_fig7(),
        run_fig8(**kwargs),
        run_fig9(**kwargs),
        run_headline(**kwargs),
        run_headline_extended(),
        run_contention_ablation(**kwargs),
        run_locality_ablation(**kwargs),
        run_tax_ablation(**kwargs),
    ]
    for artifact in artifacts:
        print(artifact.to_text())
        print()
    if args.output:
        import pathlib

        outdir = pathlib.Path(args.output)
        outdir.mkdir(parents=True, exist_ok=True)
        for artifact in artifacts:
            artifact.save(outdir / f"{artifact.experiment_id}.json")
        print(f"saved {len(artifacts)} JSON artifacts to {outdir}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.fig7 import run_fig7

    result = run_fig7(
        sim_cores=args.sim_cores, stride=args.stride, natoms=args.natoms
    )
    print(result.to_text())
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.runtime.spec import EnsembleSpec, default_member
    from repro.scheduler.planner import ResourceConstrainedPlanner

    spec = EnsembleSpec(
        "cli-plan",
        tuple(
            default_member(
                f"em{i + 1}", num_analyses=args.analyses, n_steps=args.steps
            )
            for i in range(args.members)
        ),
    )
    robustness = None
    if args.robust_rate > 0:
        from repro.faults.analytic import RobustnessTerm, node_crash_builder
        from repro.faults.recovery import make_policy

        robustness = RobustnessTerm(
            policy=make_policy(args.policy),
            model_builder=node_crash_builder(args.robust_rate),
            weight=args.robust_weight,
        )
    planner = ResourceConstrainedPlanner(robustness=robustness)
    plan = planner.plan(spec, num_nodes=args.nodes)
    if args.json:
        import json

        from repro.service.schemas import (
            SCHEMA_VERSION,
            placement_to_dict,
            score_to_dict,
            spec_to_dict,
        )

        print(
            json.dumps(
                {
                    "schema_version": SCHEMA_VERSION,
                    "node_budget": args.nodes,
                    "analysis_cores": plan.analysis_cores,
                    "policy": plan.policy_name,
                    "spec": spec_to_dict(plan.spec),
                    "placement": placement_to_dict(plan.placement),
                    "score": score_to_dict(plan.score),
                },
                indent=2,
            )
        )
        return 0
    print(
        f"plan: {args.members} members x (16-core sim + "
        f"{args.analyses} x {plan.analysis_cores}-core analyses) on "
        f"{plan.placement.num_nodes} nodes (budget {args.nodes})"
    )
    for member, mp in zip(plan.spec.members, plan.placement.members):
        print(
            f"  {member.name}: sim@n{mp.simulation_node}, "
            f"analyses@{list(mp.analysis_nodes)}"
        )
    print(
        f"predicted F(P^{{U,A,P}}) = {plan.score.objective:.6f}, "
        f"ensemble makespan = {plan.score.ensemble_makespan:.1f} s"
    )
    if robustness is not None:
        print(
            f"robustness: node-crash rate {args.robust_rate} x weight "
            f"{args.robust_weight} -> penalty "
            f"{plan.score.robust_penalty:.6f}, utility "
            f"{plan.score.utility:.6f}"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.api import make_server

    server = make_server(
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache_entries=args.cache_entries,
        job_timeout=args.job_timeout,
    )
    print(
        f"placement service listening on {server.url} "
        f"({args.workers} workers, cache {args.cache_entries} entries)"
    )
    print("routes: POST /jobs  GET /jobs[/<id>]  DELETE /jobs/<id>")
    print("        GET /health  GET /stats")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down (draining workers)...")
        server.stop()
    return 0


def _build_failure_model(args: argparse.Namespace, kinds, placement):
    """Construct the failure model selected by ``--model``."""
    from repro.faults import (
        CorrelatedFailureModel,
        MarkovModulatedArrivals,
        NodeFailureModel,
        RandomFailureModel,
        WeibullBurstArrivals,
    )

    if args.model == "markov":
        # bursty variant centred near --rate: quiet/burst regimes with
        # a ~1:5 occupancy split
        process = MarkovModulatedArrivals(
            quiet_rate=args.rate * 0.2,
            burst_rate=min(args.rate * 4.0, 1.0),
            p_enter=0.1,
            p_exit=0.5,
        )
        return CorrelatedFailureModel(process, kinds=kinds, seed=args.seed)
    if args.model == "weibull":
        process = WeibullBurstArrivals(
            mean_gap=max(2.0, 1.0 / max(args.rate, 1e-6)),
            burst_rate=0.8,
        )
        return CorrelatedFailureModel(process, kinds=kinds, seed=args.seed)
    if args.model == "node":
        return NodeFailureModel(placement, rate=args.rate, seed=args.seed)
    return RandomFailureModel(rate=args.rate, kinds=kinds, seed=args.seed)


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.faults import FaultKind, make_policy
    from repro.monitoring.resilience import compute_resilience
    from repro.scheduler.objectives import FINAL_STAGE_ORDER

    if args.experiment:
        from repro.experiments.resilience import run_resilience

        result = run_resilience(
            trials=args.trials,
            n_steps=args.steps,
            base_seed=args.seed,
            timing_noise=args.noise,
        )
        print(result.to_text())
        return 0

    if args.validate:
        from repro.experiments.resilience import run_surrogate_validation

        result = run_surrogate_validation(
            policy=args.policy,
            trials=args.trials,
            n_steps=args.steps,
            base_seed=args.seed,
        )
        print(result.to_text())
        return 0

    if args.config is None:
        print(
            "a configuration name is required unless --experiment or "
            "--validate is given",
            file=sys.stderr,
        )
        return 2
    config = ALL_CONFIGS.get(args.config)
    if config is None:
        print(
            f"unknown configuration {args.config!r}; "
            f"valid: {sorted(ALL_CONFIGS)}",
            file=sys.stderr,
        )
        return 2
    try:
        kinds = tuple(FaultKind(k) for k in args.kinds.split(","))
    except ValueError:
        print(
            f"unknown fault kind in {args.kinds!r}; "
            f"valid: {[k.value for k in FaultKind]}",
            file=sys.stderr,
        )
        return 2

    from repro.runtime.executor import EnsembleExecutor

    spec = build_spec(config, n_steps=args.steps)
    placement = config.placement()
    model = _build_failure_model(args, kinds, placement)
    baseline = run_ensemble(
        spec, placement, seed=args.seed, timing_noise=args.noise
    )
    executor = EnsembleExecutor(
        spec,
        placement,
        seed=args.seed,
        timing_noise=args.noise,
        failure_model=model,
        recovery=make_policy(args.policy),
        verify=args.verify,
    )
    result = executor.run()
    print(
        f"{args.config} under injection: model={args.model}, "
        f"rate={args.rate}, policy={args.policy}, kinds={args.kinds}"
    )
    print()
    print(result.fault_log.summary())
    print()
    metrics = compute_resilience(result, baseline.ensemble_makespan)
    print(metrics.to_text())
    if args.surrogate:
        from repro.faults.analytic import surrogate_resilience

        report = surrogate_resilience(
            spec, placement, model, make_policy(args.policy)
        )
        print()
        print("analytic surrogate prediction:")
        print(report.to_text())
    ideal = baseline.objective(FINAL_STAGE_ORDER)
    robust = result.objective(FINAL_STAGE_ORDER)
    retained = robust / ideal if ideal > 0 else 1.0
    print(
        f"F(P^{{U,A,P}})       ideal {ideal:.6f} -> "
        f"under failures {robust:.6f} ({retained:.1%} retained)"
    )
    if executor.invariant_report is not None:
        print()
        print(executor.invariant_report.to_text())
    return 0


def _cmd_reschedule(args: argparse.Namespace) -> int:
    config = ALL_CONFIGS.get(args.config)
    if config is None:
        print(
            f"unknown configuration {args.config!r}; "
            f"valid: {sorted(ALL_CONFIGS)}",
            file=sys.stderr,
        )
        return 2
    from repro.reschedule import (
        DriftEvent,
        DriftKind,
        RescheduleController,
        StaticDriftModel,
    )
    from repro.runtime.executor import EnsembleExecutor

    spec = build_spec(config, n_steps=args.steps)
    placement = config.placement()
    drift = StaticDriftModel(
        (
            DriftEvent(
                node=args.drift_node,
                kind=DriftKind(args.drift_kind),
                start_step=args.drift_start,
                magnitude=args.drift_magnitude,
            ),
        )
    )
    static = run_ensemble(
        spec, placement, seed=args.seed, timing_noise=args.noise,
        drift=drift,
    )
    controller = RescheduleController(
        window=args.window,
        threshold=args.threshold,
        min_dwell=args.min_dwell,
        max_migrations=args.max_migrations,
    )
    executor = EnsembleExecutor(
        spec,
        placement,
        seed=args.seed,
        timing_noise=args.noise,
        drift=drift,
        rescheduler=controller,
        verify=args.verify,
    )
    rescheduled = executor.run()
    improvement = 1.0 - (
        rescheduled.ensemble_makespan / static.ensemble_makespan
    )
    summary = controller.summary()
    if args.json:
        import json

        print(
            json.dumps(
                {
                    "config": args.config,
                    "drift": {
                        "node": args.drift_node,
                        "kind": args.drift_kind,
                        "magnitude": args.drift_magnitude,
                        "start_step": args.drift_start,
                    },
                    "static_makespan": static.ensemble_makespan,
                    "rescheduled_makespan": rescheduled.ensemble_makespan,
                    "improvement": improvement,
                    "controller": summary,
                },
                indent=2,
            )
        )
        return 0
    print(
        f"{args.config} under {args.drift_kind} drift on node "
        f"{args.drift_node} (x{args.drift_magnitude:g} from step "
        f"{args.drift_start}):"
    )
    print(f"  static makespan      {static.ensemble_makespan:10.2f} s")
    print(
        f"  rescheduled makespan {rescheduled.ensemble_makespan:10.2f} s "
        f"({improvement:+.1%})"
    )
    print(
        f"  replans: {summary['replans_triggered']} triggered, "
        f"{summary['replans_accepted']} accepted; "
        f"{summary['migrations']} migrations moved "
        f"{summary['components_moved']} components"
    )
    for record in summary["migration_records"]:
        moves = ", ".join(
            f"{m['component']} n{m['from_node']}->n{m['to_node']}"
            for m in record["moves"]
        )
        print(
            f"    step {record['step']:3d} {record['member']}: "
            f"{moves or 'rebind only'} "
            f"(delay {record['delay']:.4f} s)"
        )
    if executor.invariant_report is not None:
        print()
        print(executor.invariant_report.to_text())
    return 0


def _cmd_coschedule(args: argparse.Namespace) -> int:
    from repro.coschedule import (
        ClusterObjective,
        CoScheduler,
        canonical_mixed_deadline_stream,
        fifo_exclusive_schedule,
    )

    stream = canonical_mixed_deadline_stream(
        num_requests=args.requests,
        arrival_spacing=args.spacing,
    )
    scheduler = CoScheduler(
        total_nodes=args.nodes,
        cores_per_node=args.cores,
        objective=ClusterObjective(
            utility_weight=args.utility_weight,
            fairness_weight=args.fairness_weight,
            deadline_weight=args.deadline_weight,
        ),
        robust_rate=args.robust_rate,
        policy=args.policy,
    )
    result = scheduler.run(stream)
    fifo = fifo_exclusive_schedule(stream, args.nodes, args.cores)
    ratio = (
        result.utilization / fifo.utilization
        if fifo.utilization > 0
        else float("inf")
    )
    if args.json:
        import json

        print(
            json.dumps(
                {
                    "coschedule": result.to_dict(),
                    "fifo": fifo.to_dict(),
                    "utilization_ratio": ratio,
                },
                indent=2,
            )
        )
        return 0
    print(
        f"co-scheduled {args.requests} ensembles on {args.nodes} x "
        f"{args.cores} cores:"
    )
    for decision in result.decisions:
        print(
            f"  [{decision.time:9.2f}s] {decision.request:<8} "
            f"{decision.action.value:<7} {decision.reason}"
        )
    print()
    for completion in result.completions:
        met = (
            "-"
            if completion.met_deadline is None
            else ("yes" if completion.met_deadline else "NO")
        )
        print(
            f"  {completion.name:<8} finished {completion.finished_at:10.2f}s "
            f"on {completion.nodes_granted} nodes "
            f"(deadline met: {met}, migrations: {completion.migrations})"
        )
    print()
    print(
        f"  makespan     co {result.makespan:10.2f}s   "
        f"fifo {fifo.makespan:10.2f}s"
    )
    print(
        f"  utilization  co {result.utilization:10.1%}   "
        f"fifo {fifo.utilization:10.1%}   (x{ratio:.2f})"
    )
    print(f"  schedule digest {result.digest()[:16]}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    import json

    from repro.verify.oracles import verify_scenarios

    reports = verify_scenarios(
        names=args.configs or None,
        n_steps=args.steps,
        include_faults=args.faults,
        include_service=args.service,
    )
    if args.json:
        print(
            json.dumps([r.to_dict() for r in reports], indent=2)
        )
    else:
        for report in reports:
            print(report.to_text(verbose=args.verbose))
    failed = [r.scenario for r in reports if not r.passed]
    if failed:
        print(
            f"divergence detected in: {', '.join(failed)}",
            file=sys.stderr,
        )
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Workflow-ensemble performance indicators "
        "(ICPP Workshops '21 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list available configurations")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="execute one configuration")
    p_run.add_argument("config", help="configuration name (e.g. C1.5)")
    p_run.add_argument("--steps", type=int, default=12)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--noise", type=float, default=0.02)
    p_run.add_argument("--width", type=int, default=80)
    p_run.add_argument(
        "--verify",
        action="store_true",
        help="audit the run with the DES invariant checker",
    )
    p_run.set_defaults(func=_cmd_run)

    p_figs = sub.add_parser("figures", help="regenerate all paper artifacts")
    p_figs.add_argument("--fast", action="store_true")
    p_figs.add_argument(
        "--output", help="directory to also save JSON artifacts into"
    )
    p_figs.set_defaults(func=_cmd_figures)

    p_cmp = sub.add_parser(
        "compare", help="rank configurations with the indicator"
    )
    p_cmp.add_argument(
        "configs",
        nargs="*",
        help="configuration names (default: C1.1-C1.5)",
    )
    p_cmp.add_argument("--steps", type=int, default=37)
    p_cmp.set_defaults(func=_cmd_compare)

    p_sweep = sub.add_parser("sweep", help="run the §3.4 core sweep")
    p_sweep.add_argument("--sim-cores", type=int, default=16)
    p_sweep.add_argument("--stride", type=int, default=800)
    p_sweep.add_argument("--natoms", type=int, default=250_000)
    p_sweep.set_defaults(func=_cmd_sweep)

    p_plan = sub.add_parser("plan", help="resource-constrained planning")
    p_plan.add_argument("--members", type=int, default=2)
    p_plan.add_argument("--analyses", type=int, default=1)
    p_plan.add_argument("--nodes", type=int, default=2)
    p_plan.add_argument("--steps", type=int, default=37)
    p_plan.add_argument(
        "--robust-rate",
        type=float,
        default=0.0,
        help="node-crash rate for the robustness surrogate "
        "(0 disables the robustness term)",
    )
    p_plan.add_argument(
        "--robust-weight",
        type=float,
        default=1.0,
        help="weight on the expected-inflation penalty",
    )
    p_plan.add_argument(
        "--policy",
        choices=list(POLICY_NAMES),
        default="retry",
        help="recovery policy priced by the robustness term",
    )
    p_plan.add_argument(
        "--json",
        action="store_true",
        help="emit the plan in the service wire format "
        "(repro.service.schemas) instead of text",
    )
    p_plan.set_defaults(func=_cmd_plan)

    p_serve = sub.add_parser(
        "serve", help="run the placement service (HTTP/JSON API)"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8765)
    p_serve.add_argument(
        "--workers", type=int, default=2, help="worker pool size"
    )
    p_serve.add_argument(
        "--cache-entries",
        type=int,
        default=1024,
        help="result-cache capacity (LRU)",
    )
    p_serve.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        help="per-job execution deadline in seconds (default: none)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_faults = sub.add_parser(
        "faults", help="execute under fault injection"
    )
    p_faults.add_argument(
        "config",
        nargs="?",
        help="configuration name (e.g. C1.5); omit with --experiment",
    )
    p_faults.add_argument(
        "--experiment",
        action="store_true",
        help="run the resilience sweep (rates x recovery policies)",
    )
    p_faults.add_argument(
        "--validate",
        action="store_true",
        help="run the surrogate-vs-DES validation table",
    )
    p_faults.add_argument("--rate", type=float, default=0.05)
    p_faults.add_argument(
        "--policy", choices=list(POLICY_NAMES), default="retry"
    )
    p_faults.add_argument(
        "--model",
        choices=("random", "markov", "weibull", "node"),
        default="random",
        help="failure process: independent (random), bursty "
        "(markov/weibull), or node-level crash domains (node)",
    )
    p_faults.add_argument(
        "--surrogate",
        action="store_true",
        help="also print the closed-form surrogate prediction",
    )
    p_faults.add_argument(
        "--kinds",
        default="crash,straggler",
        help="comma-separated fault kinds to inject",
    )
    p_faults.add_argument("--steps", type=int, default=12)
    p_faults.add_argument("--trials", type=int, default=2)
    p_faults.add_argument("--seed", type=int, default=0)
    p_faults.add_argument("--noise", type=float, default=0.0)
    p_faults.add_argument(
        "--verify",
        action="store_true",
        help="audit the injected run with the DES invariant checker",
    )
    p_faults.set_defaults(func=_cmd_faults)

    p_resched = sub.add_parser(
        "reschedule",
        help="static vs online-rescheduled execution under drift",
    )
    p_resched.add_argument("config", help="configuration name (e.g. C1.5)")
    p_resched.add_argument("--steps", type=int, default=24)
    p_resched.add_argument("--seed", type=int, default=0)
    p_resched.add_argument("--noise", type=float, default=0.02)
    p_resched.add_argument(
        "--drift-node", type=int, default=0,
        help="node the drift event slows down",
    )
    p_resched.add_argument(
        "--drift-kind", choices=("step", "ramp"), default="step"
    )
    p_resched.add_argument(
        "--drift-magnitude", type=float, default=2.5,
        help="inflation factor (step) or per-step increment (ramp)",
    )
    p_resched.add_argument("--drift-start", type=int, default=4)
    p_resched.add_argument(
        "--window", type=int, default=4,
        help="telemetry/detector window (stage observations per node)",
    )
    p_resched.add_argument(
        "--threshold", type=float, default=1.25,
        help="observed/modeled ratio that trips the detector",
    )
    p_resched.add_argument("--min-dwell", type=int, default=4)
    p_resched.add_argument("--max-migrations", type=int, default=4)
    p_resched.add_argument(
        "--verify",
        action="store_true",
        help="audit the rescheduled run with the invariant checker",
    )
    p_resched.add_argument(
        "--json",
        action="store_true",
        help="emit the comparison as JSON",
    )
    p_resched.set_defaults(func=_cmd_reschedule)

    p_cosched = sub.add_parser(
        "coschedule",
        help="co-schedule a stream of ensembles on one shared cluster",
    )
    p_cosched.add_argument(
        "--requests", type=int, default=4,
        help="number of ensembles in the canonical mixed-deadline stream",
    )
    p_cosched.add_argument(
        "--spacing", type=float, default=30.0,
        help="arrival spacing in seconds",
    )
    p_cosched.add_argument(
        "--nodes", type=int, default=6, help="cluster size in nodes"
    )
    p_cosched.add_argument("--cores", type=int, default=32)
    p_cosched.add_argument(
        "--utility-weight", type=float, default=1.0,
        help="weight on the priority-weighted sum of per-ensemble F(P)",
    )
    p_cosched.add_argument(
        "--fairness-weight", type=float, default=0.0,
        help="weight on the max-min (worst per-ensemble utility) term",
    )
    p_cosched.add_argument(
        "--deadline-weight", type=float, default=0.0,
        help="penalty weight per second of predicted deadline overrun",
    )
    p_cosched.add_argument(
        "--robust-rate", type=float, default=0.0,
        help="node-crash rate for the admission deadline probe",
    )
    p_cosched.add_argument(
        "--policy", choices=list(POLICY_NAMES), default="retry"
    )
    p_cosched.add_argument(
        "--json",
        action="store_true",
        help="emit the full schedule and FIFO baseline as JSON",
    )
    p_cosched.set_defaults(func=_cmd_coschedule)

    p_verify = sub.add_parser(
        "verify",
        help="run the differential oracle harness over Table 2 scenarios",
    )
    p_verify.add_argument(
        "configs",
        nargs="*",
        help="Table 2 configuration names (default: all)",
    )
    p_verify.add_argument("--steps", type=int, default=6)
    p_verify.add_argument(
        "--faults",
        action="store_true",
        help="also compare the fault surrogate against DES trials",
    )
    p_verify.add_argument(
        "--service",
        action="store_true",
        help="also score each scenario through the HTTP placement "
        "service and require exact (tier-0) agreement",
    )
    p_verify.add_argument(
        "--json",
        action="store_true",
        help="emit the divergence reports as JSON",
    )
    p_verify.add_argument(
        "--verbose",
        action="store_true",
        help="print every check, not only failures",
    )
    p_verify.set_defaults(func=_cmd_verify)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
