"""The paper's Table 2: seven configurations, one analysis per member.

==============  =====  =======  ==============================
configuration   nodes  members  node indexes (sim, ana) x member
==============  =====  =======  ==============================
Cf              2      1        (n0, n1)
Cc              1      1        (n0, n0)
C1.1            3      2        (n0, n2), (n1, n2)
C1.2            3      2        (n0, n1), (n0, n2)
C1.3            3      2        (n0, n0), (n1, n2)
C1.4            2      2        (n0, n1), (n0, n1)
C1.5            2      2        (n0, n0), (n1, n1)
==============  =====  =======  ==============================
"""

from __future__ import annotations

from typing import Dict, List

from repro.configs.base import Configuration
from repro.runtime.placement import MemberPlacement
from repro.util.errors import ConfigurationError


def table2() -> List[Configuration]:
    """The seven Table 2 configurations, in the paper's order."""
    return [
        Configuration(
            name="Cf",
            description="co-location-free: simulation and analysis on "
            "separate nodes",
            num_nodes=2,
            members=(MemberPlacement(0, (1,)),),
        ),
        Configuration(
            name="Cc",
            description="co-located: simulation and analysis share one node",
            num_nodes=1,
            members=(MemberPlacement(0, (0,)),),
        ),
        Configuration(
            name="C1.1",
            description="analyses share a node; each simulation dedicated",
            num_nodes=3,
            members=(MemberPlacement(0, (2,)), MemberPlacement(1, (2,))),
        ),
        Configuration(
            name="C1.2",
            description="simulations share a node; each analysis dedicated",
            num_nodes=3,
            members=(MemberPlacement(0, (1,)), MemberPlacement(0, (2,))),
        ),
        Configuration(
            name="C1.3",
            description="member 1 co-located; member 2 split across two nodes",
            num_nodes=3,
            members=(MemberPlacement(0, (0,)), MemberPlacement(1, (2,))),
        ),
        Configuration(
            name="C1.4",
            description="simulations share one node, analyses share another",
            num_nodes=2,
            members=(MemberPlacement(0, (1,)), MemberPlacement(0, (1,))),
        ),
        Configuration(
            name="C1.5",
            description="each simulation co-located with its own analysis",
            num_nodes=2,
            members=(MemberPlacement(0, (0,)), MemberPlacement(1, (1,))),
        ),
    ]


TABLE2_CONFIGS: Dict[str, Configuration] = {c.name: c for c in table2()}

#: the two-member subset evaluated in Figure 8.
TABLE2_TWO_MEMBER = ("C1.1", "C1.2", "C1.3", "C1.4", "C1.5")


def get_config(name: str) -> Configuration:
    """Look up a Table 2 configuration by name."""
    try:
        return TABLE2_CONFIGS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown Table 2 configuration {name!r}; "
            f"valid: {sorted(TABLE2_CONFIGS)}"
        ) from None
