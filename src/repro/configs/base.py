"""Configuration: a named ensemble shape plus its placement."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.runtime.placement import EnsemblePlacement, MemberPlacement
from repro.runtime.spec import EnsembleSpec, default_member
from repro.util.errors import ConfigurationError, ValidationError
from repro.util.validation import require_positive_int


@dataclass(frozen=True)
class Configuration:
    """One row of the paper's Table 2 or Table 4.

    Attributes
    ----------
    name:
        Configuration label (e.g. ``"C1.5"``).
    description:
        Human-readable summary of the co-location pattern.
    num_nodes:
        Allocation size (the table's "Number of nodes", = M).
    members:
        Per-member node assignments.
    """

    name: str
    description: str
    num_nodes: int
    members: Tuple[MemberPlacement, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("configuration name must be non-empty")
        require_positive_int("num_nodes", self.num_nodes)
        if not isinstance(self.members, tuple):
            object.__setattr__(self, "members", tuple(self.members))
        if not self.members:
            raise ConfigurationError("a configuration needs at least one member")
        k = self.members[0].num_couplings
        for mp in self.members:
            if mp.num_couplings != k:
                raise ConfigurationError(
                    f"{self.name}: members disagree on analyses per member"
                )

    @property
    def num_members(self) -> int:
        return len(self.members)

    @property
    def num_analyses_per_member(self) -> int:
        return self.members[0].num_couplings

    def placement(self) -> EnsemblePlacement:
        """The configuration's :class:`EnsemblePlacement`."""
        return EnsemblePlacement(num_nodes=self.num_nodes, members=self.members)


def build_spec(
    config: Configuration,
    n_steps: int = 37,
    sim_cores: int = 16,
    ana_cores: int = 8,
    natoms: int = 250_000,
    stride: int = 800,
) -> EnsembleSpec:
    """Build the matching ensemble spec (paper defaults).

    Every member is one MD simulation (16 cores, stride 800) coupled
    with the configuration's number of identical 8-core analyses.
    """
    members = tuple(
        default_member(
            f"em{i + 1}",
            num_analyses=config.num_analyses_per_member,
            n_steps=n_steps,
            sim_cores=sim_cores,
            ana_cores=ana_cores,
            natoms=natoms,
            stride=stride,
        )
        for i in range(config.num_members)
    )
    return EnsembleSpec(name=config.name, members=members)
