"""Experiment configurations: the paper's Tables 2 and 4.

:mod:`repro.configs.table2` defines the seven single-analysis
configurations (Cf, Cc, C1.1-C1.5); :mod:`repro.configs.table4` the
eight two-analysis configurations (C2.1-C2.8);
:mod:`repro.configs.generator` enumerates arbitrary placements for
search-style studies beyond the paper's fixed sets.
"""

from repro.configs.base import Configuration, build_spec
from repro.configs.table2 import TABLE2_CONFIGS, table2
from repro.configs.table4 import TABLE4_CONFIGS, table4
from repro.configs.generator import enumerate_placements

__all__ = [
    "Configuration",
    "TABLE2_CONFIGS",
    "TABLE4_CONFIGS",
    "build_spec",
    "enumerate_placements",
    "table2",
    "table4",
]
