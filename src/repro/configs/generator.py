"""Placement enumeration beyond the paper's fixed tables.

:func:`enumerate_placements` yields every feasible assignment of an
ensemble's components to an allocation of ``num_nodes`` nodes,
optionally deduplicating placements equivalent under node relabeling.
The paper notes the space is intractable in general (§3.4) — the
deduplicated stream is produced by the canonical restricted-growth-
string generator in :mod:`repro.search.canonical`, which emits exactly
one representative per relabeling class without ever walking the raw
``nodes^components`` space; :func:`count_feasible_placements` counts
in closed form over capacity multisets without materializing
placements at all. Both are asserted element-for-element identical to
the original product-then-dedup enumerator (preserved in
:mod:`repro.search.reference`).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.runtime.placement import EnsemblePlacement
from repro.runtime.spec import EnsembleSpec
from repro.search.canonical import (
    component_core_demands,
    count_canonical_assignments,
    count_raw_assignments,
    enumerate_canonical_placements,
    iter_assignment_chunks,
)
from repro.search.reference import enumerate_placements_reference
from repro.util.validation import require_positive_int


def enumerate_placements(
    spec: EnsembleSpec,
    num_nodes: int,
    cores_per_node: int,
    dedup_symmetric: bool = True,
) -> Iterator[EnsemblePlacement]:
    """Yield all feasible placements of ``spec`` over ``num_nodes`` nodes.

    Feasible means every node's total core demand fits in
    ``cores_per_node``. With ``dedup_symmetric`` (default) only one
    representative per node-relabeling equivalence class is yielded —
    nodes are interchangeable in a homogeneous allocation, so e.g.
    ``sim@n0, ana@n1`` and ``sim@n1, ana@n0`` are the same scenario.

    The iteration order is deterministic (lexicographic in component
    order), so downstream searches are reproducible — and unchanged
    from the original enumerator: the restricted-growth-string stream
    is exactly the sequence of first-occurrence representatives the
    product-then-dedup implementation kept.
    """
    if dedup_symmetric:
        return enumerate_canonical_placements(
            spec, num_nodes, cores_per_node
        )
    # the labeled (non-deduplicated) space really is nodes^components;
    # the reference product walk is the natural enumeration for it
    return enumerate_placements_reference(
        spec, num_nodes, cores_per_node, dedup_symmetric=False
    )


def enumerate_placement_arrays(
    spec: EnsembleSpec,
    num_nodes: int,
    cores_per_node: int,
    chunk_size: int = 8192,
) -> Iterator[np.ndarray]:
    """Array mode of :func:`enumerate_placements` (dedup always on).

    Yields ``(B, C)`` int arrays of flat component-to-node assignments
    (member-major, simulation first, as
    :func:`~repro.search.canonical.component_core_demands` orders
    components). Concatenating the chunks row by row reproduces the
    canonical placement stream exactly — row ``r`` materializes to the
    ``r``-th placement of ``enumerate_placements(...)`` via
    :func:`~repro.search.canonical.assignment_to_placement` — but the
    rows feed :class:`~repro.search.vectorized.VectorizedScorer`
    directly, without ever building placement objects.
    """
    return iter_assignment_chunks(
        component_core_demands(spec),
        num_nodes,
        cores_per_node,
        chunk_size=chunk_size,
    )


def count_feasible_placements(
    spec: EnsembleSpec,
    num_nodes: int,
    cores_per_node: int,
    dedup_symmetric: bool = True,
) -> int:
    """Size of the feasible placement space (for reporting).

    Counted directly by the memoized capacity-multiset recursion in
    :mod:`repro.search.canonical` — no placement objects are built, so
    spaces far beyond enumeration reach can still be sized exactly.
    """
    require_positive_int("num_nodes", num_nodes)
    require_positive_int("cores_per_node", cores_per_node)
    cores = component_core_demands(spec)
    if dedup_symmetric:
        return count_canonical_assignments(cores, num_nodes, cores_per_node)
    return count_raw_assignments(cores, num_nodes, cores_per_node)
