"""Placement enumeration beyond the paper's fixed tables.

:func:`enumerate_placements` yields every feasible assignment of an
ensemble's components to an allocation of ``num_nodes`` nodes,
optionally deduplicating placements equivalent under node relabeling.
The paper notes the space is intractable in general (§3.4) — this
enumerator is for the small N/K/M regimes of the evaluation, where
exhaustive search both validates the heuristic and powers the
placement-search example.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.runtime.placement import EnsemblePlacement, MemberPlacement
from repro.runtime.spec import EnsembleSpec
from repro.util.validation import require_positive_int


def _canonical_signature(
    flat_assignment: Sequence[int],
) -> Tuple[int, ...]:
    """Relabel nodes by first appearance so isomorphic placements match."""
    mapping: Dict[int, int] = {}
    out: List[int] = []
    for node in flat_assignment:
        if node not in mapping:
            mapping[node] = len(mapping)
        out.append(mapping[node])
    return tuple(out)


def enumerate_placements(
    spec: EnsembleSpec,
    num_nodes: int,
    cores_per_node: int,
    dedup_symmetric: bool = True,
) -> Iterator[EnsemblePlacement]:
    """Yield all feasible placements of ``spec`` over ``num_nodes`` nodes.

    Feasible means every node's total core demand fits in
    ``cores_per_node``. With ``dedup_symmetric`` (default) only one
    representative per node-relabeling equivalence class is yielded —
    nodes are interchangeable in a homogeneous allocation, so e.g.
    ``sim@n0, ana@n1`` and ``sim@n1, ana@n0`` are the same scenario.

    The iteration order is deterministic (lexicographic in component
    order), so downstream searches are reproducible.
    """
    require_positive_int("num_nodes", num_nodes)
    require_positive_int("cores_per_node", cores_per_node)

    component_cores: List[int] = []
    member_shapes: List[int] = []  # number of components per member
    for member in spec.members:
        member_shapes.append(1 + member.num_couplings)
        component_cores.append(member.simulation.cores)
        component_cores.extend(a.cores for a in member.analyses)

    total_components = len(component_cores)
    seen: set = set()

    for assignment in itertools.product(range(num_nodes), repeat=total_components):
        demand: Dict[int, int] = {}
        feasible = True
        for node, cores in zip(assignment, component_cores):
            demand[node] = demand.get(node, 0) + cores
            if demand[node] > cores_per_node:
                feasible = False
                break
        if not feasible:
            continue
        if dedup_symmetric:
            sig = _canonical_signature(assignment)
            if sig in seen:
                continue
            seen.add(sig)

        members: List[MemberPlacement] = []
        cursor = 0
        for shape in member_shapes:
            chunk = assignment[cursor : cursor + shape]
            cursor += shape
            members.append(
                MemberPlacement(
                    simulation_node=chunk[0], analysis_nodes=tuple(chunk[1:])
                )
            )
        yield EnsemblePlacement(num_nodes=num_nodes, members=tuple(members))


def count_feasible_placements(
    spec: EnsembleSpec,
    num_nodes: int,
    cores_per_node: int,
    dedup_symmetric: bool = True,
) -> int:
    """Size of the feasible placement space (for reporting)."""
    return sum(
        1
        for _ in enumerate_placements(
            spec, num_nodes, cores_per_node, dedup_symmetric
        )
    )
