"""The paper's Table 4: eight configurations, two analyses per member.

Node indexes per member are (simulation, analysis 1, analysis 2):

=====  =====  =========================  =========================
name   nodes  member 1                   member 2
=====  =====  =========================  =========================
C2.1   3      (n0, n2, n2)               (n1, n2, n2)
C2.2   3      (n0, n1, n1)               (n0, n2, n2)
C2.3   3      (n0, n1, n2)               (n0, n1, n2)
C2.4   3      (n0, n0, n2)               (n1, n1, n2)
C2.5   3      (n0, n1, n2)               (n1, n0, n2)
C2.6   2      (n0, n1, n1)               (n0, n1, n1)
C2.7   2      (n0, n0, n1)               (n1, n0, n1)
C2.8   2      (n0, n0, n0)               (n1, n1, n1)
=====  =====  =========================  =========================
"""

from __future__ import annotations

from typing import Dict, List

from repro.configs.base import Configuration
from repro.runtime.placement import MemberPlacement
from repro.util.errors import ConfigurationError


def table4() -> List[Configuration]:
    """The eight Table 4 configurations, in the paper's order."""
    rows = [
        ("C2.1", 3, (0, 2, 2), (1, 2, 2), "all analyses share n2"),
        ("C2.2", 3, (0, 1, 1), (0, 2, 2), "sims share n0; each member's "
         "analyses share a dedicated node"),
        ("C2.3", 3, (0, 1, 2), (0, 1, 2), "sims share n0; analyses paired "
         "across members on n1 and n2"),
        ("C2.4", 3, (0, 0, 2), (1, 1, 2), "one analysis co-located per "
         "member; second analyses share n2"),
        ("C2.5", 3, (0, 1, 2), (1, 0, 2), "first analyses cross-located on "
         "the other member's sim node"),
        ("C2.6", 2, (0, 1, 1), (0, 1, 1), "sims share n0; all four analyses "
         "share n1"),
        ("C2.7", 2, (0, 0, 1), (1, 0, 1), "analyses split across both nodes"),
        ("C2.8", 2, (0, 0, 0), (1, 1, 1), "each member fully co-located on "
         "its own node"),
    ]
    configs: List[Configuration] = []
    for name, nodes, m1, m2, desc in rows:
        configs.append(
            Configuration(
                name=name,
                description=desc,
                num_nodes=nodes,
                members=(
                    MemberPlacement(m1[0], (m1[1], m1[2])),
                    MemberPlacement(m2[0], (m2[1], m2[2])),
                ),
            )
        )
    return configs


TABLE4_CONFIGS: Dict[str, Configuration] = {c.name: c for c in table4()}


def get_config(name: str) -> Configuration:
    """Look up a Table 4 configuration by name."""
    try:
        return TABLE4_CONFIGS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown Table 4 configuration {name!r}; "
            f"valid: {sorted(TABLE4_CONFIGS)}"
        ) from None
