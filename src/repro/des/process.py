"""Generator-backed simulation processes.

A process is a Python generator that yields :class:`~repro.des.events.Event`
objects. When a yielded event triggers, the engine resumes the
generator with the event's value (or throws the event's exception).
A :class:`Process` is itself an event that triggers when the generator
returns, so processes can wait on each other by yielding them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.des.events import Event, Interrupt
from repro.util.errors import SimulationError, ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.des.engine import Environment


class Process(Event):
    """A running simulation process (and the event of its completion)."""

    def __init__(self, env: "Environment", generator: Generator) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise ValidationError(
                f"process requires a generator, got {type(generator).__name__}"
            )
        super().__init__(env)
        self._generator = generator
        self._waiting_on: Event | None = None
        # Bootstrap: resume once at the current instant.
        bootstrap = Event(env)
        bootstrap.callbacks.append(self._resume)  # type: ignore[union-attr]
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    @property
    def name(self) -> str:
        """The underlying generator's name (best-effort)."""
        return getattr(
            self._generator, "__name__", type(self._generator).__name__
        )

    def __repr__(self) -> str:
        if not self.is_alive:
            return f"<Process {self.name} {self._state_name()}>"
        waiting = ""
        if self._waiting_on is not None:
            waiting = f" waiting_on={type(self._waiting_on).__name__}"
        return f"<Process {self.name} alive at t={self.env.now:g}{waiting}>"

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        The interrupted process stops waiting on its current event and
        must handle (or propagate) the exception.
        """
        if not self.is_alive:
            raise SimulationError("cannot interrupt a finished process")
        if self.env.active_process is self:
            raise SimulationError("a process cannot interrupt itself")
        target = self._waiting_on
        if target is not None and not target.processed:
            # Detach so the original event no longer resumes us.
            assert target.callbacks is not None
            try:
                target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
        self._waiting_on = None
        kicker = Event(self.env)
        kicker.callbacks.append(  # type: ignore[union-attr]
            lambda _ev: self._throw(Interrupt(cause))
        )
        kicker.succeed()

    # -- engine plumbing -----------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        env = self.env
        prev, env._active_process = env.active_process, self
        try:
            if event._exception is not None:
                target = self._generator.throw(event._exception)
            else:
                target = self._generator.send(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        finally:
            env._active_process = prev
        self._wait_on(target)

    def _throw(self, exc: BaseException) -> None:
        env = self.env
        prev, env._active_process = env.active_process, self
        try:
            target = self._generator.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as err:
            self.fail(err)
            return
        finally:
            env._active_process = prev
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if not isinstance(target, Event):
            self.fail(
                SimulationError(
                    f"process yielded a non-event: {target!r} "
                    "(yield Timeout/Event/Process instances)"
                )
            )
            return
        if target.env is not self.env:
            self.fail(SimulationError("yielded event belongs to another Environment"))
            return
        self._waiting_on = target
        if target.processed:
            # Already done: resume at the current instant via a kicker event.
            kicker = Event(self.env)
            kicker._value = target._value
            kicker._exception = target._exception
            kicker.callbacks.append(self._resume)  # type: ignore[union-attr]
            kicker._triggered = True
            self.env.schedule(kicker)
        else:
            assert target.callbacks is not None
            target.callbacks.append(self._resume)
