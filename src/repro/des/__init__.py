"""A from-scratch discrete-event simulation (DES) engine.

This subpackage provides the execution substrate for the workflow
ensemble runtime (:mod:`repro.runtime`). It follows the classic
process-interaction style (as popularized by SimPy):

- an :class:`~repro.des.engine.Environment` owns virtual time and a
  priority event queue;
- *processes* are Python generators that ``yield`` events and are
  resumed when those events trigger;
- shared state is mediated by :class:`~repro.des.resources.Resource`
  (counted capacity) and :class:`~repro.des.store.Store` (object
  queues);
- :class:`~repro.des.monitor.TimeSeriesMonitor` records observations
  against virtual time.

The engine is deterministic: simultaneous events are ordered by
(time, priority, insertion id), so repeated runs of the same program
produce identical traces.
"""

from repro.des.engine import Environment
from repro.des.events import (
    AllOf,
    AnyOf,
    Event,
    EventPriority,
    Interrupt,
    Timeout,
)
from repro.des.process import Process
from repro.des.resources import Preempted, Request, Resource
from repro.des.store import FilterStore, Store
from repro.des.monitor import TimeSeriesMonitor

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "EventPriority",
    "FilterStore",
    "Interrupt",
    "Preempted",
    "Process",
    "Request",
    "Resource",
    "Store",
    "TimeSeriesMonitor",
    "Timeout",
]
