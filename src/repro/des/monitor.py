"""Time-series monitoring of simulation quantities.

:class:`TimeSeriesMonitor` records ``(time, value)`` observations and
offers the time-weighted aggregations (mean utilization, integrals)
needed by the monitoring layer and by tests that assert on resource
occupancy over a run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from repro.util.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.des.engine import Environment


class TimeSeriesMonitor:
    """Step-function recorder keyed on virtual time.

    Observations are interpreted as a right-continuous step function:
    the value recorded at time ``t`` holds until the next observation.
    """

    def __init__(self, env: "Environment", name: str = "") -> None:
        self.env = env
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []

    def record(self, value: float) -> None:
        """Record ``value`` at the current virtual time.

        Re-recording at the same instant overwrites the prior value —
        only the final state of an instant is observable.
        """
        now = self.env.now
        if self._times and now < self._times[-1]:  # pragma: no cover - defensive
            raise ValidationError("observations must be recorded in time order")
        if self._times and now == self._times[-1]:
            self._values[-1] = value
            return
        self._times.append(now)
        self._values.append(value)

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> np.ndarray:
        return np.asarray(self._times, dtype=float)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._values, dtype=float)

    def last(self) -> Optional[Tuple[float, float]]:
        """Most recent observation, or ``None`` if empty."""
        if not self._times:
            return None
        return self._times[-1], self._values[-1]

    def integral(self, until: Optional[float] = None) -> float:
        """Integrate the step function from the first observation to ``until``.

        ``until`` defaults to the current virtual time. Useful for
        core-seconds / byte-seconds style accounting.
        """
        if not self._times:
            return 0.0
        end = self.env.now if until is None else until
        if end < self._times[0]:
            raise ValidationError("integration horizon precedes first observation")
        total = 0.0
        for i, start in enumerate(self._times):
            stop = self._times[i + 1] if i + 1 < len(self._times) else end
            stop = min(stop, end)
            if stop <= start:
                continue
            total += self._values[i] * (stop - start)
        return total

    def time_weighted_mean(self, until: Optional[float] = None) -> float:
        """Time-weighted average value over the observed window."""
        if not self._times:
            raise ValidationError("no observations recorded")
        end = self.env.now if until is None else until
        span = end - self._times[0]
        if span <= 0:
            return self._values[0]
        return self.integral(until=end) / span
