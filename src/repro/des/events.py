"""Event primitives for the discrete-event engine.

An :class:`Event` moves through three states:

``pending`` -> ``triggered`` (a value or an exception has been set and
the event is scheduled) -> ``processed`` (its callbacks have run).

Events are single-shot: triggering a triggered event raises
:class:`~repro.util.errors.SimulationError`.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

from repro.util.errors import SimulationError, ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.des.engine import Environment


class EventPriority(enum.IntEnum):
    """Tie-break ordering for events scheduled at the same instant.

    Lower values run first. ``URGENT`` is used internally for resource
    bookkeeping so releases are visible before same-instant acquires.
    """

    URGENT = 0
    NORMAL = 1
    LOW = 2


class Event:
    """A one-shot occurrence in virtual time.

    Callbacks receive the event itself; processes register themselves
    as callbacks when they yield an event.
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._triggered = False

    # -- state queries ------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once a value/exception has been assigned."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run (the callback list is retired)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event triggered successfully (no exception)."""
        if not self._triggered:
            raise SimulationError("event has not been triggered yet")
        return self._exception is None

    @property
    def value(self) -> Any:
        """The event's value (raises the failure exception if it failed)."""
        if not self._triggered:
            raise SimulationError("event has not been triggered yet")
        if self._exception is not None:
            raise self._exception
        return self._value

    # -- state transitions --------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._value = value
        self._triggered = True
        self.env.schedule(self, delay=0.0, priority=EventPriority.NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters will see ``exception``."""
        if not isinstance(exception, BaseException):
            raise ValidationError(f"fail() needs an exception, got {exception!r}")
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._exception = exception
        self._triggered = True
        self.env.schedule(self, delay=0.0, priority=EventPriority.NORMAL)
        return self

    # -- engine hook ---------------------------------------------------------
    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        assert callbacks is not None
        for callback in callbacks:
            callback(self)

    def _state_name(self) -> str:
        if self.processed:
            return "processed"
        if self._triggered:
            return "triggered"
        return "pending"

    def __repr__(self) -> str:
        detail = ""
        if self._triggered:
            if self._exception is not None:
                detail = f" exception={type(self._exception).__name__}"
            elif self._value is not None:
                value = repr(self._value)
                if len(value) > 40:
                    value = value[:37] + "..."
                detail = f" value={value}"
        return f"<{type(self).__name__} {self._state_name()}{detail}>"


class Timeout(Event):
    """An event that triggers after a fixed virtual-time delay."""

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValidationError(f"timeout delay must be >= 0, got {delay!r}")
        super().__init__(env)
        self.delay = delay
        self.due = env.now + delay
        self._value = value
        self._triggered = True  # scheduled immediately at construction
        env.schedule(self, delay=delay, priority=EventPriority.NORMAL)

    def __repr__(self) -> str:
        return (
            f"<Timeout delay={self.delay:g} due=t{self.due:g} "
            f"priority={EventPriority.NORMAL.name} {self._state_name()}>"
        )


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class _Condition(Event):
    """Shared machinery for :class:`AllOf` / :class:`AnyOf`."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events: List[Event] = list(events)
        for ev in self.events:
            if ev.env is not env:
                raise ValidationError("all events must share one Environment")
        self._remaining = len(self.events)
        if self._remaining == 0:
            self.succeed(self._collect())
            return
        for ev in self.events:
            if ev.processed:
                self._check(ev)
            else:
                assert ev.callbacks is not None
                ev.callbacks.append(self._check)

    def _collect(self) -> dict:
        return {
            i: ev._value
            for i, ev in enumerate(self.events)
            if ev.triggered and ev._exception is None
        }

    def _check(self, event: Event) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when *all* constituent events have triggered.

    Fails fast if any constituent fails.
    """

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Triggers when *any* constituent event triggers (or any fails)."""

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        self.succeed(self._collect())
