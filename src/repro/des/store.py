"""Object stores: producer/consumer queues for the DES engine.

:class:`Store` is an unbounded-or-bounded FIFO of arbitrary Python
objects. :class:`FilterStore` lets consumers wait for an item matching
a predicate — the DTL staging area uses this to let an analysis block
until *its* chunk for step ``i`` arrives.
"""

from __future__ import annotations

import math
from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Deque, List, Optional

from repro.des.events import Event
from repro.util.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.des.engine import Environment


class StorePut(Event):
    """Pending insertion of ``item`` into a store."""

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item


class StoreGet(Event):
    """Pending retrieval from a store."""

    def __init__(self, store: "Store") -> None:
        super().__init__(store.env)


class FilterStoreGet(StoreGet):
    """Pending retrieval of the first item matching ``predicate``."""

    def __init__(self, store: "Store", predicate: Callable[[Any], bool]) -> None:
        super().__init__(store)
        self.predicate = predicate


class Store:
    """FIFO store of Python objects with optional capacity."""

    def __init__(
        self,
        env: "Environment",
        capacity: float = math.inf,
        name: str = "",
    ) -> None:
        if capacity != math.inf:
            if isinstance(capacity, bool) or int(capacity) != capacity or capacity <= 0:
                raise ValidationError(
                    f"capacity must be a positive int or inf: {capacity!r}"
                )
        self.env = env
        self.capacity = capacity
        self.name = name
        self.items: Deque[Any] = deque()
        self._put_waiters: Deque[StorePut] = deque()
        self._get_waiters: List[StoreGet] = []

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Insert ``item``; the returned event triggers when it is stored."""
        ev = StorePut(self, item)
        self._put_waiters.append(ev)
        self._dispatch()
        return ev

    def get(self) -> StoreGet:
        """Retrieve the oldest item; yield the returned event to wait."""
        ev = StoreGet(self)
        self._get_waiters.append(ev)
        self._dispatch()
        return ev

    # -- matching logic -----------------------------------------------------
    def _admit_puts(self) -> bool:
        moved = False
        while self._put_waiters and len(self.items) < self.capacity:
            put = self._put_waiters.popleft()
            self.items.append(put.item)
            put.succeed(put.item)
            moved = True
        return moved

    def _serve_gets(self) -> bool:
        served = False
        remaining: List[StoreGet] = []
        for get in self._get_waiters:
            item = self._select(get)
            if item is not _NO_MATCH:
                get.succeed(item)
                served = True
            else:
                remaining.append(get)
        self._get_waiters = remaining
        return served

    def _select(self, get: StoreGet) -> Any:
        if isinstance(get, FilterStoreGet):
            for i, item in enumerate(self.items):
                if get.predicate(item):
                    del self.items[i]
                    return item
            return _NO_MATCH
        if self.items:
            return self.items.popleft()
        return _NO_MATCH

    def _dispatch(self) -> None:
        # Alternate until a fixed point: serving a get may free capacity
        # for a queued put, which may in turn satisfy another get.
        progressing = True
        while progressing:
            progressing = self._admit_puts()
            progressing = self._serve_gets() or progressing


class FilterStore(Store):
    """A store whose consumers may wait on a predicate."""

    def get(self, predicate: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        """Retrieve the first item matching ``predicate`` (FIFO if None)."""
        if predicate is None:
            return super().get()
        ev = FilterStoreGet(self, predicate)
        self._get_waiters.append(ev)
        self._dispatch()
        return ev


_NO_MATCH = object()
