"""The discrete-event simulation environment (clock + event queue).

:class:`Environment` owns virtual time. Events are scheduled into a
binary heap keyed on ``(time, priority, sequence)``; the sequence
number makes scheduling stable, so two runs of the same simulation
program produce byte-identical traces.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, Iterable, List, Optional, Tuple

from repro.des.events import AllOf, AnyOf, Event, EventPriority, Timeout
from repro.des.process import Process
from repro.util.errors import SimulationError, ValidationError


class EmptySchedule(SimulationError):
    """The event queue ran dry before the ``until`` horizon was reached."""


class Environment:
    """A single-threaded discrete-event simulation environment.

    Parameters
    ----------
    initial_time:
        Virtual time at which the clock starts (default 0.0).
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        if initial_time < 0:
            raise ValidationError(f"initial_time must be >= 0, got {initial_time!r}")
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._next_id = 0
        self._active_process: Optional[Process] = None
        self._processes: List[Process] = []

    # -- clock ----------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event factories --------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event bound to this environment."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a process from a generator of events."""
        proc = Process(self, generator)
        self._processes.append(proc)
        return proc

    def _stalled_processes(self, limit: int = 8) -> str:
        """Describe still-alive processes for EmptySchedule diagnostics."""
        alive = [p for p in self._processes if p.is_alive]
        if not alive:
            return "no processes are still alive"
        shown = ", ".join(repr(p) for p in alive[:limit])
        extra = f" (+{len(alive) - limit} more)" if len(alive) > limit else ""
        return f"{len(alive)} processes still alive: {shown}{extra}"

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers when every event in ``events`` has."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers when at least one event in ``events`` has."""
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------------
    def schedule(
        self,
        event: Event,
        delay: float = 0.0,
        priority: EventPriority = EventPriority.NORMAL,
    ) -> None:
        """Insert ``event`` into the queue ``delay`` seconds from now."""
        if delay < 0:
            raise ValidationError(f"schedule delay must be >= 0, got {delay!r}")
        heapq.heappush(
            self._queue, (self._now + delay, int(priority), self._next_id, event)
        )
        self._next_id += 1

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    def step(self) -> None:
        """Process exactly one event, advancing the clock to it."""
        if not self._queue:
            raise EmptySchedule(
                f"no events scheduled at t={self._now:g}; "
                f"{self._stalled_processes()}"
            )
        when, _prio, _eid, event = heapq.heappop(self._queue)
        if when < self._now:  # pragma: no cover - defensive
            raise SimulationError("event scheduled in the past")
        self._now = when
        event._run_callbacks()

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        - ``None``: run until the event queue is exhausted;
        - a number: run until virtual time reaches it (clock is set to
          ``until`` even if the queue empties earlier);
        - an :class:`Event`: run until that event is *processed* and
          return its value (raising if the event failed). If the queue
          empties first, :class:`EmptySchedule` is raised — the event
          can never trigger.
        """
        if until is None:
            while self._queue:
                self.step()
            return None

        if isinstance(until, Event):
            sentinel = until
            finished = {"done": False}

            def _mark(_event: Event) -> None:
                finished["done"] = True

            if sentinel.processed:
                return sentinel.value
            assert sentinel.callbacks is not None
            sentinel.callbacks.append(_mark)
            while not finished["done"]:
                if not self._queue:
                    raise EmptySchedule(
                        "event queue exhausted at "
                        f"t={self._now:g} before the 'until' event "
                        f"({sentinel!r}) triggered; "
                        f"{self._stalled_processes()}"
                    )
                self.step()
            return sentinel.value

        horizon = float(until)
        if horizon < self._now:
            raise ValidationError(
                f"cannot run until {horizon} (clock already at {self._now})"
            )
        while self._queue and self._queue[0][0] <= horizon:
            self.step()
        self._now = horizon
        return None
