"""Counted-capacity resources with FIFO queuing.

:class:`Resource` models a pool of interchangeable units (e.g. CPU
cores of a node). Processes ``yield resource.request(n)`` to acquire
``n`` units and call ``resource.release(request)`` (or use the request
as a context manager) to return them. Grants are strictly FIFO: a
large request at the head of the queue blocks later, smaller ones —
matching how a batch scheduler backfills *not* being modeled here
keeps member placement effects easy to reason about.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque

from repro.des.events import Event
from repro.util.errors import SimulationError, ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.des.engine import Environment


class Preempted(Exception):
    """Raised in a waiter whose pending request was cancelled."""


class Request(Event):
    """A pending or granted claim on ``amount`` units of a resource."""

    def __init__(self, resource: "Resource", amount: int) -> None:
        if isinstance(amount, bool) or not isinstance(amount, int) or amount <= 0:
            raise ValidationError(f"request amount must be a positive int: {amount!r}")
        if amount > resource.capacity:
            raise ValidationError(
                f"request for {amount} exceeds capacity {resource.capacity}"
            )
        super().__init__(resource.env)
        self.resource = resource
        self.amount = amount
        self.granted = False

    def cancel(self) -> None:
        """Withdraw a request that has not been granted yet."""
        if self.granted:
            raise SimulationError("cannot cancel a granted request; release instead")
        if self.triggered:
            return
        self.resource._withdraw(self)
        self.fail(Preempted())

    # -- context manager: `with (yield res.request(n)):` ----------------------
    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *_exc) -> None:
        if self.granted:
            self.resource.release(self)


class Resource:
    """A pool of ``capacity`` interchangeable units."""

    def __init__(self, env: "Environment", capacity: int, name: str = "") -> None:
        if isinstance(capacity, bool) or not isinstance(capacity, int) or capacity <= 0:
            raise ValidationError(f"capacity must be a positive int: {capacity!r}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Request] = deque()

    @property
    def in_use(self) -> int:
        """Units currently granted."""
        return self._in_use

    @property
    def available(self) -> int:
        """Units currently free."""
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting to be granted."""
        return len(self._waiters)

    def request(self, amount: int = 1) -> Request:
        """Create a request for ``amount`` units; yield it to wait."""
        req = Request(self, amount)
        self._waiters.append(req)
        self._grant_waiters()
        return req

    def release(self, request: Request) -> None:
        """Return the units held by a granted request."""
        if not request.granted:
            raise SimulationError("release() on a request that was never granted")
        if request.resource is not self:
            raise SimulationError("request belongs to a different resource")
        request.granted = False
        self._in_use -= request.amount
        if self._in_use < 0:  # pragma: no cover - defensive
            raise SimulationError(f"resource {self.name!r} over-released")
        self._grant_waiters()

    # -- internals --------------------------------------------------------------
    def _withdraw(self, request: Request) -> None:
        try:
            self._waiters.remove(request)
        except ValueError:  # pragma: no cover - defensive
            pass
        self._grant_waiters()

    def _grant_waiters(self) -> None:
        while self._waiters:
            head = self._waiters[0]
            if head.amount > self.capacity - self._in_use:
                break  # strict FIFO: head blocks everything behind it
            self._waiters.popleft()
            self._in_use += head.amount
            head.granted = True
            head.succeed(head)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Resource(name={self.name!r}, capacity={self.capacity}, "
            f"in_use={self._in_use}, queued={len(self._waiters)})"
        )
