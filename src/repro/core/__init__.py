"""The paper's contribution: execution model, efficiency, indicators.

This package is pure math over measured (or modeled) quantities — it
has no dependency on the simulator and can be applied to stage times
from any source, including real traces.

Contents, by paper section:

- :mod:`repro.core.stages` — fine-grained stage model (§3.1): the
  simulation's ``S``/``I^S``/``W`` and each analysis's ``R``/``A``/
  ``I^A`` steady-state durations, plus estimation of steady-state
  values from per-step samples.
- :mod:`repro.core.insitu` — the in situ step (§3.2): non-overlapped
  segment (Eq. 1), member makespan (Eq. 2), idle-time derivation and
  coupling regime classification (Idle Simulation vs Idle Analyzer).
- :mod:`repro.core.efficiency` — computational efficiency ``E``
  (§3.3, Eq. 3).
- :mod:`repro.core.indicators` — the multi-stage performance
  indicator (§4): member resource usage ``P^U`` (Eq. 5), the placement
  indicator ``CP`` (Eq. 6), member resource allocation ``P^{U,A}``
  (Eq. 7), ensemble resource provisioning ``P^{U,A,P}`` (Eq. 8), and
  the alternative stage order ``P^{U,P}`` / ``P^{U,P,A}`` explored in
  §5.2.
- :mod:`repro.core.objective` — the ensemble-level objective
  ``F(P) = mean - std`` (§5.1, Eq. 9) and configuration ranking.
- :mod:`repro.core.heuristic` — the §3.4 resource-provisioning
  heuristic: pick the analysis core count satisfying Eq. 4 (Idle
  Analyzer regime) that maximizes ``E``.
"""

from repro.core.stages import (
    AnalysisStages,
    MemberStages,
    SimulationStages,
    estimate_steady_state,
)
from repro.core.insitu import (
    CouplingRegime,
    analysis_idle_time,
    classify_coupling,
    member_makespan,
    non_overlapped_segment,
    simulation_idle_time,
)
from repro.core.efficiency import computational_efficiency, coupling_efficiency
from repro.core.indicators import (
    IndicatorStage,
    MemberMeasurement,
    PlacementSets,
    apply_stages,
    indicator_path,
    placement_indicator,
    resource_usage_indicator,
)
from repro.core.objective import objective_function, rank_by_objective
from repro.core.pipeline import (
    STAGE_PATHS,
    ensemble_objective_paths,
    member_indicator_paths,
)
from repro.core.heuristic import (
    CoreAllocationChoice,
    CoreSweepPoint,
    choose_analysis_cores,
    sweep_analysis_cores,
)

__all__ = [
    "AnalysisStages",
    "CoreAllocationChoice",
    "CoreSweepPoint",
    "CouplingRegime",
    "IndicatorStage",
    "MemberMeasurement",
    "MemberStages",
    "PlacementSets",
    "STAGE_PATHS",
    "SimulationStages",
    "analysis_idle_time",
    "apply_stages",
    "choose_analysis_cores",
    "classify_coupling",
    "computational_efficiency",
    "coupling_efficiency",
    "ensemble_objective_paths",
    "estimate_steady_state",
    "indicator_path",
    "member_indicator_paths",
    "member_makespan",
    "non_overlapped_segment",
    "objective_function",
    "placement_indicator",
    "rank_by_objective",
    "resource_usage_indicator",
    "simulation_idle_time",
    "sweep_analysis_cores",
]
