"""Multi-stage performance indicators (paper §4).

Three information layers refine a member's indicator:

- **U (resource usage, Eq. 5)** — the base: ``P^U = E / c`` where
  ``E`` is the member's computational efficiency and ``c`` its total
  core count. Always applied first (the other layers are weights on
  this base).
- **A (resource allocation, Eq. 6-7)** — multiply by the placement
  indicator ``CP = (|s| / K) * sum_j 1 / |s U a^j|``, which is 1 when
  every analysis is co-located with its simulation and approaches 0 as
  components spread over dedicated nodes.
- **P (resource provisioning, Eq. 8)** — divide by ``M``, the node
  count of the whole workflow ensemble.

A and P commute (both are multiplicative weights), so the two paths
explored in §5.2 — ``U -> A -> P`` and ``U -> P -> A`` — end at the
same final value ``P^{U,A,P} = P^{U,P,A}``; what differs is the
*intermediate* indicator, and the paper studies how much each
intermediate can already discriminate between configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from repro.core.stages import MemberStages
from repro.core.efficiency import computational_efficiency
from repro.util.errors import ValidationError
from repro.util.validation import require_positive_int


class IndicatorStage(Enum):
    """One information layer of the multi-stage indicator."""

    USAGE = "U"
    ALLOCATION = "A"
    PROVISIONING = "P"


#: The fully-refined indicator order U -> A -> P (P^{U,A,P}) — the
#: final stage every scheduler objective scores against.
FINAL_STAGE_ORDER: Tuple[IndicatorStage, ...] = (
    IndicatorStage.USAGE,
    IndicatorStage.ALLOCATION,
    IndicatorStage.PROVISIONING,
)


@dataclass(frozen=True)
class PlacementSets:
    """Node-index sets of one ensemble member (Table 3's s_i, a_i^j).

    ``simulation_nodes`` is ``s_i``; ``analysis_nodes[j]`` is
    ``a_i^j``. Node indexes are allocation-relative.
    """

    simulation_nodes: FrozenSet[int]
    analysis_nodes: Tuple[FrozenSet[int], ...]

    def __post_init__(self) -> None:
        sim = frozenset(self.simulation_nodes)
        object.__setattr__(self, "simulation_nodes", sim)
        anas = tuple(frozenset(a) for a in self.analysis_nodes)
        object.__setattr__(self, "analysis_nodes", anas)
        if not sim:
            raise ValidationError("simulation_nodes must be non-empty")
        if not anas:
            raise ValidationError("at least one analysis placement required")
        for j, a in enumerate(anas):
            if not a:
                raise ValidationError(f"analysis_nodes[{j}] must be non-empty")
        for idx in sim | frozenset().union(*anas):
            if idx < 0:
                raise ValidationError(f"negative node index {idx}")

    @property
    def num_couplings(self) -> int:
        """K_i."""
        return len(self.analysis_nodes)

    @property
    def all_nodes(self) -> FrozenSet[int]:
        """Every node this member touches."""
        return self.simulation_nodes.union(*self.analysis_nodes)

    @property
    def num_nodes(self) -> int:
        """d_i = |s_i U union_j a_i^j|."""
        return len(self.all_nodes)

    def coupling_co_located(self, j: int) -> bool:
        """True iff analysis ``j`` shares every node with the simulation.

        Per §4.3: co-located iff ``|s_i| = |s_i U a_i^j|``.
        """
        if not 0 <= j < self.num_couplings:
            raise ValidationError(f"coupling index {j} out of range")
        return len(self.simulation_nodes) == len(
            self.simulation_nodes | self.analysis_nodes[j]
        )


def placement_indicator(placement: PlacementSets) -> float:
    """Eq. 6: ``CP_i = (|s_i| / K_i) * sum_j 1 / |s_i U a_i^j|``.

    Lies in ``(0, 1]``; equals 1 iff every coupling is co-located.
    """
    s = len(placement.simulation_nodes)
    k = placement.num_couplings
    total = sum(
        1.0 / len(placement.simulation_nodes | a) for a in placement.analysis_nodes
    )
    return (s / k) * total


def resource_usage_indicator(efficiency: float, total_cores: int) -> float:
    """Eq. 5: ``P^U = E_i / c_i``."""
    require_positive_int("total_cores", total_cores)
    return efficiency / total_cores


@dataclass(frozen=True)
class MemberMeasurement:
    """Everything the indicator needs to know about one member.

    Attributes
    ----------
    name:
        Member identifier (for reports).
    stages:
        Steady-state stage durations (measured or modeled).
    total_cores:
        c_i — cores used by the simulation plus all its analyses.
    placement:
        The member's node-index sets.
    """

    name: str
    stages: MemberStages
    total_cores: int
    placement: PlacementSets

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("member name must be non-empty")
        require_positive_int("total_cores", self.total_cores)
        if self.stages.num_couplings != self.placement.num_couplings:
            raise ValidationError(
                f"stages have K={self.stages.num_couplings} couplings but "
                f"placement has K={self.placement.num_couplings}"
            )

    @property
    def efficiency(self) -> float:
        """E_i (Eq. 3)."""
        return computational_efficiency(self.stages)

    @property
    def base_indicator(self) -> float:
        """P^U (Eq. 5)."""
        return resource_usage_indicator(self.efficiency, self.total_cores)


def apply_stages(
    member: MemberMeasurement,
    stages: Sequence[IndicatorStage],
    total_nodes: int,
) -> float:
    """Compute the indicator after applying ``stages`` in order.

    ``stages`` must start with :attr:`IndicatorStage.USAGE` and contain
    no duplicates; ``total_nodes`` is M, the node count of the whole
    workflow ensemble (used by the P layer).
    """
    require_positive_int("total_nodes", total_nodes)
    stage_list = list(stages)
    if not stage_list or stage_list[0] is not IndicatorStage.USAGE:
        raise ValidationError(
            "the indicator must start with the USAGE stage (P^U is the base)"
        )
    if len(set(stage_list)) != len(stage_list):
        raise ValidationError("indicator stages must not repeat")
    if member.placement.num_nodes > total_nodes:
        raise ValidationError(
            f"member {member.name!r} spans {member.placement.num_nodes} nodes "
            f"but the ensemble reportedly uses only {total_nodes}"
        )
    value = member.base_indicator
    for stage in stage_list[1:]:
        if stage is IndicatorStage.ALLOCATION:
            value *= placement_indicator(member.placement)
        elif stage is IndicatorStage.PROVISIONING:
            value /= total_nodes
        else:  # pragma: no cover - USAGE already rejected above
            raise ValidationError(f"unexpected stage {stage!r}")
    return value


def indicator_path(
    member: MemberMeasurement,
    order: Sequence[IndicatorStage],
    total_nodes: int,
) -> Dict[str, float]:
    """All intermediate indicator values along a stage order.

    For order ``U, A, P`` returns ``{"U": P^U, "U,A": P^{U,A},
    "U,A,P": P^{U,A,P}}`` — the series plotted in the paper's
    Figures 8 and 9.
    """
    labels: List[str] = []
    out: Dict[str, float] = {}
    for i in range(1, len(order) + 1):
        prefix = list(order[:i])
        labels.append(",".join(s.value for s in prefix))
        out[labels[-1]] = apply_stages(member, prefix, total_nodes)
    return out


def ensemble_node_count(placements: Iterable[PlacementSets]) -> int:
    """M: distinct nodes used by all members together.

    Satisfies ``M <= sum_i d_i`` with equality iff members share no
    nodes (the paper's Table 3 inequality; property-tested).
    """
    nodes: FrozenSet[int] = frozenset()
    count = 0
    for p in placements:
        nodes = nodes | p.all_nodes
        count += 1
    if count == 0:
        raise ValidationError("at least one member placement required")
    return len(nodes)
