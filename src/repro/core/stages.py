"""Fine-grained stage model and steady-state estimation (paper §3.1).

Every simulation step is divided into a compute stage ``S``, an idle
stage ``I^S`` and a write stage ``W`` (in that order); every analysis
step into a read stage ``R``, an analyze stage ``A`` and an idle stage
``I^A``. After warm-up the execution reaches a steady state where each
stage's duration is stable across steps; the starred values ``S*``,
``W*``, ``R*``, ``A*`` used throughout the paper are those steady-state
durations.

The idle stages are *derived*, not stored: given the steady-state
period (Eq. 1), ``I^S* = sigma* - (S* + W*)`` and
``I^A_i* = sigma* - (R_i* + A_i*)`` — see :mod:`repro.core.insitu`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.util.errors import ValidationError
from repro.util.stats import trimmed_mean
from repro.util.validation import require_in_range, require_non_negative


@dataclass(frozen=True)
class SimulationStages:
    """Steady-state stage durations of a simulation component."""

    compute: float  # S*
    write: float  # W*

    def __post_init__(self) -> None:
        require_non_negative("compute", self.compute)
        require_non_negative("write", self.write)

    @property
    def active(self) -> float:
        """S* + W*: the simulation's non-idle time per in situ step."""
        return self.compute + self.write


@dataclass(frozen=True)
class AnalysisStages:
    """Steady-state stage durations of one analysis component."""

    read: float  # R*
    analyze: float  # A*

    def __post_init__(self) -> None:
        require_non_negative("read", self.read)
        require_non_negative("analyze", self.analyze)

    @property
    def active(self) -> float:
        """R* + A*: the analysis's non-idle time per in situ step."""
        return self.read + self.analyze


@dataclass(frozen=True)
class MemberStages:
    """Steady-state stage durations of a whole ensemble member.

    One simulation coupled with ``K >= 1`` analyses — the paper's
    member structure (one simulation per member, §2.1).
    """

    simulation: SimulationStages
    analyses: Tuple[AnalysisStages, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.analyses, tuple):
            object.__setattr__(self, "analyses", tuple(self.analyses))
        if len(self.analyses) == 0:
            raise ValidationError("a member requires at least one analysis (K >= 1)")

    @property
    def num_couplings(self) -> int:
        """K: the number of (Sim, Ana^i) couplings."""
        return len(self.analyses)


def estimate_steady_state(
    samples: Sequence[float],
    warmup_fraction: float = 0.2,
    trim_fraction: float = 0.1,
) -> float:
    """Estimate a stage's steady-state duration from per-step samples.

    Drops the first ``warmup_fraction`` of steps (the paper observes
    steady state "after a few warm-up steps") and returns the trimmed
    mean of the remainder, robust to stragglers. With very few samples
    the warm-up drop is reduced so at least one sample survives.
    """
    values = list(samples)
    if not values:
        raise ValidationError("estimate_steady_state requires at least one sample")
    require_in_range("warmup_fraction", warmup_fraction, 0.0, 1.0, inclusive_high=False)
    skip = int(len(values) * warmup_fraction)
    if skip >= len(values):
        skip = len(values) - 1
    return trimmed_mean(values[skip:], trim_fraction)
