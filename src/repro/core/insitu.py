"""The in situ step: non-overlapped segment and makespan (paper §3.2).

The synchronous no-buffering protocol orders I/O stages as
``W_i -> R_i -> W_{i+1}``. In steady state the member's period — the
"actual" (non-overlapped) in situ step — is (Eq. 1)::

    sigma* = max(S* + W*, R^1* + A^1*, ..., R^K* + A^K*)

and the member makespan over ``n_steps`` in situ steps is (Eq. 2)::

    MAKESPAN = n_steps * sigma*

Each coupling is classified (Figure 6) as *Idle Simulation* (the
analysis step outlasts the simulation step; the simulation waits) or
*Idle Analyzer* (the reverse). Idle durations are derived from Eq. 1
exactly as in §3.3: ``I^S* = sigma* - (S* + W*)`` and
``I^{A_i}* = sigma* - (R^i* + A^i*)``.
"""

from __future__ import annotations

import enum

from repro.core.stages import MemberStages
from repro.util.errors import ValidationError
from repro.util.validation import require_positive_int


class CouplingRegime(enum.Enum):
    """Which side of a (Sim, Ana^i) coupling idles in steady state."""

    IDLE_SIMULATION = "idle-simulation"
    IDLE_ANALYZER = "idle-analyzer"
    BALANCED = "balanced"  # the two sides match exactly


def non_overlapped_segment(member: MemberStages) -> float:
    """Eq. 1: the steady-state period sigma* of an ensemble member."""
    return max(
        member.simulation.active,
        *(analysis.active for analysis in member.analyses),
    )


def member_makespan(member: MemberStages, n_steps: int) -> float:
    """Eq. 2: makespan = n_steps * sigma*."""
    require_positive_int("n_steps", n_steps)
    return n_steps * non_overlapped_segment(member)


def simulation_idle_time(member: MemberStages) -> float:
    """I^S* = sigma* - (S* + W*): simulation idle per in situ step."""
    return non_overlapped_segment(member) - member.simulation.active


def analysis_idle_time(member: MemberStages, index: int) -> float:
    """I^{A_i}* = sigma* - (R^i* + A^i*): analysis ``index`` idle time."""
    if not 0 <= index < member.num_couplings:
        raise ValidationError(
            f"analysis index {index} out of range 0..{member.num_couplings - 1}"
        )
    return non_overlapped_segment(member) - member.analyses[index].active


def classify_coupling(member: MemberStages, index: int) -> CouplingRegime:
    """Classify coupling ``(Sim, Ana^index)`` per Figure 6.

    The comparison is between the two sides' active times: if the
    analysis's ``R* + A*`` exceeds the simulation's ``S* + W*`` the
    simulation idles waiting for the analysis, and vice versa.
    """
    if not 0 <= index < member.num_couplings:
        raise ValidationError(
            f"analysis index {index} out of range 0..{member.num_couplings - 1}"
        )
    sim_active = member.simulation.active
    ana_active = member.analyses[index].active
    if ana_active > sim_active:
        return CouplingRegime.IDLE_SIMULATION
    if ana_active < sim_active:
        return CouplingRegime.IDLE_ANALYZER
    return CouplingRegime.BALANCED
