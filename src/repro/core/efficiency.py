"""Computational efficiency of an ensemble member (paper §3.3, Eq. 3).

For each coupling ``(Sim, Ana^i)`` the effective-computation fraction
of an actual in situ step is ``1 - (I^S* + I^{A_i}*) / sigma*``; the
member's computational efficiency ``E`` is the average over its ``K``
couplings, which telescopes to the closed form::

    E = (S* + W*) / sigma*  +  sum_i (R^i* + A^i*) / (K * sigma*)  -  1

Maximizing ``E`` minimizes idle time and therefore the makespan (which
is ``n_steps * sigma*``).

Range: with ``K = 1``,
``E = min(sim_active, ana_active) / max(sim_active, ana_active)``
lies in ``(0, 1]`` (for positive stage times). For ``K > 1`` the upper
bound ``E <= 1`` still holds, but individual couplings far shorter
than the member's period contribute *negative* effective fractions
(both sides of such a coupling idle most of the period), so ``E`` can
drop below zero; the tight lower bound is ``E > 1/K - 1``, since the
mean analysis active time is at least ``sigma*/K`` whenever an
analysis defines the period. Unbalanced couplings being penalized is
intended — the indicator is meant to disfavor them. These bounds are
property-tested in ``tests/core/test_efficiency.py``.
"""

from __future__ import annotations

from repro.core.insitu import (
    analysis_idle_time,
    non_overlapped_segment,
    simulation_idle_time,
)
from repro.core.stages import MemberStages
from repro.util.errors import ValidationError


def coupling_efficiency(member: MemberStages, index: int) -> float:
    """Effective-computation fraction of coupling ``(Sim, Ana^index)``.

    ``1 - (I^S* + I^{A_i}*) / sigma*`` — the summand of Eq. 3.
    """
    sigma = non_overlapped_segment(member)
    if sigma <= 0:
        raise ValidationError(
            "cannot compute efficiency of a member with zero-duration stages"
        )
    idle = simulation_idle_time(member) + analysis_idle_time(member, index)
    return 1.0 - idle / sigma


def computational_efficiency(member: MemberStages) -> float:
    """Eq. 3: the member's computational efficiency ``E``.

    Computed via the closed form; the definitional average of
    :func:`coupling_efficiency` is algebraically identical (asserted by
    the test suite to machine precision).
    """
    sigma = non_overlapped_segment(member)
    if sigma <= 0:
        raise ValidationError(
            "cannot compute efficiency of a member with zero-duration stages"
        )
    k = member.num_couplings
    analyses_active = sum(a.active for a in member.analyses)
    return member.simulation.active / sigma + analyses_active / (k * sigma) - 1.0
