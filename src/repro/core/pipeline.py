"""End-to-end indicator evaluation: measurements in, F table out.

The public convenience the figure experiments (and downstream users)
share: given each member's :class:`~repro.core.indicators
.MemberMeasurement` and the ensemble's node count, produce the
objective ``F`` at every stage of both §5.2 paths::

    {"U": ..., "U,P": ..., "U,A": ..., "U,P,A": ..., "U,A,P": ...}

This is the complete Figure 8/9 computation for one configuration.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.indicators import (
    IndicatorStage,
    MemberMeasurement,
    apply_stages,
)
from repro.core.objective import objective_function
from repro.util.errors import ValidationError

U = IndicatorStage.USAGE
A = IndicatorStage.ALLOCATION
P = IndicatorStage.PROVISIONING

#: every stage prefix of the two §5.2 paths, label -> stage sequence.
STAGE_PATHS: Dict[str, Tuple[IndicatorStage, ...]] = {
    "U": (U,),
    "U,P": (U, P),
    "U,A": (U, A),
    "U,P,A": (U, P, A),
    "U,A,P": (U, A, P),
}


def member_indicator_paths(
    member: MemberMeasurement, total_nodes: int
) -> Dict[str, float]:
    """One member's indicator value at every stage of both paths."""
    return {
        label: apply_stages(member, stages, total_nodes)
        for label, stages in STAGE_PATHS.items()
    }


def ensemble_objective_paths(
    members: Sequence[MemberMeasurement], total_nodes: int
) -> Dict[str, float]:
    """F (Eq. 9) over the ensemble's members at every indicator stage.

    The row of Figures 8/9 for one configuration.
    """
    members = list(members)
    if not members:
        raise ValidationError("at least one member measurement required")
    per_stage: Dict[str, List[float]] = {label: [] for label in STAGE_PATHS}
    for member in members:
        values = member_indicator_paths(member, total_nodes)
        for label, value in values.items():
            per_stage[label].append(value)
    return {
        label: objective_function(values)
        for label, values in per_stage.items()
    }
