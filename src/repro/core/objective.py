"""Ensemble-level objective function (paper §5.1, Eq. 9).

Member indicators are aggregated as ``F(P) = mean(P) - std(P)`` with
the *population* standard deviation. Subtracting the spread favors
configurations whose members perform uniformly — the ensemble makespan
is the max over members, so one straggler hurts the whole ensemble
even if the mean looks good. Higher ``F`` is better.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.util.errors import ValidationError
from repro.util.stats import population_std


def objective_function(indicators: Sequence[float]) -> float:
    """Eq. 9: ``F = mean(P_i) - population_std(P_i)``."""
    values = np.asarray(list(indicators), dtype=float)
    if values.size == 0:
        raise ValidationError("objective_function requires at least one indicator")
    return float(values.mean()) - population_std(values)


def rank_by_objective(
    per_configuration: Dict[str, Sequence[float]],
) -> List[Tuple[str, float]]:
    """Rank configurations by ``F`` (best first).

    ``per_configuration`` maps a configuration name to its members'
    indicator values. Ties keep insertion order (stable sort).
    """
    if not per_configuration:
        raise ValidationError("rank_by_objective requires at least one configuration")
    scored = [
        (name, objective_function(values))
        for name, values in per_configuration.items()
    ]
    return sorted(scored, key=lambda item: -item[1])
