"""The §3.4 resource-provisioning heuristic.

Given a simulation with user-fixed settings, choose the analysis core
count. The search space (cores x placements x stride) is intractable,
so the paper's heuristic works on the co-location-free baseline:

1. sweep the analysis core count;
2. keep the counts satisfying Eq. 4 — ``R* + A* <= S* + W*`` for every
   coupling (Idle Analyzer regime), which minimizes
   ``sigma* = S* + W*`` and hence the makespan;
3. among those, pick the count maximizing the computational efficiency
   ``E`` (least idle time).

Since in the feasible region ``E = mean(R+A) / (S+W)`` decreases as
cores shrink the analysis time, the winner is the *smallest feasible
core count* — 8 cores in the paper's calibration, which is exactly
what :func:`choose_analysis_cores` returns for the default models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.efficiency import computational_efficiency
from repro.core.insitu import non_overlapped_segment
from repro.core.stages import MemberStages
from repro.util.errors import ValidationError

#: builds the member's steady-state stages for a given analysis core count.
StageEvaluator = Callable[[int], MemberStages]


@dataclass(frozen=True)
class CoreSweepPoint:
    """One point of the §3.4 sweep (a column of the paper's Figure 7)."""

    cores: int
    sigma: float  # non-overlapped in situ step
    simulation_active: float  # S* + W*
    analysis_active: float  # max_i (R^i* + A^i*)
    efficiency: float  # E
    feasible: bool  # Eq. 4 satisfied for every coupling


@dataclass(frozen=True)
class CoreAllocationChoice:
    """Outcome of the heuristic."""

    cores: int
    point: CoreSweepPoint
    sweep: Tuple[CoreSweepPoint, ...]


def sweep_analysis_cores(
    evaluate: StageEvaluator,
    core_counts: Sequence[int],
) -> List[CoreSweepPoint]:
    """Evaluate the member at each analysis core count."""
    counts = list(core_counts)
    if not counts:
        raise ValidationError("core_counts must be non-empty")
    points: List[CoreSweepPoint] = []
    for cores in counts:
        member = evaluate(cores)
        sigma = non_overlapped_segment(member)
        sim_active = member.simulation.active
        ana_active = max(a.active for a in member.analyses)
        feasible = all(a.active <= sim_active for a in member.analyses)
        points.append(
            CoreSweepPoint(
                cores=cores,
                sigma=sigma,
                simulation_active=sim_active,
                analysis_active=ana_active,
                efficiency=computational_efficiency(member),
                feasible=feasible,
            )
        )
    return points


def choose_analysis_cores(
    evaluate: StageEvaluator,
    core_counts: Sequence[int],
) -> Optional[CoreAllocationChoice]:
    """Run the heuristic; ``None`` if no core count satisfies Eq. 4.

    Feasible points are ranked by efficiency ``E`` (higher first),
    breaking exact ties toward fewer cores (cheaper allocation).
    """
    sweep = sweep_analysis_cores(evaluate, core_counts)
    feasible = [p for p in sweep if p.feasible]
    if not feasible:
        return None
    best = max(feasible, key=lambda p: (p.efficiency, -p.cores))
    return CoreAllocationChoice(cores=best.cores, point=best, sweep=tuple(sweep))
