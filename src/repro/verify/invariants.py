"""Runtime invariant checking for the DES executor.

The executor routes every timed S/W/R/A stage through its ``_stage``
choke point; when verification is enabled, an :class:`InvariantChecker`
observes each stage instance there (component, stage code, step, start
and end clock, nominal duration) and audits the run against the
protocol's structural invariants:

- **event-clock monotonicity** — ``end >= start`` for every stage, and
  each component's stages begin at or after its previous stage ended
  (the DES clock never runs backwards through a process);
- **step ordering** — per ``(component, stage)`` the step index starts
  at 0 and increases by exactly 1 (dropped analyses may stop early,
  never skip);
- **duration fidelity** (exact mode) — with zero timing noise, no
  fault injection, and no NIC contention, every stage's wall time
  equals its nominal effective duration to float precision;
- **Eq. 1 period consistency** (exact mode) — from the second step on,
  consecutive simulation-stage starts are exactly ``sigma* =
  max(S*+W*, max_j R_j*+A_j*)`` apart, the paper's steady-state
  period;
- **resource conservation** — every DES :class:`~repro.des.resources
  .Resource` ends the run with zero units in use and an empty queue;
- **DTL chunk accounting** — the no-buffering store ends the run with
  no live slots, and its byte/read counters are consistent with the
  observed W/R stages;
- **Eq. 3 efficiency bounds** — every member's measured ``E``
  satisfies ``E <= 1`` and ``E > 1/K - 1`` (so ``E`` lies in
  ``(0, 1]`` for ``K = 1``).

The checker never touches the
:class:`~repro.des.engine.Environment` — it only *reads* ``env.now``
— so an instrumented run emits a byte-identical event sequence and
trace; with verification disabled the executor's only extra work is an
``is None`` test per stage.

Violations are collected into an :class:`InvariantReport`; callers that
want failures to be loud (the executor's default) raise
:class:`InvariantViolation` carrying the report text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Tuple

from repro.util.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.des.resources import Resource
    from repro.dtl.base import DataTransportLayer
    from repro.runtime.results import ExecutionResult

#: absolute slack granted to float-exact comparisons (clock arithmetic
#: accumulates one rounding error per event, never more than this).
EXACT_EPS: float = 1e-9


class InvariantViolation(SimulationError):
    """A runtime invariant of the DES execution was violated."""


@dataclass(frozen=True)
class InvariantReport:
    """Outcome of one verified run: audit counters plus violations."""

    stages_observed: int
    checks_performed: int
    violations: Tuple[str, ...] = field(default_factory=tuple)

    @property
    def passed(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "stages_observed": self.stages_observed,
            "checks_performed": self.checks_performed,
            "passed": self.passed,
            "violations": list(self.violations),
        }

    def to_text(self) -> str:
        status = "ok" if self.passed else "VIOLATED"
        lines = [
            f"invariants: {status} ({self.stages_observed} stages, "
            f"{self.checks_performed} checks, "
            f"{len(self.violations)} violations)"
        ]
        lines.extend(f"  {v}" for v in self.violations)
        return "\n".join(lines)


class InvariantChecker:
    """Audits one DES run through the executor's stage choke point.

    Parameters
    ----------
    exact:
        True when the run is deterministic (zero timing noise, no
        fault injector, no NIC contention): enables the float-exact
        duration and Eq. 1 period checks on top of the structural
        ones. The executor sets this automatically.
    """

    def __init__(self, exact: bool = False) -> None:
        self.exact = exact
        self.stages_observed = 0
        self.checks_performed = 0
        self.violations: List[str] = []
        # per-component bookkeeping
        self._last_end: Dict[str, float] = {}
        self._next_step: Dict[Tuple[str, str], int] = {}
        # exact mode: per-(member, component, step) active time and the
        # per-member simulation S-stage start clocks (for Eq. 1)
        self._active: Dict[Tuple[str, str, int], float] = {}
        self._sim_starts: Dict[str, List[float]] = {}
        self._members_of: Dict[str, set] = {}
        # steps at which each member executed a migration pause
        self._migration_steps: Dict[str, List[int]] = {}

    # -- recording ----------------------------------------------------------
    def _fail(self, message: str) -> None:
        self.violations.append(message)

    def _check(self, ok: bool, message: str) -> None:
        self.checks_performed += 1
        if not ok:
            self._fail(message)

    def observe_stage(
        self,
        member: str,
        component: str,
        stage: str,
        step: int,
        start: float,
        end: float,
        duration: float,
    ) -> None:
        """Record one completed stage instance (called from ``_stage``)."""
        self.stages_observed += 1

        self._check(
            end >= start,
            f"{component}:{stage}{step}: clock ran backwards "
            f"(start={start!r}, end={end!r})",
        )
        last = self._last_end.get(component)
        if last is not None:
            self._check(
                start >= last - EXACT_EPS,
                f"{component}:{stage}{step}: started at {start!r} before "
                f"the component's previous stage ended at {last!r}",
            )
        self._last_end[component] = end

        expected = self._next_step.get((component, stage), 0)
        self._check(
            step == expected,
            f"{component}:{stage}: observed step {step}, expected "
            f"{expected} (steps must start at 0 and increase by 1)",
        )
        self._next_step[(component, stage)] = step + 1

        if self.exact:
            self._check(
                abs((end - start) - duration) <= EXACT_EPS,
                f"{component}:{stage}{step}: wall time {end - start!r} "
                f"differs from nominal duration {duration!r} in an "
                f"exact (noise-free, fault-free) run",
            )
            self._active[(member, component, step)] = (
                self._active.get((member, component, step), 0.0) + duration
            )
            self._members_of.setdefault(member, set()).add(component)
            if stage == "S":
                self._sim_starts.setdefault(member, []).append(start)

    def note_migration(
        self,
        member: str,
        step: int,
        delay: float,
        start: float,
        end: float,
    ) -> None:
        """Record one executed migration pause (called by the executor).

        The pause itself is audited — non-negative price, clock moved
        forward by exactly the charged delay — and the step is kept so
        :meth:`check_periods` can segment the Eq. 1 check at the
        migration boundary (the steady-state period legitimately
        changes when the placement does).
        """
        self._check(
            delay >= 0.0,
            f"{member}: migration at step {step} charged a negative "
            f"delay {delay!r}",
        )
        self._check(
            end >= start,
            f"{member}: migration at step {step} ran the clock "
            f"backwards (start={start!r}, end={end!r})",
        )
        self._check(
            abs((end - start) - delay) <= EXACT_EPS * max(1.0, delay),
            f"{member}: migration pause at step {step} spanned "
            f"{end - start!r} on the clock but charged {delay!r}",
        )
        self._migration_steps.setdefault(member, []).append(step)

    # -- end-of-run audits --------------------------------------------------
    def check_periods(self) -> None:
        """Eq. 1: steady-state S-starts are exactly ``sigma*`` apart.

        Exact mode only. The period is derived from the *observed*
        nominal durations — ``sigma* = max`` over the member's
        components of their per-step active time — so the check is
        self-contained: it needs no analytic predictor to disagree
        with.

        Migrations segment the check: a member that migrated before
        step ``m`` runs one steady state on ``[0, m)`` and another on
        ``[m, n)`` (the placement — hence ``sigma*`` — changed), so
        each segment derives its own period from its own first step's
        active times. The period spanning the migration pause and the
        first post-migration period (pipeline re-fill, mirroring the
        run-start warm-up) are excluded. With no migrations there is
        one segment and the check reduces to the original.
        """
        if not self.exact:
            return
        for member, starts in self._sim_starts.items():
            boundaries = sorted(
                {
                    step
                    for step in self._migration_steps.get(member, ())
                    if 0 < step < len(starts)
                }
            )
            segments = list(
                zip([0] + boundaries, boundaries + [len(starts)])
            )
            for seg_start, seg_end in segments:
                # warm-up: the first period of a segment may include
                # pipeline fill; post-migration segments also skip the
                # following period while the coupling re-settles.
                first = seg_start + (1 if seg_start == 0 else 2)
                if seg_end - first < 2:
                    continue
                sigma = max(
                    self._active.get((member, component, seg_start), 0.0)
                    for component in self._members_of.get(member, ())
                )
                scale = max(1.0, sigma)
                for i in range(first, seg_end - 1):
                    period = starts[i + 1] - starts[i]
                    self._check(
                        abs(period - sigma) <= EXACT_EPS * scale,
                        f"{member}: period between S{i} and S{i + 1} is "
                        f"{period!r}, expected sigma*={sigma!r} (Eq. 1)",
                    )

    def check_resources(self, resources: Iterable["Resource"]) -> None:
        """Every resource ends the run drained: nothing held or queued."""
        for resource in resources:
            label = resource.name or repr(resource)
            self._check(
                resource.in_use == 0,
                f"resource {label}: {resource.in_use} units still in use "
                f"after the run (conservation violated)",
            )
            self._check(
                resource.queue_length == 0,
                f"resource {label}: {resource.queue_length} requests still "
                f"queued after the run",
            )
            self._check(
                resource.available == resource.capacity,
                f"resource {label}: available={resource.available} != "
                f"capacity={resource.capacity} after the run",
            )

    def check_dtl(self, dtl: "DataTransportLayer") -> None:
        """No-buffering accounting: the store drained, counters sane."""
        self._check(
            dtl.live_slots == 0,
            f"DTL {dtl.name!r}: {dtl.live_slots} chunks still staged after "
            f"the run (every slot must be reclaimed)",
        )
        self._check(
            dtl.bytes_staged_total >= 0,
            f"DTL {dtl.name!r}: negative bytes_staged_total "
            f"{dtl.bytes_staged_total!r}",
        )
        writes = sum(
            count
            for (component, stage), count in self._next_step.items()
            if stage == "W"
        )
        reads = sum(
            count
            for (component, stage), count in self._next_step.items()
            if stage == "R"
        )
        self._check(
            dtl.reads_served_total <= reads or reads == 0,
            f"DTL {dtl.name!r}: served {dtl.reads_served_total} reads but "
            f"only {reads} R stages ran",
        )
        if writes and dtl.bytes_staged_total == 0:
            self._fail(
                f"DTL {dtl.name!r}: {writes} W stages ran but no bytes "
                f"were staged"
            )
            self.checks_performed += 1

    def check_result(self, result: "ExecutionResult") -> None:
        """Eq. 3 bounds and makespan sanity on the distilled result."""
        for member in result.members:
            k = member.stages.num_couplings
            self._check(
                member.efficiency <= 1.0 + EXACT_EPS,
                f"{member.name}: efficiency E={member.efficiency!r} "
                f"exceeds the Eq. 3 upper bound of 1",
            )
            self._check(
                member.efficiency > (1.0 / k - 1.0) - EXACT_EPS,
                f"{member.name}: efficiency E={member.efficiency!r} "
                f"at or below the Eq. 3 lower bound 1/K - 1 = "
                f"{1.0 / k - 1.0!r} (K={k})",
            )
            self._check(
                member.makespan > 0.0,
                f"{member.name}: non-positive makespan "
                f"{member.makespan!r}",
            )
        self._check(
            result.ensemble_makespan
            >= max(m.makespan for m in result.members) - EXACT_EPS,
            f"ensemble makespan {result.ensemble_makespan!r} below the "
            f"slowest member's "
            f"{max(m.makespan for m in result.members)!r}",
        )

    # -- reporting ----------------------------------------------------------
    def report(self) -> InvariantReport:
        """Freeze the audit into an :class:`InvariantReport`."""
        return InvariantReport(
            stages_observed=self.stages_observed,
            checks_performed=self.checks_performed,
            violations=tuple(self.violations),
        )
