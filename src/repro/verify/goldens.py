"""Golden-trace regression store: canonical runs frozen as JSON.

A *golden* is the full, byte-stable record of one canonical small
scenario: the scenario parameters, the DES stage trace (via
:func:`~repro.monitoring.traceio.tracer_to_dict`), the distilled
makespans and objective, and the fault schedule the run was injected
with. Because the executor is deterministic for a fixed seed, a golden
regenerates to the identical canonical JSON on every machine — any
diff is a behaviour change, caught before it ships.

The store lives in ``tests/golden/`` (one ``<name>.json`` per
scenario); ``scripts/update_goldens.py`` regenerates it and
``tests/verify/test_goldens.py`` enforces it. This module is
path-agnostic: callers pass the directory, so the library never
hard-codes the test tree.

Scenario coverage: the three canonical Table 2 shapes (fully
co-located, fully distributed, partially co-located), one noisy run
(seeded jitter), and one fault-injected run (seeded crash/straggler
schedule with retry recovery) — together they pin the protocol logic,
the noise streams, and the injection path.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.indicators import FINAL_STAGE_ORDER
from repro.faults.models import FaultKind, RandomFailureModel
from repro.monitoring.traceio import tracer_to_dict
from repro.runtime.runner import run_ensemble
from repro.util.errors import ValidationError

#: bump when the golden payload layout changes (regenerate the store).
GOLDEN_FORMAT_VERSION = 1


@dataclass(frozen=True)
class GoldenScenario:
    """One canonical scenario pinned by the golden store.

    ``config`` names a Table 2 configuration; ``fault_rate`` > 0 runs
    under a seeded :class:`~repro.faults.models.RandomFailureModel`
    (crash + straggler kinds) with the default retry recovery.
    """

    name: str
    config: str
    n_steps: int = 4
    seed: int = 0
    noise: float = 0.0
    fault_rate: float = 0.0
    fault_seed: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("golden scenario name must be non-empty")
        if self.n_steps < 1:
            raise ValidationError(
                f"n_steps must be >= 1, got {self.n_steps!r}"
            )


#: The canonical golden set. Small on purpose: goldens are regression
#: tripwires, not coverage — each scenario pins one behaviour axis.
GOLDEN_SCENARIOS: Tuple[GoldenScenario, ...] = (
    GoldenScenario(name="cf-colocated", config="Cf"),
    GoldenScenario(name="cc-distributed", config="Cc"),
    GoldenScenario(name="c15-partial", config="C1.5"),
    GoldenScenario(name="c15-noisy", config="C1.5", noise=0.02, seed=7),
    GoldenScenario(
        name="c15-faulted",
        config="C1.5",
        n_steps=6,
        fault_rate=0.15,
        fault_seed=3,
    ),
)


def _scenario_model(scenario: GoldenScenario) -> Optional[RandomFailureModel]:
    if scenario.fault_rate <= 0.0:
        return None
    return RandomFailureModel(
        rate=scenario.fault_rate,
        kinds=(FaultKind.CRASH, FaultKind.STRAGGLER),
        seed=scenario.fault_seed,
    )


def build_golden(scenario: GoldenScenario) -> dict:
    """Run one scenario and freeze it into a golden payload dict."""
    from repro.configs.base import build_spec
    from repro.configs.table2 import TABLE2_CONFIGS

    config = TABLE2_CONFIGS.get(scenario.config)
    if config is None:
        raise ValidationError(
            f"golden scenario {scenario.name!r} names unknown "
            f"configuration {scenario.config!r}"
        )
    spec = build_spec(config, n_steps=scenario.n_steps)
    model = _scenario_model(scenario)
    fault_events: List[dict] = []
    if model is not None:
        fault_events = [
            {
                "member": e.member,
                "component": e.component,
                "step": e.step,
                "kind": e.kind.value,
                "stage": e.stage,
                "magnitude": e.magnitude,
                "repeats": e.repeats,
            }
            for e in model.build_schedule(spec).events
        ]
    result = run_ensemble(
        spec,
        config.placement(),
        seed=scenario.seed,
        timing_noise=scenario.noise,
        failure_model=model,
    )
    return {
        "format": GOLDEN_FORMAT_VERSION,
        "scenario": {
            "name": scenario.name,
            "config": scenario.config,
            "n_steps": scenario.n_steps,
            "seed": scenario.seed,
            "noise": scenario.noise,
            "fault_rate": scenario.fault_rate,
            "fault_seed": scenario.fault_seed,
        },
        "ensemble_makespan": result.ensemble_makespan,
        "member_makespans": dict(sorted(result.member_makespans.items())),
        "objective": result.objective(FINAL_STAGE_ORDER),
        "fault_events": fault_events,
        "trace": tracer_to_dict(result.tracer),
    }


def canonical_json(payload: dict) -> str:
    """Serialize a payload to the byte-stable on-disk form."""
    return json.dumps(payload, sort_keys=True, indent=1) + "\n"


def golden_path(directory: Union[str, Path], name: str) -> Path:
    return Path(directory) / f"{name}.json"


def load_golden(path: Union[str, Path]) -> dict:
    """Read one golden payload from disk."""
    try:
        payload = json.loads(Path(path).read_text())
    except FileNotFoundError:
        raise ValidationError(f"golden file missing: {path}") from None
    except json.JSONDecodeError as exc:
        raise ValidationError(
            f"golden file {path} is not valid JSON: {exc}"
        ) from exc
    version = payload.get("format")
    if version != GOLDEN_FORMAT_VERSION:
        raise ValidationError(
            f"golden file {path} has format {version!r}, expected "
            f"{GOLDEN_FORMAT_VERSION} (regenerate with "
            f"scripts/update_goldens.py)"
        )
    return payload


def diff_goldens(expected: dict, actual: dict, limit: int = 20) -> List[str]:
    """Human-readable structural diff between two golden payloads.

    Returns at most ``limit`` difference lines (empty when identical —
    identity is judged on the canonical JSON, so float formatting can
    never mask a drift).
    """
    if canonical_json(expected) == canonical_json(actual):
        return []
    lines: List[str] = []

    def walk(path: str, exp, act) -> None:
        if len(lines) >= limit:
            return
        if type(exp) is not type(act):
            lines.append(
                f"{path}: type {type(exp).__name__} -> {type(act).__name__}"
            )
            return
        if isinstance(exp, dict):
            for key in sorted(set(exp) | set(act)):
                if key not in exp:
                    lines.append(f"{path}.{key}: added")
                elif key not in act:
                    lines.append(f"{path}.{key}: removed")
                else:
                    walk(f"{path}.{key}", exp[key], act[key])
        elif isinstance(exp, list):
            if len(exp) != len(act):
                lines.append(
                    f"{path}: length {len(exp)} -> {len(act)}"
                )
            for i, (e, a) in enumerate(zip(exp, act)):
                walk(f"{path}[{i}]", e, a)
        elif exp != act:
            lines.append(f"{path}: {exp!r} -> {act!r}")

    walk("$", expected, actual)
    if len(lines) >= limit:
        lines = lines[:limit] + ["... (diff truncated)"]
    return lines


def check_goldens(
    directory: Union[str, Path],
) -> Dict[str, List[str]]:
    """Regenerate every scenario and diff against the stored goldens.

    Returns ``{scenario_name: diff_lines}`` for scenarios that
    mismatch (a missing file reports as a single-line diff); an empty
    dict means the store is up to date.
    """
    mismatches: Dict[str, List[str]] = {}
    for scenario in GOLDEN_SCENARIOS:
        path = golden_path(directory, scenario.name)
        actual = build_golden(scenario)
        try:
            expected = load_golden(path)
        except ValidationError as exc:
            mismatches[scenario.name] = [str(exc)]
            continue
        diff = diff_goldens(expected, actual)
        if diff:
            mismatches[scenario.name] = diff
    return mismatches


def write_goldens(directory: Union[str, Path]) -> List[str]:
    """(Re)generate every golden file; returns the names written."""
    out = Path(directory)
    out.mkdir(parents=True, exist_ok=True)
    written: List[str] = []
    for scenario in GOLDEN_SCENARIOS:
        payload = build_golden(scenario)
        golden_path(out, scenario.name).write_text(canonical_json(payload))
        written.append(scenario.name)
    return written
