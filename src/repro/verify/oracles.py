"""Differential oracle harness: one scenario, every evaluation path.

The repo evaluates a placement four independent ways — the closed-form
steady-state model (:mod:`repro.runtime.analytic`, Eqs. 1-3, 5-9), the
memoized search path (:mod:`repro.search`), the analytic fault
surrogate (:mod:`repro.faults.analytic`), and the DES executor
(:mod:`repro.runtime.executor`). The paper's claims are only as
trustworthy as the agreement between those paths, so this module runs
the *same* ``(spec, placement)`` through all of them and asserts
structured agreement in three tiers:

- **Tier 0 (exact)** — paths that share the effective-stage model must
  agree bit-for-bit: :class:`~repro.search.cache.StageCache` stages vs
  the uncached predictor, cached vs uncached
  :func:`~repro.scheduler.objectives.score_placement`, the
  surrogate's failure-free baseline, and — when a service URL is
  given — a score obtained through the placement service's HTTP API
  (:mod:`repro.service`), proving the JSON wire format is lossless.
  Tolerance is literally 0.0. The numpy batch kernel
  (:mod:`repro.search.vectorized`) joins as a 1e-9 tier — its only
  deviations from the scalar scorer are a few reassociated sums.
- **Tier 1 (tolerance-banded)** — the DES executor adds protocol
  dynamics; its noise-free steady-state estimates must match the
  analytic prediction within per-metric relative tolerances
  (:data:`DEFAULT_TOLERANCES`).
- **Tier 2 (envelope)** — under fault injection, the first-order
  surrogate tracks the DES trial mean within the accuracy envelope
  documented in ``docs/FAULT_MODELS.md``.

Every comparison is a :class:`MetricCheck` inside a machine-readable
:class:`DivergenceReport` (``to_dict``/``to_text``), so CI, the
benchmarks, and debugging sessions all see *which* metric diverged,
by how much, and against which tolerance — a perf regression and a
correctness regression are never confused.

The ``predictor`` and ``score_fn`` hooks exist so the test suite can
prove the harness has teeth: substituting a mutated copy (e.g. an
off-by-one in the Eq. 1 period) must produce a failing report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.indicators import (
    FINAL_STAGE_ORDER,
    MemberMeasurement,
    apply_stages,
)
from repro.core.insitu import non_overlapped_segment
from repro.core.objective import objective_function
from repro.core.stages import MemberStages
from repro.dtl.base import DataTransportLayer
from repro.faults.models import FailureModel, NoFailureModel
from repro.faults.recovery import RecoveryPolicy, RetryBackoffPolicy
from repro.platform.cluster import Cluster
from repro.runtime.analytic import predict_member_stages
from repro.runtime.placement import EnsemblePlacement
from repro.runtime.runner import run_ensemble
from repro.runtime.spec import EnsembleSpec
from repro.scheduler.objectives import score_placement
from repro.search.cache import StageCache
from repro.util.errors import ValidationError

#: Per-metric relative tolerances of the banded tiers. ``0.0`` means
#: the comparison is exact (bit-identical floats). The values are the
#: single source the test suite's ``tests/tolerances.py`` re-exports.
DEFAULT_TOLERANCES: Dict[str, float] = {
    # tier 0: memoized/cached paths vs their reference implementations
    "cache": 0.0,
    # tier 0: the PlanningContext spelling vs the legacy keyword
    # spelling of the same scoring call — pure plumbing, so exact
    "context": 0.0,
    # tier 0.5: the numpy batch kernel vs the scalar scorer — a few
    # ulps of reassociation (n*overhead vs a repeated sum, segment
    # reductions), nowhere near the DES band
    "vectorized": 1e-9,
    # tier 1: analytic steady state vs noise-free DES estimates
    "stage": 1e-6,
    "makespan": 1e-6,
    "indicator": 1e-5,
    "objective": 1e-5,
    # tier 2: first-order fault surrogate vs DES trial mean
    "surrogate": 0.15,
    # tier 0: the batched delta-replay engine vs serial DES trials —
    # exact for replayable recovery policies (retry, restart, drop)...
    "batched": 0.0,
    # ...and banded for the adaptive policy, whose budget drains in
    # global event order the per-member replay can only approximate
    "batched_adaptive": 0.05,
    # tier 0: a one-ensemble stream through the cluster co-scheduler
    # vs calling find_best_placement directly — the complete-partition
    # rule makes the degeneration float-identical
    "coschedule": 0.0,
}


@dataclass(frozen=True)
class MetricCheck:
    """One structured comparison between two evaluation paths.

    ``tolerance`` is relative; ``0.0`` demands exact float equality.
    ``scope`` names the member (or ``"ensemble"``), ``metric`` the
    quantity, and ``paths`` the two implementations compared.
    """

    scope: str
    metric: str
    paths: str
    reference: float
    candidate: float
    tolerance: float

    @property
    def error(self) -> float:
        """Relative error (absolute when the reference is ~zero)."""
        if self.reference == self.candidate:
            return 0.0
        denom = max(abs(self.reference), abs(self.candidate))
        if denom == 0.0:
            return 0.0
        return abs(self.reference - self.candidate) / denom

    @property
    def ok(self) -> bool:
        if self.tolerance == 0.0:
            return self.reference == self.candidate
        if math.isnan(self.reference) or math.isnan(self.candidate):
            return False
        return self.error <= self.tolerance

    def to_dict(self) -> dict:
        return {
            "scope": self.scope,
            "metric": self.metric,
            "paths": self.paths,
            "reference": self.reference,
            "candidate": self.candidate,
            "tolerance": self.tolerance,
            "error": self.error,
            "ok": self.ok,
        }


@dataclass(frozen=True)
class DivergenceReport:
    """Machine-readable outcome of one differential-oracle run."""

    scenario: str
    checks: Tuple[MetricCheck, ...] = field(default_factory=tuple)

    @property
    def passed(self) -> bool:
        return all(c.ok for c in self.checks)

    @property
    def failures(self) -> Tuple[MetricCheck, ...]:
        return tuple(c for c in self.checks if not c.ok)

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "passed": self.passed,
            "num_checks": len(self.checks),
            "num_failures": len(self.failures),
            "failures": [c.to_dict() for c in self.failures],
            "checks": [c.to_dict() for c in self.checks],
        }

    def to_text(self, verbose: bool = False) -> str:
        status = "ok" if self.passed else "DIVERGED"
        lines = [
            f"{self.scenario}: {status} "
            f"({len(self.checks)} checks, {len(self.failures)} failures)"
        ]
        shown = self.checks if verbose else self.failures
        for c in shown:
            mark = "ok " if c.ok else "FAIL"
            lines.append(
                f"  {mark} [{c.paths}] {c.scope}/{c.metric}: "
                f"ref={c.reference!r} got={c.candidate!r} "
                f"err={c.error:.3e} tol={c.tolerance:g}"
            )
        return "\n".join(lines)


#: Signature of the analytic stage predictor (the Tier-0/1 reference).
Predictor = Callable[..., Dict[str, MemberStages]]


def _member_drain_makespan(stages: MemberStages, n_steps: int) -> float:
    """Failure-free makespan with the pipeline tail: ``n*sigma + drain``."""
    sigma = non_overlapped_segment(stages)
    drain = (
        stages.simulation.active
        + max(a.active for a in stages.analyses)
        - sigma
    )
    return n_steps * sigma + drain


def _stage_floats(stages: MemberStages) -> List[Tuple[str, float]]:
    out = [
        ("sim.compute", stages.simulation.compute),
        ("sim.write", stages.simulation.write),
    ]
    for j, a in enumerate(stages.analyses):
        out.append((f"ana{j + 1}.read", a.read))
        out.append((f"ana{j + 1}.analyze", a.analyze))
    return out


def _service_checks(
    spec: EnsembleSpec,
    placement: EnsemblePlacement,
    reference_score,
    service_url: str,
    tolerance: float,
) -> List[MetricCheck]:
    """Tier-0 checks of the HTTP service path against the direct scorer.

    The scenario travels the full wire: request serialization, HTTP
    submission, worker-side scoring, result serialization, and client
    deserialization. Every float must come back identical — the
    service tier is how the oracle proves
    :mod:`repro.service.schemas` is lossless.
    """
    from repro.service.client import PlacementClient
    from repro.service.schemas import PlacementRequest

    client = PlacementClient(service_url)
    snapshot = client.submit(
        PlacementRequest(
            kind="score",
            spec=spec,
            num_nodes=placement.num_nodes,
            placement=placement,
        )
    )
    service_score = client.result_score(client.wait(snapshot["id"]))
    checks = [
        MetricCheck(
            scope="ensemble",
            metric="objective",
            paths="score-vs-service",
            reference=reference_score.objective,
            candidate=service_score.objective,
            tolerance=tolerance,
        ),
        MetricCheck(
            scope="ensemble",
            metric="makespan",
            paths="score-vs-service",
            reference=reference_score.ensemble_makespan,
            candidate=service_score.ensemble_makespan,
            tolerance=tolerance,
        ),
        MetricCheck(
            scope="ensemble",
            metric="same_placement",
            paths="score-vs-service",
            reference=1.0,
            candidate=(
                1.0 if service_score.placement == placement else 0.0
            ),
            tolerance=tolerance,
        ),
    ]
    for member, ref_i, cand_i in zip(
        spec.members,
        reference_score.member_indicators,
        service_score.member_indicators,
    ):
        checks.append(
            MetricCheck(
                scope=member.name,
                metric="indicator",
                paths="score-vs-service",
                reference=ref_i,
                candidate=cand_i,
                tolerance=tolerance,
            )
        )
    return checks


def _default_coschedule_score(
    spec: EnsembleSpec, total_nodes: int, cores_per_node: int
):
    """Winning score of a one-ensemble stream through the co-scheduler."""
    from repro.coschedule import CoScheduler, EnsembleRequest

    result = CoScheduler(
        total_nodes=total_nodes, cores_per_node=cores_per_node
    ).run([EnsembleRequest(name=spec.name, spec=spec)])
    return result.completions[0].score


def run_differential_oracle(
    spec: EnsembleSpec,
    placement: EnsemblePlacement,
    cluster: Optional[Cluster] = None,
    dtl: Optional[DataTransportLayer] = None,
    seed: int = 0,
    tolerances: Optional[Mapping[str, float]] = None,
    predictor: Optional[Predictor] = None,
    score_fn: Optional[Callable] = None,
    failure_model: Optional[FailureModel] = None,
    recovery: Optional[RecoveryPolicy] = None,
    fault_trials: int = 3,
    scenario: str = "adhoc",
    service_url: Optional[str] = None,
    fault_factory: Optional[Callable[[int], FailureModel]] = None,
    batched_score_fn: Optional[Callable] = None,
    context_score_fn: Optional[Callable] = None,
    coschedule_fn: Optional[Callable] = None,
) -> DivergenceReport:
    """Run one scenario through every evaluation path; report agreement.

    Parameters
    ----------
    spec / placement:
        The scenario under test.
    cluster / dtl:
        Platform context shared by all paths (Cori-like defaults).
    seed:
        DES seed (noise-free runs are seed-insensitive; kept for the
        fault tier's trial stream).
    tolerances:
        Per-metric overrides merged over :data:`DEFAULT_TOLERANCES`.
    predictor:
        Analytic stage predictor; defaults to
        :func:`~repro.runtime.analytic.predict_member_stages`. The
        hook exists so tests can inject a mutated copy and prove the
        oracle catches it.
    score_fn:
        Placement scorer compared against the reference scoring path;
        defaults to :func:`~repro.scheduler.objectives.score_placement`
        (uncached). Same mutation hook as ``predictor``.
    failure_model / recovery / fault_trials:
        When a failure model is given, Tier 2 additionally compares
        the analytic surrogate's expected makespan against the mean of
        ``fault_trials`` DES trials.
    scenario:
        Label carried into the report.
    service_url:
        Base URL of a running placement service. When given (and the
        scenario uses the default platform context), the scenario is
        additionally scored through the HTTP API and the deserialized
        result must match the direct scorer *exactly* (tier 0) —
        objective, makespan, and every member indicator — proving the
        wire format is lossless.
    fault_factory:
        ``seed -> FailureModel``. When given, the batched delta-replay
        engine (:func:`~repro.faults.batched.batched_score_placement`)
        is compared against serial DES replication
        (:func:`~repro.scheduler.robust.robust_score_placement`) on
        the robust objective, ideal objective, mean inflation, and
        mean goodput. The tolerance is picked by
        :func:`~repro.faults.batched.replay_tier`: exact (0.0) for
        replayable recovery policies, banded for the adaptive policy.
    batched_score_fn:
        Batched scorer under test; defaults to
        :func:`~repro.faults.batched.batched_score_placement`. Same
        mutation hook as ``predictor`` — the tests substitute a scorer
        replaying a perturbed timeline and the oracle must fail.
    context_score_fn:
        Scorer invoked with the ``context=``
        (:class:`~repro.scheduler.context.PlanningContext`) spelling;
        defaults to :func:`~repro.scheduler.objectives.score_placement`.
        Compared *exactly* (tier 0) against the legacy-keyword call —
        the two spellings are pure plumbing around the same floats.
        Same mutation hook as ``predictor``.
    coschedule_fn:
        ``(spec, total_nodes, cores_per_node) -> PlacementScore``
        producing the winning score of a one-ensemble stream through
        the cluster co-scheduler; defaults to running
        :class:`~repro.coschedule.loop.CoScheduler`. Compared *exactly*
        (tier 0) against a direct
        :func:`~repro.search.engine.find_best_placement` call on the
        same cluster — the complete-partition rule guarantees the
        degeneration is float-identical. Only runs on the default
        platform context (the co-scheduler's own default). Same
        mutation hook as ``predictor``.

    Returns
    -------
    DivergenceReport
        Structured agreement report; ``passed`` is the verdict.
    """
    if fault_trials < 1:
        raise ValidationError(
            f"fault_trials must be >= 1, got {fault_trials!r}"
        )
    tol = dict(DEFAULT_TOLERANCES)
    if tolerances:
        tol.update(tolerances)
    predict = predictor or predict_member_stages
    score = score_fn or score_placement
    checks: List[MetricCheck] = []

    # -- reference path: the analytic steady state -------------------------
    analytic = predict(spec, placement, cluster=cluster, dtl=dtl)

    # -- tier 0: StageCache vs the uncached predictor ----------------------
    cache = StageCache(cluster, dtl)
    cached = cache.predict(spec, placement)
    for member in spec.members:
        for name, ref in _stage_floats(analytic[member.name]):
            cand = dict(_stage_floats(cached[member.name]))[name]
            checks.append(
                MetricCheck(
                    scope=member.name,
                    metric=f"stage:{name}",
                    paths="analytic-vs-cache",
                    reference=ref,
                    candidate=cand,
                    tolerance=tol["cache"],
                )
            )

    # -- tier 0: cached vs uncached scoring, and the score_fn under test ---
    reference_score = score_placement(spec, placement, cluster=cluster, dtl=dtl)
    cached_score = score_placement(
        spec, placement, cluster=cluster, dtl=dtl, cache=cache
    )
    candidate_score = score(spec, placement, cluster=cluster, dtl=dtl)
    for label, cand in (
        ("score-vs-cache", cached_score),
        ("score-vs-candidate", candidate_score),
    ):
        checks.append(
            MetricCheck(
                scope="ensemble",
                metric="objective",
                paths=label,
                reference=reference_score.objective,
                candidate=cand.objective,
                tolerance=tol["cache"],
            )
        )
        checks.append(
            MetricCheck(
                scope="ensemble",
                metric="makespan",
                paths=label,
                reference=reference_score.ensemble_makespan,
                candidate=cand.ensemble_makespan,
                tolerance=tol["cache"],
            )
        )
        for member, ref_i, cand_i in zip(
            spec.members,
            reference_score.member_indicators,
            cand.member_indicators,
        ):
            checks.append(
                MetricCheck(
                    scope=member.name,
                    metric="indicator",
                    paths=label,
                    reference=ref_i,
                    candidate=cand_i,
                    tolerance=tol["cache"],
                )
            )

    # -- tier 0: the PlanningContext spelling vs the legacy keywords -------
    from repro.scheduler.context import PlanningContext

    context_score = context_score_fn or score_placement
    context_scored = context_score(
        spec,
        placement,
        context=PlanningContext(cluster=cluster, dtl=dtl, cache=cache),
    )
    checks.append(
        MetricCheck(
            scope="ensemble",
            metric="objective",
            paths="legacy-vs-context",
            reference=reference_score.objective,
            candidate=context_scored.objective,
            tolerance=tol["context"],
        )
    )
    checks.append(
        MetricCheck(
            scope="ensemble",
            metric="makespan",
            paths="legacy-vs-context",
            reference=reference_score.ensemble_makespan,
            candidate=context_scored.ensemble_makespan,
            tolerance=tol["context"],
        )
    )
    for member, ref_i, cand_i in zip(
        spec.members,
        reference_score.member_indicators,
        context_scored.member_indicators,
    ):
        checks.append(
            MetricCheck(
                scope=member.name,
                metric="indicator",
                paths="legacy-vs-context",
                reference=ref_i,
                candidate=cand_i,
                tolerance=tol["context"],
            )
        )

    # -- tier 0: the HTTP service path vs the direct scorer ----------------
    if service_url is not None and cluster is None and dtl is None:
        checks.extend(
            _service_checks(
                spec, placement, reference_score, service_url, tol["cache"]
            )
        )

    # -- tier 0.5: the vectorized batch kernel vs the scalar scorer --------
    # the column kernels reassociate a handful of sums, so the band is
    # 1e-9 rather than exact; contexts the kernels do not model
    # (non-default network/DTL) skip the tier and keep their scalar
    # coverage
    from repro.search.vectorized import VectorizedScorer, VectorizedUnsupported

    try:
        scorer = VectorizedScorer(
            spec, placement.num_nodes, cluster=cluster, dtl=dtl
        )
    except VectorizedUnsupported:
        scorer = None
    if scorer is not None:
        batch = scorer.score_assignments([StageCache._flatten(placement)])
        checks.append(
            MetricCheck(
                scope="ensemble",
                metric="objective",
                paths="score-vs-vectorized",
                reference=reference_score.objective,
                candidate=float(batch.objectives[0]),
                tolerance=tol["vectorized"],
            )
        )
        checks.append(
            MetricCheck(
                scope="ensemble",
                metric="makespan",
                paths="score-vs-vectorized",
                reference=reference_score.ensemble_makespan,
                candidate=float(batch.makespans[0]),
                tolerance=tol["vectorized"],
            )
        )
        for member, ref_i, cand_i in zip(
            spec.members,
            reference_score.member_indicators,
            batch.indicators[0],
        ):
            checks.append(
                MetricCheck(
                    scope=member.name,
                    metric="indicator",
                    paths="score-vs-vectorized",
                    reference=ref_i,
                    candidate=float(cand_i),
                    tolerance=tol["vectorized"],
                )
            )

    # -- tier 1: noise-free DES vs the analytic steady state ---------------
    result = run_ensemble(
        spec, placement, cluster=cluster, dtl=dtl, seed=seed, timing_noise=0.0
    )
    des_indicators = result.indicator_values(FINAL_STAGE_ORDER)
    analytic_indicators: Dict[str, float] = {}
    for member, member_result in zip(spec.members, result.members):
        pred = analytic[member.name]
        meas = member_result.stages
        pred_floats = dict(_stage_floats(pred))
        for name, value in _stage_floats(meas):
            checks.append(
                MetricCheck(
                    scope=member.name,
                    metric=f"stage:{name}",
                    paths="analytic-vs-des",
                    reference=pred_floats[name],
                    candidate=value,
                    tolerance=tol["stage"],
                )
            )
        checks.append(
            MetricCheck(
                scope=member.name,
                metric="makespan",
                paths="analytic-vs-des",
                reference=_member_drain_makespan(pred, member.n_steps),
                candidate=member_result.makespan,
                tolerance=tol["makespan"],
            )
        )
        measurement = MemberMeasurement(
            name=member.name,
            stages=pred,
            total_cores=member.total_cores,
            placement=next(
                mp.to_placement_sets()
                for m, mp in zip(spec.members, placement.members)
                if m.name == member.name
            ),
        )
        analytic_indicators[member.name] = apply_stages(
            measurement, FINAL_STAGE_ORDER, placement.num_nodes
        )
        checks.append(
            MetricCheck(
                scope=member.name,
                metric="indicator",
                paths="analytic-vs-des",
                reference=analytic_indicators[member.name],
                candidate=des_indicators[member.name],
                tolerance=tol["indicator"],
            )
        )
    checks.append(
        MetricCheck(
            scope="ensemble",
            metric="objective",
            paths="analytic-vs-des",
            reference=objective_function(list(analytic_indicators.values())),
            candidate=result.objective(FINAL_STAGE_ORDER),
            tolerance=tol["objective"],
        )
    )

    # -- tier 0: the co-scheduler's one-ensemble degeneration --------------
    # a single-request stream must allocate the whole cluster to its
    # one resident and therefore reproduce find_best_placement's
    # winner float-for-float (only meaningful on the default context,
    # which is all the co-scheduler's admission/allocator paths use)
    if cluster is None and dtl is None:
        from repro.search.engine import find_best_placement

        cosched = coschedule_fn or _default_coschedule_score
        direct, _ = find_best_placement(
            spec, placement.num_nodes, 32, cache=cache
        )
        co_score = cosched(spec, placement.num_nodes, 32)
        checks.append(
            MetricCheck(
                scope="ensemble",
                metric="objective",
                paths="search-vs-coschedule",
                reference=direct.objective,
                candidate=co_score.objective,
                tolerance=tol["coschedule"],
            )
        )
        checks.append(
            MetricCheck(
                scope="ensemble",
                metric="makespan",
                paths="search-vs-coschedule",
                reference=direct.ensemble_makespan,
                candidate=co_score.ensemble_makespan,
                tolerance=tol["coschedule"],
            )
        )
        checks.append(
            MetricCheck(
                scope="ensemble",
                metric="same_placement",
                paths="search-vs-coschedule",
                reference=1.0,
                candidate=(
                    1.0 if co_score.placement == direct.placement else 0.0
                ),
                tolerance=tol["coschedule"],
            )
        )
        for member, ref_i, cand_i in zip(
            spec.members,
            direct.member_indicators,
            co_score.member_indicators,
        ):
            checks.append(
                MetricCheck(
                    scope=member.name,
                    metric="indicator",
                    paths="search-vs-coschedule",
                    reference=ref_i,
                    candidate=cand_i,
                    tolerance=tol["coschedule"],
                )
            )

    # -- tier 0/2: the fault surrogate ------------------------------------
    from repro.faults.analytic import surrogate_resilience

    baseline = surrogate_resilience(
        spec,
        placement,
        NoFailureModel(),
        RetryBackoffPolicy(),
        cluster=cluster,
        dtl=dtl,
    )
    analytic_t0 = max(
        _member_drain_makespan(analytic[m.name], m.n_steps)
        for m in spec.members
    )
    checks.append(
        MetricCheck(
            scope="ensemble",
            metric="baseline_makespan",
            paths="analytic-vs-surrogate",
            reference=analytic_t0,
            candidate=baseline.baseline_makespan,
            tolerance=tol["cache"],
        )
    )

    if failure_model is not None:
        policy = recovery or RetryBackoffPolicy()
        report = surrogate_resilience(
            spec,
            placement,
            failure_model,
            policy,
            cluster=cluster,
            dtl=dtl,
        )
        total = 0.0
        for trial in range(fault_trials):
            trial_result = run_ensemble(
                spec,
                placement,
                cluster=cluster,
                dtl=dtl,
                seed=seed + trial,
                failure_model=failure_model,
                recovery=policy,
            )
            total += trial_result.ensemble_makespan
        checks.append(
            MetricCheck(
                scope="ensemble",
                metric="expected_makespan",
                paths="surrogate-vs-des",
                reference=total / fault_trials,
                candidate=report.expected_makespan,
                tolerance=tol["surrogate"],
            )
        )

    # -- tier 0/2: batched delta replay vs serial DES replication ----------
    if fault_factory is not None:
        from repro.faults.batched import batched_score_placement, replay_tier
        from repro.scheduler.robust import robust_score_placement

        policy = recovery or RetryBackoffPolicy()
        batched_score = batched_score_fn or batched_score_placement
        serial = robust_score_placement(
            spec,
            placement,
            fault_factory,
            policy,
            trials=fault_trials,
            base_seed=seed,
            cluster=cluster,
            dtl=dtl,
        )
        batched = batched_score(
            spec,
            placement,
            fault_factory,
            policy,
            trials=fault_trials,
            base_seed=seed,
            cluster=cluster,
            dtl=dtl,
        )
        band = (
            tol["batched"]
            if replay_tier(policy) == "exact"
            else tol["batched_adaptive"]
        )
        for metric, ref, cand in (
            ("objective", serial.objective, batched.objective),
            (
                "ideal_objective",
                serial.ideal_objective,
                batched.ideal_objective,
            ),
            ("mean_inflation", serial.mean_inflation, batched.mean_inflation),
            ("mean_goodput", serial.mean_goodput, batched.mean_goodput),
        ):
            checks.append(
                MetricCheck(
                    scope="ensemble",
                    metric=metric,
                    paths="serial-vs-batched",
                    reference=ref,
                    candidate=cand,
                    tolerance=band,
                )
            )

    return DivergenceReport(scenario=scenario, checks=tuple(checks))


def verify_scenarios(
    names: Optional[Sequence[str]] = None,
    n_steps: int = 6,
    include_faults: bool = False,
    tolerances: Optional[Mapping[str, float]] = None,
    include_service: bool = False,
) -> List[DivergenceReport]:
    """Run the oracle over the canonical Table 2 scenarios.

    ``names`` defaults to every Table 2 configuration; unknown names
    raise :class:`~repro.util.errors.ValidationError`. With
    ``include_faults`` each scenario additionally runs the Tier-2
    surrogate-vs-DES comparison under a seeded random crash/straggler
    model *and* the serial-vs-batched replication comparison (exact
    tier). With ``include_service`` an in-process placement service is
    booted on an ephemeral port and every scenario is also scored
    through its HTTP API, which must agree with the direct scorer
    exactly (tier 0).
    """
    from repro.configs.base import build_spec
    from repro.configs.table2 import TABLE2_CONFIGS
    from repro.faults.models import RandomFailureModel

    selected = list(names) if names else list(TABLE2_CONFIGS)
    unknown = [n for n in selected if n not in TABLE2_CONFIGS]
    if unknown:
        raise ValidationError(
            f"unknown Table 2 configurations: {unknown}; "
            f"valid: {sorted(TABLE2_CONFIGS)}"
        )
    server = None
    if include_service:
        from repro.service.api import make_server

        server = make_server(port=0, workers=2).start()
    try:
        reports: List[DivergenceReport] = []
        for name in selected:
            config = TABLE2_CONFIGS[name]
            spec = build_spec(config, n_steps=n_steps)
            model = (
                RandomFailureModel(rate=0.08, seed=11)
                if include_faults
                else None
            )
            factory = (
                (lambda s: RandomFailureModel(rate=0.08, seed=s))
                if include_faults
                else None
            )
            reports.append(
                run_differential_oracle(
                    spec,
                    config.placement(),
                    tolerances=tolerances,
                    failure_model=model,
                    scenario=name,
                    service_url=server.url if server is not None else None,
                    fault_factory=factory,
                )
            )
        return reports
    finally:
        if server is not None:
            server.stop()
